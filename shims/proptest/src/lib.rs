//! In-tree stand-in for `proptest`, written because the build environment
//! has no registry access.
//!
//! It keeps the workspace's property tests compiling and *meaningful*: the
//! `proptest!` macro runs each test body against `cases` freshly generated
//! random inputs from a deterministic per-test RNG.  What it does not do is
//! shrink failing cases — a failure reports the case number and message
//! only.  The supported strategy surface is exactly what the workspace's
//! tests use: numeric ranges, `Just`, tuples, `prop::collection::vec`,
//! `any::<T>()`, `prop_oneof!` with weights, `prop_map`/`prop_flat_map`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG + config for the mini test runner.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure type carried by `TestCaseResult` (the shim's asserts panic
    /// instead, but `return Ok(())` sites need the Result type to exist).
    pub type TestCaseError = String;

    /// Result type of a test-case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xoshiro256**-based generator, seeded from the test
    /// name so every test gets a stable, independent stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h;
            let mut mix = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [mix(), mix(), mix(), mix()],
            }
        }

        /// Next 64 random bits (xoshiro256**).
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below: zero bound");
            // Modulo bias is irrelevant at test-case scale.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Filter generated values (retries until `f` accepts, up to a
        /// retry cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: gave up after 1000 rejections");
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of type-erased strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof!: no options");
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: zero total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate one canonical random value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // A spread of magnitudes and signs; no NaN/inf (the real
            // proptest reserves those for edge-case phases anyway).
            let mag = rng.next_f64() * 60.0 - 30.0; // exponent in [-30, 30)
            let mantissa = rng.next_f64() * 2.0 - 1.0;
            mantissa * 10f64.powf(mag)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f64::arbitrary_value(rng) as f32
        }
    }
}

pub mod collection {
    //! `prop::collection` — container strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Mirror of the `prop` path alias from `proptest::prelude`.
    pub use crate::collection;
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each contained test function against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: $crate::test_runner::TestCaseResult =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name), __case, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Weighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a `proptest!` body (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
