//! In-tree stand-in for `serde_json`: [`to_string`] (the bench binaries'
//! trailing `JSON:` lines) and a minimal [`Value`] tree with [`from_str`]
//! (the perf-regression gate's baseline reader).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// A parsed JSON value, mirroring `serde_json::Value` for the accessor
/// subset the workspace uses (`get`, `as_*`, array/object walking).
/// Object keys are kept in a `BTreeMap`, so iteration order is
/// deterministic (sorted), not insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, which covers every number the
    /// workspace writes).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// Returns [`Error`] on malformed input or trailing non-whitespace.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected '{}' at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err(Error::new("unexpected end of input")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| Error::new("non-UTF-8 number"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("non-UTF-8 \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not needed by the workspace's
                        // own output; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // already valid: the input is a &str).
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("non-UTF-8 string"))?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = from_str(
            r#"{"bench": "kernels", "quick": false, "pool_threads": 4,
               "rows": [{"kernel": "dot", "melem_per_s": 1364.25}, {"kernel": "norm2"}],
               "note": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("kernels"));
        assert_eq!(v.get("quick").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("pool_threads").and_then(Value::as_u64), Some(4));
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("melem_per_s").and_then(Value::as_f64),
            Some(1364.25)
        );
        assert_eq!(v.get("note"), Some(&Value::Null));
    }

    #[test]
    fn roundtrips_own_serializer_output() {
        #[derive(serde::Serialize)]
        struct Row {
            name: String,
            x: f64,
            ok: bool,
        }
        let row = Row {
            name: "sz \"quoted\" \\ path\nline".into(),
            x: -12.5e3,
            ok: true,
        };
        let s = to_string(&row).unwrap();
        let v = from_str(&s).unwrap();
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("sz \"quoted\" \\ path\nline")
        );
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(-12.5e3));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1, 2,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"open").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str(" { } ").unwrap(), Value::Object(BTreeMap::new()));
    }
}
