//! In-tree stand-in for `serde_json`: only [`to_string`], which is the one
//! entry point the workspace uses (the bench binaries' trailing `JSON:`
//! lines).

#![forbid(unsafe_code)]

use std::fmt;

/// Error type mirroring `serde_json::Error`.
///
/// The shim's serializer is infallible, so this is never constructed; it
/// exists so call sites that match on `Result` keep compiling.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}
