//! In-tree stand-in for `serde`, built because the build environment has no
//! registry access.  It exposes exactly the surface this workspace uses:
//!
//! * a [`Serialize`] trait that renders the value as JSON into a `String`
//!   (consumed by the `serde_json` shim's `to_string`);
//! * a marker [`Deserialize`] trait (derived but never driven by a real
//!   deserializer anywhere in the workspace);
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro shim.
//!
//! The derive and the impls below cover structs (named, tuple, unit) and
//! enums (unit, newtype, tuple and struct variants) with serde's default
//! externally-tagged representation, which is all the workspace's types
//! need.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// JSON-render the value into `out`.
///
/// This replaces serde's visitor-based `Serialize`; every caller in the
/// workspace ultimately wants a JSON string, so the trait goes straight
/// there.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait standing in for serde's `Deserialize`.
///
/// Nothing in the workspace drives a deserializer, so the derive only has
/// to record that the type opted in.
pub trait Deserialize: Sized {}

/// Escape and append a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{}` prints integral floats without a fractional part
                    // ("1"), which is still a valid JSON number.
                    out.push_str(&self.to_string());
                } else {
                    // serde_json maps non-finite floats to null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

fn write_json_seq<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
    out: &mut String,
) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}
impl Deserialize for () {}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn write_json_map<'a, K: std::fmt::Display + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&k.to_string(), out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        write_json_map(self.iter(), out);
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        write_json_map(self.iter(), out);
    }
}
