//! In-tree stand-in for `criterion`, written because the build environment
//! has no registry access.
//!
//! The `criterion_group!`/`criterion_main!`/`Criterion` surface is kept so
//! the workspace's benches compile and run under `cargo bench`; measurement
//! is a plain wall-clock loop (short warm-up, then a fixed measurement
//! budget) printing mean ns/iter plus derived throughput.  No statistics,
//! plots or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Whether the bench binary was invoked in test mode (`--test`, as real
/// criterion accepts for smoke runs): every benchmark body runs exactly
/// once with no warm-up or measurement budget, so CI can check the benches
/// still execute without paying bench wall-clock.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing-loop driver handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            let t0 = Instant::now();
            black_box(f());
            self.ns_per_iter = t0.elapsed().as_nanos() as f64;
            return;
        }
        // Warm-up.
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warmup_deadline {
            black_box(f());
        }
        // Measurement: at least 10 iterations, at most ~200 ms.
        let start = Instant::now();
        let deadline = start + Duration::from_millis(200);
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if iters >= 10 && Instant::now() >= deadline {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// `iter` variant receiving the iteration count in batches; reduced to
    /// a plain loop here.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        if test_mode() {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            self.ns_per_iter = t0.elapsed().as_nanos() as f64;
            return;
        }
        let start = Instant::now();
        let deadline = start + Duration::from_millis(200);
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            spent += t0.elapsed();
            iters += 1;
            if iters >= 10 && Instant::now() >= deadline {
                break;
            }
        }
        self.ns_per_iter = spent.as_nanos() as f64 / iters as f64;
    }
}

/// Batch sizing hint for `iter_batched` (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored; kept for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored; kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn report(&self, id: &str, ns: f64) {
        let mut line = format!("{}/{:<40} {:>12.1} ns/iter", self.name, id, ns);
        match self.throughput {
            Some(Throughput::Bytes(b)) => {
                let gib_s = b as f64 / ns; // bytes/ns == GB/s
                line.push_str(&format!("  {:>8.3} GB/s", gib_s));
            }
            Some(Throughput::Elements(e)) => {
                let me_s = e as f64 / ns * 1e3; // elements/ns -> Melem/s
                line.push_str(&format!("  {:>8.1} Melem/s", me_s));
            }
            None => {}
        }
        println!("{line}");
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.ns_per_iter);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// Declare a bench group: `criterion_group!(name, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(group_a, group_b)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
