//! In-tree stand-in for `rand_chacha`.
//!
//! The workspace uses `ChaCha8Rng` purely as *a deterministic, seedable,
//! decent-quality* generator for failure injection and test data — nothing
//! depends on the ChaCha stream cipher itself.  The shim keeps the type
//! name and trait surface but backs it with xoshiro256** seeded via
//! SplitMix64 (the standard seeding recipe), which has the same
//! reproducibility guarantees: identical seed → identical sequence, on
//! every platform.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

macro_rules! chacha_like {
    ($name:ident) => {
        /// Deterministic seedable generator (xoshiro256** core) standing in
        /// for the equally-named `rand_chacha` type.
        #[derive(Debug, Clone)]
        pub struct $name {
            s: [u64; 4],
        }

        impl $name {
            fn mix(seed: &mut u64) -> u64 {
                // SplitMix64, the canonical xoshiro seeding function.
                *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = *seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut s = [0u64; 4];
                for (i, chunk) in seed.chunks_exact(8).enumerate() {
                    s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
                }
                if s.iter().all(|&w| w == 0) {
                    // xoshiro must not start from the all-zero state.
                    s[0] = 0x9E3779B97F4A7C15;
                }
                $name { s }
            }

            fn seed_from_u64(state: u64) -> Self {
                let mut sm = state;
                let s = [
                    Self::mix(&mut sm),
                    Self::mix(&mut sm),
                    Self::mix(&mut sm),
                    Self::mix(&mut sm),
                ];
                $name { s }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                // xoshiro256** (Blackman & Vigna 2018).
                let s = &mut self.s;
                let result = s[1]
                    .wrapping_mul(5)
                    .rotate_left(7)
                    .wrapping_mul(9);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                result
            }
        }
    };
}

chacha_like!(ChaCha8Rng);
chacha_like!(ChaCha12Rng);
chacha_like!(ChaCha20Rng);
