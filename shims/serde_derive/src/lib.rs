//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-tree serde
//! shim.  The registry (and therefore `syn`/`quote`) is unavailable, so the
//! item is parsed directly from the `proc_macro` token stream and the impl
//! is emitted as a source string.
//!
//! Supported shapes — exactly what this workspace derives on:
//! structs (named / tuple / unit, no generics) and enums (unit, newtype,
//! tuple and struct variants) in serde's externally-tagged representation.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip one attribute (`#` followed by a bracket group) if present.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracket group of the attribute.
                tokens.next();
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    // Visibility: `pub` optionally followed by `(...)`.
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (deriving on `{name}`)");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive shim: malformed struct body: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive on `{other}`"),
    };
    Item { name, shape }
}

/// Field names of a named-field body (struct or enum-struct variant).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        // Visibility.
        match tokens.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            None => break,
            _ => {}
        }
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        fields.push(field);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        // `prev_dash` guards against the '>' of a `->` (fn-pointer return
        // type) being miscounted as a closing angle bracket.
        let mut depth = 0i32;
        let mut prev_dash = false;
        loop {
            let dash = matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '-');
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' && !prev_dash => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            prev_dash = dash;
            tokens.next();
        }
    }
    fields
}

/// Number of fields in a tuple body (struct or enum-tuple variant).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    let mut prev_dash = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            // Not the '>' of a `->` return-type arrow.
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token = false;
                prev_dash = false;
                continue;
            }
            _ => {}
        }
        prev_dash = matches!(&tok, TokenTree::Punct(p) if p.as_char() == '-');
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Consume the trailing comma (discriminants are unsupported).
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                panic!("serde_derive shim: unexpected token after variant: {other:?}")
            }
            None => break,
        }
    }
    variants
}

fn ser_call(expr: &str, body: &mut String) {
    body.push_str(&format!("::serde::Serialize::serialize_json(&{expr}, out);\n"));
}

fn push_lit(lit: &str, body: &mut String) {
    body.push_str(&format!("out.push_str({lit:?});\n"));
}

fn named_fields_body(prefix: &str, fields: &[String], body: &mut String) {
    push_lit("{", body);
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            push_lit(",", body);
        }
        push_lit(&format!("\"{f}\":"), body);
        ser_call(&format!("{prefix}{f}"), body);
    }
    push_lit("}", body);
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => named_fields_body("self.", fields, &mut body),
        Shape::TupleStruct(0) | Shape::UnitStruct => {
            // serde encodes unit structs as null.
            push_lit("null", &mut body);
        }
        Shape::TupleStruct(1) => ser_call("self.0", &mut body),
        Shape::TupleStruct(n) => {
            push_lit("[", &mut body);
            for i in 0..*n {
                if i > 0 {
                    push_lit(",", &mut body);
                }
                ser_call(&format!("self.{i}"), &mut body);
            }
            push_lit("]", &mut body);
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        body.push_str(&format!("{name}::{vname} => {{\n"));
                        push_lit(&format!("\"{vname}\""), &mut body);
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> =
                            (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => {{\n",
                            binders.join(", ")
                        ));
                        push_lit(&format!("{{\"{vname}\":"), &mut body);
                        if *n == 1 {
                            ser_call("__f0", &mut body);
                        } else {
                            push_lit("[", &mut body);
                            for (i, b) in binders.iter().enumerate() {
                                if i > 0 {
                                    push_lit(",", &mut body);
                                }
                                ser_call(b, &mut body);
                            }
                            push_lit("]", &mut body);
                        }
                        push_lit("}", &mut body);
                    }
                    VariantShape::Named(fields) => {
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n",
                            fields.join(", ")
                        ));
                        push_lit(&format!("{{\"{vname}\":"), &mut body);
                        named_fields_body("", fields, &mut body);
                        push_lit("}", &mut body);
                    }
                }
                body.push_str("}\n");
            }
            body.push_str("}\n");
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{body}}}\n}}\n"
    );
    out.parse().expect("serde_derive shim: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive shim: generated impl failed to parse")
}
