//! In-tree stand-in for `rand` (0.8-style API surface).
//!
//! Provides the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with
//! `gen_range` and `gen`, which is everything the workspace calls.  The
//! statistical quality requirements here are mild (exponential failure
//! inter-arrival sampling and test-data generation), which any decent
//! 64-bit generator satisfies; `rand_chacha`'s shim supplies the concrete
//! generator.

#![forbid(unsafe_code)]

/// Core entropy source: 64-bit outputs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

/// Types `gen::<T>()` can produce.
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution for the type
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the exclusive endpoint.
                if v >= self.end { self.start.max(self.end - (self.end - self.start) * 1e-9) } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli(p).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Minimal mirror of `rand::rngs`.

    /// A small fast generator (SplitMix64), usable where `rand`'s
    /// `SmallRng` would be.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Self::seed_from_u64(u64::from_le_bytes(seed))
        }

        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Mirror of `rand::prelude`.
    pub use crate::{Rng, RngCore, SeedableRng};
}
