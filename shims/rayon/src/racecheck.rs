//! Dynamic race/aliasing checker for caller-partitioned parallel work.
//!
//! The pool's determinism contract has a dynamic half the compiler cannot
//! see: callers that write one output buffer from many workers through a
//! shared pointer (the sparse crate's `SendPtr`) promise that the ranges
//! they materialise are **disjoint and in bounds**.  A future bug in a
//! partition plan — two chunks overlapping by one row, a chunk running past
//! the buffer — would be silent memory unsoundness racing under load.
//!
//! [`ClaimSet`] turns that promise into a checked assertion.  Each parallel
//! call creates one claim set per output buffer; every range materialised
//! is claimed first.  With the `racecheck` feature **off** (the default)
//! the type is a zero-sized no-op and the claim calls compile away.  With
//! `racecheck` **on**, every claim is recorded under a mutex and checked
//! against all previously claimed ranges of the same buffer: any overlap
//! or out-of-bounds claim panics with both offending ranges, and the
//! pool's panic plumbing carries the report back to the caller regardless
//! of which worker thread detected it.
//!
//! The shim's own drivers use the same mechanism: under `racecheck`,
//! [`run_chunks`](crate::run_chunks) claims every chunk range it computes
//! (guarding the split formula itself) and `par_iter_mut`'s source tracks
//! per-index delivery so no index can be driven twice.

#[cfg(feature = "racecheck")]
mod imp {
    use std::sync::Mutex;

    /// Records the mutable ranges claimed against one output buffer and
    /// panics on any overlap or out-of-bounds claim.
    #[derive(Debug)]
    pub struct ClaimSet {
        len: usize,
        claimed: Mutex<Vec<(usize, usize)>>,
    }

    impl ClaimSet {
        /// A fresh claim set for a buffer of `len` elements.
        pub fn new(len: usize) -> ClaimSet {
            ClaimSet {
                len,
                claimed: Mutex::new(Vec::new()),
            }
        }

        /// Claims `start..end`, panicking if the range is malformed, out
        /// of bounds, or overlaps a previously claimed range.
        ///
        /// # Panics
        /// On any violation of the disjoint-in-bounds contract — that is
        /// the feature's entire purpose.
        pub fn claim(&self, start: usize, end: usize) {
            assert!(
                start <= end,
                "racecheck: malformed range {start}..{end} (start > end)"
            );
            assert!(
                end <= self.len,
                "racecheck: range {start}..{end} out of bounds for buffer of len {}",
                self.len
            );
            // Empty ranges touch no element, so they can never alias —
            // validated above, then dropped without recording.
            if start == end {
                return;
            }
            let mut claimed = self.claimed.lock().unwrap();
            for &(s, e) in claimed.iter() {
                if start < e && s < end {
                    panic!(
                        "racecheck: mutable range {start}..{end} overlaps \
                         previously claimed {s}..{e} (buffer len {})",
                        self.len
                    );
                }
            }
            claimed.push((start, end));
        }

        /// Number of ranges claimed so far (test support).
        pub fn claimed_ranges(&self) -> usize {
            self.claimed.lock().unwrap().len()
        }
    }
}

#[cfg(not(feature = "racecheck"))]
mod imp {
    /// No-op stand-in compiled when the `racecheck` feature is off: a
    /// zero-sized type whose methods inline to nothing, so instrumented
    /// kernels pay no cost in production builds.
    #[derive(Debug)]
    pub struct ClaimSet;

    impl ClaimSet {
        /// A fresh (zero-sized) claim set; `len` is ignored.
        #[inline(always)]
        pub fn new(_len: usize) -> ClaimSet {
            ClaimSet
        }

        /// No-op claim.
        #[inline(always)]
        pub fn claim(&self, _start: usize, _end: usize) {}
    }
}

pub use imp::ClaimSet;

/// Whether the race/aliasing checker is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "racecheck")
}

#[cfg(all(test, feature = "racecheck"))]
mod tests {
    use super::ClaimSet;
    use std::panic::catch_unwind;

    #[test]
    fn disjoint_claims_pass() {
        let c = ClaimSet::new(100);
        c.claim(0, 25);
        c.claim(50, 100);
        c.claim(25, 50);
        assert_eq!(c.claimed_ranges(), 3);
    }

    #[test]
    fn overlap_panics() {
        let c = ClaimSet::new(100);
        c.claim(0, 30);
        let err = catch_unwind(|| c.claim(29, 40)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("overlaps"), "unexpected message: {msg}");
    }

    #[test]
    fn out_of_bounds_panics() {
        let c = ClaimSet::new(10);
        assert!(catch_unwind(|| c.claim(5, 11)).is_err());
        assert!(catch_unwind(|| c.claim(7, 6)).is_err());
    }

    #[test]
    fn empty_ranges_never_alias() {
        let c = ClaimSet::new(10);
        c.claim(5, 5);
        c.claim(5, 5);
        c.claim(0, 10);
    }
}
