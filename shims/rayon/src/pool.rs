//! Persistent worker pool with deterministic fixed-chunk scheduling.
//!
//! The pool is process-global and lazily initialised on the first parallel
//! call: `LCR_NUM_THREADS` (or, unset, `std::thread::available_parallelism`)
//! fixes the total thread count — the calling thread plus `N − 1` detached
//! workers that live for the rest of the process.
//!
//! Scheduling is *deterministic by construction*: a parallel call is split
//! into chunks whose boundaries depend only on the data length (never on the
//! thread count), workers claim chunk indices from a shared atomic counter,
//! and each chunk's partial result is written into its own slot so the
//! caller can combine partials in chunk order.  Which thread runs which
//! chunk is racy; what is computed per chunk and the combination order are
//! not — which is what makes floating-point reductions bit-identical
//! regardless of the thread count.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One queued "ticket": a worker that pops it joins `job`'s chunk loop.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
}

/// The process-global pool: `threads - 1` workers plus the calling thread.
struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set for pool workers so nested parallel calls degrade to sequential
    /// execution instead of deadlocking the pool on itself.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Per-thread cap on how many threads a parallel call may use
    /// (0 = no cap).  Results are unaffected either way — this only
    /// throttles how much of the pool a caller recruits.
    static ACTIVE_LIMIT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn configured_threads() -> usize {
    match std::env::var("LCR_NUM_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(default_threads),
        Err(_) => default_threads(),
    }
}

/// Explicitly initialises the global pool with `threads` total threads
/// (clamped to at least 1), overriding `LCR_NUM_THREADS`.  Returns `true`
/// if this call created the pool, `false` if it already existed (in which
/// case the existing size wins — the pool is immutable once built).
pub fn initialize_pool(threads: usize) -> bool {
    let mut created = false;
    POOL.get_or_init(|| {
        created = true;
        Pool::spawn(threads.max(1))
    });
    created
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::spawn(configured_threads()))
}

/// Total threads in the pool (callers + workers), forcing initialisation.
pub fn pool_threads() -> usize {
    pool().threads
}

/// Caps parallel calls issued *from the current thread* at `limit` threads
/// (0 removes the cap).  Used by the scaling benchmark and the runner
/// config to measure/pin concurrency without rebuilding the pool; results
/// are bit-identical at any setting.
pub fn set_max_active_threads(limit: usize) {
    ACTIVE_LIMIT.with(|c| c.set(limit));
}

/// The current thread's active-thread cap (0 = uncapped).
pub fn max_active_threads() -> usize {
    ACTIVE_LIMIT.with(|c| c.get())
}

/// Threads a parallel call issued from this thread would use.
pub fn effective_threads() -> usize {
    let total = pool_threads();
    match max_active_threads() {
        0 => total,
        n => n.min(total),
    }
}

impl Pool {
    fn spawn(threads: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for _ in 1..threads {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lcr-worker".into())
                .spawn(move || worker_loop(sh))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, threads }
    }

    fn push_tickets(&self, job: &Arc<Job>, tickets: usize) {
        let mut q = self.shared.queue.lock().unwrap();
        for _ in 0..tickets {
            q.push_back(Arc::clone(job));
        }
        drop(q);
        self.shared.available.notify_all();
    }

    /// Removes `job`'s still-queued tickets, returning how many were
    /// revoked.  Popping and revoking both happen under the queue lock, so
    /// every ticket is either revoked here (and never runs) or was popped
    /// by a worker that will check in via the job's finished counter.
    fn revoke_tickets(&self, job: &Arc<Job>) -> usize {
        let mut q = self.shared.queue.lock().unwrap();
        let before = q.len();
        q.retain(|queued| !Arc::ptr_eq(queued, job));
        before - q.len()
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|c| c.set(true));
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        job.run_ticket();
    }
}

/// One parallel call in flight.  `body` is a lifetime-erased pointer into
/// the caller's stack; [`execute`] revokes still-queued tickets and keeps
/// the caller blocked until every *popped* ticket has finished, so the
/// pointer never outlives its referent.
struct Job {
    body: *const (dyn Fn(usize) + Sync),
    nchunks: usize,
    next: AtomicUsize,
    tickets: usize,
    finished: Mutex<usize>,
    all_finished: Condvar,
    /// First panic payload raised on a worker, re-thrown on the caller so
    /// the original assertion message survives the thread hop.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

// SAFETY: `body` points at a `Sync` closure that `execute` keeps alive (and
// the counters are all thread-safe primitives), so a `Job` may move to the
// queue's thread.
unsafe impl Send for Job {}

// SAFETY: every field is either immutable after construction or a
// thread-safe primitive, and `body` is `Sync`, so shared access from many
// workers is sound.
unsafe impl Sync for Job {}

impl Job {
    /// Claims chunk indices until the counter runs past `nchunks`.
    fn claim_loop(&self) {
        // SAFETY: `execute` does not return before every ticket finishes,
        // so the closure behind `body` is still alive.
        let body = unsafe { &*self.body };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.nchunks {
                break;
            }
            body(i);
        }
    }

    /// A worker's share of the job: claim chunks, then check in — even on
    /// panic, so the caller never deadlocks waiting for this ticket.
    /// Notifies on every check-in because ticket revocation means the
    /// caller may be waiting for fewer than `tickets` check-ins.
    fn run_ticket(&self) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.claim_loop())) {
            let mut slot = self.panic_payload.lock().unwrap();
            slot.get_or_insert(payload);
        }
        let mut done = self.finished.lock().unwrap();
        *done += 1;
        self.all_finished.notify_all();
    }

    /// Blocks until `expected` tickets have checked in (the tickets that
    /// were actually popped; revoked ones never run).
    fn wait_tickets(&self, expected: usize) {
        let mut done = self.finished.lock().unwrap();
        while *done < expected {
            done = self.all_finished.wait(done).unwrap();
        }
    }
}

/// Runs `body(chunk_index)` for every index in `0..nchunks`, recruiting up
/// to `effective_threads() - 1` pool workers.  Blocks until every chunk has
/// completed.  Chunk→thread assignment is racy; chunk *contents* are the
/// caller's responsibility and must not overlap between indices.
pub(crate) fn execute(nchunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if nchunks == 0 {
        return;
    }
    // Nested parallelism inside a worker runs inline: the pool must never
    // block one of its own threads on pool capacity.
    let in_worker = IN_WORKER.with(|c| c.get());
    let threads = if in_worker { 1 } else { effective_threads() };
    let helpers = (threads.saturating_sub(1)).min(nchunks.saturating_sub(1));
    if helpers == 0 {
        for i in 0..nchunks {
            body(i);
        }
        return;
    }

    let body_ptr: *const (dyn Fn(usize) + Sync) = body;
    // SAFETY: erases the closure's lifetime so it can sit in the 'static
    // queue; sound because `execute` does not return until every popped
    // ticket has checked in, so the borrow outlives all uses of `body`.
    let erased = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(body_ptr)
    };
    let job = Arc::new(Job {
        body: erased,
        nchunks,
        next: AtomicUsize::new(0),
        tickets: helpers,
        finished: Mutex::new(0),
        all_finished: Condvar::new(),
        panic_payload: Mutex::new(None),
    });
    let pool = pool();
    pool.push_tickets(&job, helpers);
    // The caller is a full participant.  Once its own claim loop drains,
    // any ticket still sitting in the queue (e.g. behind another caller's
    // long job) is pure overhead — revoke it under the queue lock and wait
    // only for the tickets that workers actually popped, which is exactly
    // the set that may still hold the borrowed closure.
    let caller_result = catch_unwind(AssertUnwindSafe(|| job.claim_loop()));
    let revoked = pool.revoke_tickets(&job);
    job.wait_tickets(job.tickets - revoked);
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    let worker_panic = job.panic_payload.lock().unwrap().take();
    if let Some(payload) = worker_panic {
        // Re-throw a worker's panic with its original payload intact.
        resume_unwind(payload);
    }
}
