//! In-tree stand-in for `rayon`.
//!
//! The registry is unreachable in the build environment, so this shim keeps
//! the workspace's `par_iter()` call sites compiling by executing them
//! **sequentially**.  [`Par`] wraps a standard iterator and mirrors the
//! subset of rayon's `ParallelIterator` adapters the workspace uses —
//! including rayon's two-argument `reduce(identity, op)` and chunk-style
//! `fold(identity, fold_op)`, whose signatures differ from the std
//! `Iterator` methods of the same name.
//!
//! Swapping in real work-stealing parallelism later only requires replacing
//! this crate with the real rayon in the workspace manifest; no call site
//! changes.

/// Sequential stand-in for a rayon parallel iterator.
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    /// rayon: `ParallelIterator::map`.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// rayon: `IndexedParallelIterator::zip`.
    pub fn zip<J>(self, other: J) -> Par<std::iter::Zip<I, J::SeqIter>>
    where
        J: IntoSeqIter,
    {
        Par(self.0.zip(other.into_seq_iter()))
    }

    /// rayon: `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// rayon: `ParallelIterator::for_each`.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon: `ParallelIterator::sum`.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// rayon: `ParallelIterator::reduce(identity, op)`.
    ///
    /// Sequentially this folds from one fresh identity; associativity makes
    /// that equivalent to rayon's per-split reduction.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// rayon: `ParallelIterator::fold(identity, fold_op)`.
    ///
    /// rayon yields one accumulator per split; the sequential shim yields
    /// exactly one, which downstream `reduce` then combines.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// rayon: `ParallelIterator::count`.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// rayon: `ParallelIterator::collect`.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// rayon: `ParallelIterator::max_by` etc. are intentionally omitted —
    /// add them here if a call site starts using them.
    pub fn all<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.all(f)
    }
}

/// Conversion used by [`Par::zip`] so both `Par<_>` and plain iterables can
/// appear on the right-hand side, mirroring rayon's `IntoParallelIterator`
/// bound.
pub trait IntoSeqIter {
    /// The underlying sequential iterator type.
    type SeqIter: Iterator;
    /// Unwrap into a sequential iterator.
    fn into_seq_iter(self) -> Self::SeqIter;
}

impl<I: Iterator> IntoSeqIter for Par<I> {
    type SeqIter = I;
    fn into_seq_iter(self) -> I {
        self.0
    }
}

pub mod iter {
    //! Mirror of `rayon::iter` — the entry-point traits.

    use super::Par;

    /// rayon: `IntoParallelIterator` (for `into_par_iter()`).
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into a (sequentially executed) "parallel" iterator.
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Par<Self::Iter> {
            Par(self)
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// rayon: `IntoParallelRefIterator` (for `par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Borrowing "parallel" iterator.
        fn par_iter(&'data self) -> Par<Self::Iter>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par(self.iter())
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par(self.iter())
        }
    }

    /// rayon: `IntoParallelRefMutIterator` (for `par_iter_mut()`).
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Mutably borrowing "parallel" iterator.
        fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
            Par(self.iter_mut())
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
            Par(self.iter_mut())
        }
    }
}

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::Par;
}

/// rayon: `join` — sequential here.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// rayon: `current_num_threads` — the shim always runs on one.
pub fn current_num_threads() -> usize {
    1
}
