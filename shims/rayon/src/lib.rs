//! In-tree stand-in for `rayon`, backed by a **real thread pool** with
//! **deterministic fixed-chunk scheduling**.
//!
//! The registry is unreachable in the build environment, so this shim keeps
//! the workspace's `par_iter()` call sites compiling with the subset of
//! rayon's `ParallelIterator` API the workspace uses — `map`, `zip`,
//! `enumerate`, `for_each`, `sum`, rayon's two-argument
//! `reduce(identity, op)` and chunk-style `fold(identity, fold_op)`,
//! `collect`, `count` and `all`.  Unlike rayon it does **not** work-steal:
//!
//! * A lazily initialised, persistent worker pool is sized by
//!   `LCR_NUM_THREADS` (default: `std::thread::available_parallelism`), or
//!   explicitly via [`initialize_pool`].
//! * Every parallel call is split into chunks whose boundaries depend only
//!   on the data length (tunable per call via [`Par::with_min_len`], never
//!   on the thread count), and per-chunk partial results are combined **in
//!   chunk order** on the calling thread.
//!
//! The second point is this shim's distinguishing guarantee: floating-point
//! reductions (`dot`, norms, SZ quantisation, …) are **bit-identical at any
//! thread count**, which keeps the repository's reproducibility tests
//! meaningful while the kernels scale.  Swapping in the real rayon remains
//! possible at the workspace manifest level, at the price of that guarantee
//! (rayon's split points depend on runtime load).
//!
//! Internally the design is index-based rather than iterator-based: a
//! [`ParSource`] describes random-access data (`len` + `get(i)`), adapters
//! (`Map`, `Zip`, `Enumerate`) compose over it, and terminal operations
//! drive disjoint index ranges on the pool.

#![deny(unsafe_op_in_unsafe_fn)]

mod pool;
pub mod racecheck;

pub use pool::{initialize_pool, max_active_threads, pool_threads, set_max_active_threads};

/// Default minimum number of items per chunk.  Fine enough that every
/// kernel above the crates' parallel thresholds splits, coarse enough that
/// per-chunk bookkeeping stays invisible next to the work.
pub const DEFAULT_MIN_CHUNK: usize = 1024;

/// Upper bound on chunks per parallel call, capping bookkeeping for huge
/// inputs while leaving ample slack for load balance on any realistic
/// thread count.
pub const MAX_CHUNKS: usize = 64;

/// Number of chunks a `len`-item call splits into — a function of the data
/// shape only, never of the thread count (the determinism invariant).
fn chunk_count(len: usize, min_chunk: usize) -> usize {
    (len / min_chunk.max(1)).clamp(1, MAX_CHUNKS)
}

/// Splits `0..len` into deterministic chunks, evaluates
/// `work(start, end)` for each (in parallel when the pool allows), and
/// returns the partial results **in chunk order**.
///
/// Public because the workspace's fused solver kernels combine their
/// reduction partials over **exactly this split** — sharing the function
/// (rather than reimplementing the `chunk_count` / `i * len / n` formula)
/// is what keeps a fused ‖·‖² bit-identical to the `par_iter().sum()` path
/// at every thread count.
pub fn run_chunks<R, F>(len: usize, min_chunk: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let nchunks = chunk_count(len, min_chunk);
    if nchunks == 1 {
        return vec![work(0, len)];
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..nchunks).map(|_| std::sync::Mutex::new(None)).collect();
    // Under `racecheck`, claim every computed chunk range up front — a
    // regression in the split formula (overlap, out-of-bounds) panics here
    // before any worker touches data.
    let claims = racecheck::ClaimSet::new(len);
    pool::execute(nchunks, &|i| {
        let start = i * len / nchunks;
        let end = (i + 1) * len / nchunks;
        claims.claim(start, end);
        *slots[i].lock().unwrap() = Some(work(start, end));
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("pool executed every chunk exactly once")
        })
        .collect()
}

/// Runs `work(task_index)` for every index in `0..ntasks` on the pool and
/// returns the per-task results **in task order**.
///
/// This is the shim's escape hatch for callers that partition the work
/// themselves — e.g. the sparse crate's fused solver kernels, whose chunk
/// boundaries come from a precomputed nnz-balanced `SpmvPlan` rather than a
/// plain length split.  The determinism contract is the caller's partition
/// plus this function's ordered combination: as long as the partition does
/// not depend on the thread count, results (including floating-point
/// reductions folded from the returned partials in order) are bit-identical
/// at any `LCR_NUM_THREADS`.
///
/// Tasks must touch disjoint data when they mutate through shared pointers;
/// which thread runs which task is racy, the per-task work and the result
/// order are not.
pub fn run_ordered<R, F>(ntasks: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if ntasks == 0 {
        return Vec::new();
    }
    if ntasks == 1 || pool::effective_threads() == 1 {
        // Inline fast path: no slot allocation, no pool hand-off.
        return (0..ntasks).map(work).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..ntasks).map(|_| std::sync::Mutex::new(None)).collect();
    pool::execute(ntasks, &|i| {
        *slots[i].lock().unwrap() = Some(work(i));
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("pool executed every task exactly once")
        })
        .collect()
}

/// Random-access description of parallelisable data: `len` indices, each
/// producing one item.  Composable (see [`Map`], [`Zip`], [`Enumerate`])
/// and driven in disjoint index ranges by the terminal operations.
pub trait ParSource: Sync {
    /// Item produced per index.
    type Item;

    /// Number of indices.
    fn len(&self) -> usize;

    /// Whether the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `index`.
    ///
    /// # Safety
    /// Sources handing out exclusive access (`par_iter_mut`, by-value
    /// sources) rely on each index being driven **at most once** across all
    /// threads.  The chunk driver guarantees this by partitioning `0..len`
    /// into disjoint ranges; other callers must do the same.
    unsafe fn get(&self, index: usize) -> Self::Item;

    /// Informs the source that indices `>= len` will never be driven
    /// (`zip` truncates to the shorter side).  By-value sources drop the
    /// tail items eagerly so nothing is leaked; borrowing sources need no
    /// action.
    fn truncate(&mut self, _len: usize) {}
}

/// Borrowing source over a slice (`par_iter`).
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    // SAFETY: shared references are free to alias; the only obligation is
    // `index < len`, which the chunk driver's `0..len` partition upholds.
    unsafe fn get(&self, index: usize) -> &'a T {
        // SAFETY: `index < self.slice.len()` per the `get` contract.
        unsafe { self.slice.get_unchecked(index) }
    }
}

/// Mutably borrowing source over a slice (`par_iter_mut`).  Raw-pointer
/// based so disjoint indices can be driven from different threads.  Under
/// the `racecheck` feature each index records its delivery, so an index
/// driven twice — an aliased `&mut` — panics instead of racing.
pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    #[cfg(feature = "racecheck")]
    driven: Vec<std::sync::atomic::AtomicBool>,
    _marker: std::marker::PhantomData<&'a mut T>,
}

// SAFETY: items are `&mut T` handed out for disjoint indices only (the
// `get` contract), so sharing the source across threads is sound when the
// items themselves may move between threads.
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

impl<'a, T: Send> ParSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    // SAFETY: the disjointness contract of `get` (each index driven at
    // most once) is exactly what makes handing out `&mut` from `&self`
    // sound here; `racecheck` builds verify it per index at runtime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, index: usize) -> &'a mut T {
        #[cfg(feature = "racecheck")]
        if self.driven[index].swap(true, std::sync::atomic::Ordering::Relaxed) {
            panic!("racecheck: par_iter_mut index {index} driven twice — aliased `&mut`");
        }
        // SAFETY: `index < self.len` and each index is driven at most once
        // (the `get` contract), so this `&mut` never aliases another.
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Source over a `usize` range (`(a..b).into_par_iter()`).
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl ParSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    // SAFETY: produces a plain integer — no exclusivity to uphold; the
    // trait's at-most-once contract is vacuously satisfied.
    unsafe fn get(&self, index: usize) -> usize {
        self.start + index
    }
}

/// By-value source over a `Vec` (`vec.into_par_iter()`).  Items are moved
/// out with `ptr::read` (zip-truncated tails are dropped eagerly by
/// [`ParSource::truncate`]); the buffer (not the items) is freed on drop,
/// so items never driven — possible only if a terminal operation panicked
/// — are leaked rather than double-dropped.
pub struct VecSource<T> {
    buf: std::mem::ManuallyDrop<Vec<T>>,
}

// SAFETY: disjoint `get` calls move disjoint items; `T: Send` lets them
// land on other threads.
unsafe impl<T: Send> Sync for VecSource<T> {}

impl<T: Send> ParSource for VecSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.buf.len()
    }
    // SAFETY: moves the item out by value; sound because each index is
    // driven at most once (the `get` contract) and the buffer's drop never
    // touches the items again.
    unsafe fn get(&self, index: usize) -> T {
        // SAFETY: `index < len`, and at-most-once delivery means the item
        // is never read (or dropped) twice.
        unsafe { std::ptr::read(self.buf.as_ptr().add(index)) }
    }
    fn truncate(&mut self, len: usize) {
        let cur = self.buf.len();
        if len < cur {
            // SAFETY: indices `len..cur` will never be driven, so dropping
            // them here is their only drop; set_len keeps `get` in bounds.
            unsafe {
                for i in len..cur {
                    std::ptr::drop_in_place(self.buf.as_mut_ptr().add(i));
                }
                self.buf.set_len(len);
            }
        }
    }
}

impl<T> Drop for VecSource<T> {
    fn drop(&mut self) {
        // SAFETY: driven items were moved out; setting len to 0 frees the
        // buffer without touching them again.
        unsafe {
            let mut v = std::mem::ManuallyDrop::take(&mut self.buf);
            v.set_len(0);
        }
    }
}

/// rayon: `ParallelIterator::map` (lazy adapter).
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: ParSource, U, F: Fn(S::Item) -> U + Sync> ParSource for Map<S, F> {
    type Item = U;
    fn len(&self) -> usize {
        self.source.len()
    }
    // SAFETY: forwards the caller's at-most-once-per-index obligation to
    // the inner source unchanged.
    unsafe fn get(&self, index: usize) -> U {
        // SAFETY: same index, same contract as our own caller's.
        (self.f)(unsafe { self.source.get(index) })
    }
    fn truncate(&mut self, len: usize) {
        self.source.truncate(len);
    }
}

/// rayon: `IndexedParallelIterator::zip` (lazy adapter).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParSource, B: ParSource> ParSource for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    // SAFETY: forwards the caller's at-most-once-per-index obligation to
    // both inner sources unchanged.
    unsafe fn get(&self, index: usize) -> (A::Item, B::Item) {
        // SAFETY: same index, same contract as our own caller's.
        unsafe { (self.a.get(index), self.b.get(index)) }
    }
    fn truncate(&mut self, len: usize) {
        self.a.truncate(len);
        self.b.truncate(len);
    }
}

/// rayon: `IndexedParallelIterator::enumerate` (lazy adapter).
pub struct Enumerate<S> {
    source: S,
}

impl<S: ParSource> ParSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.source.len()
    }
    // SAFETY: forwards the caller's at-most-once-per-index obligation to
    // the inner source unchanged.
    unsafe fn get(&self, index: usize) -> (usize, S::Item) {
        // SAFETY: same index, same contract as our own caller's.
        (index, unsafe { self.source.get(index) })
    }
    fn truncate(&mut self, len: usize) {
        self.source.truncate(len);
    }
}

/// A parallel iterator: a [`ParSource`] plus the chunking policy.
pub struct Par<S> {
    source: S,
    min_chunk: usize,
}

impl<S: ParSource> Par<S> {
    fn new(source: S) -> Self {
        Par {
            source,
            min_chunk: DEFAULT_MIN_CHUNK,
        }
    }

    /// rayon: `IndexedParallelIterator::with_min_len` — minimum items per
    /// chunk.  Call-site constants keep chunking (and therefore results)
    /// deterministic; use a small value when each item is itself a large
    /// unit of work (e.g. one compression block).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_chunk = min.max(1);
        self
    }

    /// rayon: `ParallelIterator::map`.
    pub fn map<U, F: Fn(S::Item) -> U + Sync>(self, f: F) -> Par<Map<S, F>> {
        Par {
            source: Map {
                source: self.source,
                f,
            },
            min_chunk: self.min_chunk,
        }
    }

    /// rayon: `IndexedParallelIterator::zip`.  Lengths are truncated to the
    /// shorter side, as in rayon; by-value sources drop the cut-off tail
    /// immediately so nothing leaks.
    pub fn zip<J: IntoParSource>(self, other: J) -> Par<Zip<S, J::Source>> {
        let mut a = self.source;
        let mut b = other.into_par_source();
        let len = a.len().min(b.len());
        a.truncate(len);
        b.truncate(len);
        Par {
            source: Zip { a, b },
            min_chunk: self.min_chunk,
        }
    }

    /// rayon: `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> Par<Enumerate<S>> {
        Par {
            source: Enumerate {
                source: self.source,
            },
            min_chunk: self.min_chunk,
        }
    }

    /// rayon: `ParallelIterator::for_each`.
    pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
        let src = &self.source;
        let f = &f;
        run_chunks(src.len(), self.min_chunk, move |start, end| {
            for i in start..end {
                // SAFETY: chunk ranges are disjoint.
                f(unsafe { src.get(i) });
            }
        });
    }

    /// rayon: `ParallelIterator::sum`.  Per-chunk partial sums are combined
    /// in chunk order, so the result is bit-identical at any thread count.
    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        let src = &self.source;
        let partials = run_chunks(src.len(), self.min_chunk, |start, end| {
            // SAFETY: chunk ranges are disjoint.
            (start..end).map(|i| unsafe { src.get(i) }).sum::<T>()
        });
        partials.into_iter().sum()
    }

    /// rayon: `ParallelIterator::reduce(identity, op)`.  Each chunk folds
    /// from a fresh identity; chunk partials are combined in chunk order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        S::Item: Send,
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        let src = &self.source;
        let identity = &identity;
        let op = &op;
        let partials = run_chunks(src.len(), self.min_chunk, move |start, end| {
            let mut acc = identity();
            for i in start..end {
                // SAFETY: chunk ranges are disjoint.
                acc = op(acc, unsafe { src.get(i) });
            }
            acc
        });
        partials.into_iter().fold(identity(), op)
    }

    /// rayon: `ParallelIterator::fold(identity, fold_op)` — yields one
    /// accumulator per chunk, to be combined by [`Fold::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<S, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, S::Item) -> T + Sync,
    {
        Fold {
            par: self,
            identity,
            fold_op,
        }
    }

    /// rayon: `ParallelIterator::count` (drives every item, counting them).
    pub fn count(self) -> usize {
        let src = &self.source;
        let partials = run_chunks(src.len(), self.min_chunk, |start, end| {
            let mut c = 0usize;
            for i in start..end {
                // SAFETY: chunk ranges are disjoint.
                let _ = unsafe { src.get(i) };
                c += 1;
            }
            c
        });
        partials.into_iter().sum()
    }

    /// rayon: `ParallelIterator::collect` — per-chunk buffers concatenated
    /// in chunk order, preserving index order.
    pub fn collect<C: FromIterator<S::Item>>(self) -> C
    where
        S::Item: Send,
    {
        let src = &self.source;
        let parts: Vec<Vec<S::Item>> = run_chunks(src.len(), self.min_chunk, |start, end| {
            // SAFETY: chunk ranges are disjoint.
            (start..end).map(|i| unsafe { src.get(i) }).collect()
        });
        parts.into_iter().flatten().collect()
    }

    /// rayon: `ParallelIterator::all` (no early exit — every item is
    /// driven, which by-value sources rely on).
    pub fn all<F: Fn(S::Item) -> bool + Sync>(self, f: F) -> bool {
        let src = &self.source;
        let f = &f;
        let parts = run_chunks(src.len(), self.min_chunk, move |start, end| {
            let mut ok = true;
            for i in start..end {
                // SAFETY: chunk ranges are disjoint.
                ok &= f(unsafe { src.get(i) });
            }
            ok
        });
        parts.into_iter().all(|b| b)
    }
}

/// The pending state of `fold(identity, fold_op)`: one accumulator per
/// chunk, awaiting the chunk-order combination that [`Fold::reduce`]
/// performs.
pub struct Fold<S, ID, F> {
    par: Par<S>,
    identity: ID,
    fold_op: F,
}

impl<S, T, ID, F> Fold<S, ID, F>
where
    S: ParSource,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, S::Item) -> T + Sync,
{
    /// rayon: `ParallelIterator::reduce` applied to the per-chunk
    /// accumulators, in chunk order.
    pub fn reduce<ID2, OP>(self, identity: ID2, op: OP) -> T
    where
        ID2: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        let src = &self.par.source;
        let id = &self.identity;
        let fold_op = &self.fold_op;
        let partials = run_chunks(src.len(), self.par.min_chunk, move |start, end| {
            let mut acc = id();
            for i in start..end {
                // SAFETY: chunk ranges are disjoint.
                acc = fold_op(acc, unsafe { src.get(i) });
            }
            acc
        });
        partials.into_iter().fold(identity(), op)
    }
}

/// Conversion used by [`Par::zip`] so both `Par<_>` and plain sources can
/// appear on the right-hand side, mirroring rayon's
/// `IntoParallelIterator` bound.
pub trait IntoParSource {
    /// The underlying source type.
    type Source: ParSource;
    /// Unwrap into a source.
    fn into_par_source(self) -> Self::Source;
}

impl<S: ParSource> IntoParSource for Par<S> {
    type Source = S;
    fn into_par_source(self) -> S {
        self.source
    }
}

pub mod iter {
    //! Mirror of `rayon::iter` — the entry-point traits.

    use super::{Par, ParSource, RangeSource, SliceMutSource, SliceSource, VecSource};

    /// rayon: `IntoParallelIterator` (for `into_par_iter()`).
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Source type produced.
        type Source: ParSource<Item = Self::Item>;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Par<Self::Source>;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Source = RangeSource;
        fn into_par_iter(self) -> Par<RangeSource> {
            Par::new(RangeSource {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            })
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Source = VecSource<T>;
        fn into_par_iter(self) -> Par<VecSource<T>> {
            Par::new(VecSource {
                buf: std::mem::ManuallyDrop::new(self),
            })
        }
    }

    /// rayon: `IntoParallelRefIterator` (for `par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Source type produced.
        type Source: ParSource<Item = Self::Item>;
        /// Borrowing parallel iterator.
        fn par_iter(&'data self) -> Par<Self::Source>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Source = SliceSource<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Source> {
            Par::new(SliceSource { slice: self })
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Source = SliceSource<'data, T>;
        fn par_iter(&'data self) -> Par<Self::Source> {
            Par::new(SliceSource { slice: self })
        }
    }

    /// rayon: `IntoParallelRefMutIterator` (for `par_iter_mut()`).
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Source type produced.
        type Source: ParSource<Item = Self::Item>;
        /// Mutably borrowing parallel iterator.
        fn par_iter_mut(&'data mut self) -> Par<Self::Source>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Source = SliceMutSource<'data, T>;
        fn par_iter_mut(&'data mut self) -> Par<Self::Source> {
            let len = self.len();
            Par::new(SliceMutSource {
                ptr: self.as_mut_ptr(),
                len,
                #[cfg(feature = "racecheck")]
                driven: (0..len)
                    .map(|_| std::sync::atomic::AtomicBool::new(false))
                    .collect(),
                _marker: std::marker::PhantomData,
            })
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Source = SliceMutSource<'data, T>;
        fn par_iter_mut(&'data mut self) -> Par<Self::Source> {
            self.as_mut_slice().par_iter_mut()
        }
    }
}

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::Par;
}

/// rayon: `join` — sequential here (the workspace only uses the iterator
/// API; `join` exists for drop-in compatibility).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// rayon: `current_num_threads` — the threads a parallel call issued from
/// this thread would use (pool size, capped by
/// [`set_max_active_threads`]).
pub fn current_num_threads() -> usize {
    pool::effective_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn big(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn map_sum_matches_sequential_bitwise_at_any_cap() {
        let a = big(100_000, 1);
        let one: f64 = {
            set_max_active_threads(1);
            a.par_iter().map(|v| v * v).sum()
        };
        let many: f64 = {
            set_max_active_threads(0);
            a.par_iter().map(|v| v * v).sum()
        };
        assert_eq!(one.to_bits(), many.to_bits());
    }

    #[test]
    fn zip_for_each_mutates_disjointly() {
        let a = big(50_000, 2);
        let mut y = vec![0.0f64; 50_000];
        y.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(yi, ai)| *yi = 2.0 * ai);
        for (yi, ai) in y.iter().zip(a.iter()) {
            assert_eq!(*yi, 2.0 * ai);
        }
    }

    #[test]
    fn enumerate_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 10_000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
        let e: Vec<(usize, usize)> = (5..9_005).into_par_iter().enumerate().collect();
        assert_eq!(e[0], (0, 5));
        assert_eq!(e[9_000 - 1], (8_999, 9_004));
    }

    #[test]
    fn fold_reduce_chunk_accumulators() {
        let a = big(70_000, 3);
        let (mn, mx) = a
            .par_iter()
            .fold(
                || (f64::INFINITY, f64::NEG_INFINITY),
                |(mn, mx), &v| (mn.min(v), mx.max(v)),
            )
            .reduce(
                || (f64::INFINITY, f64::NEG_INFINITY),
                |(amn, amx), (bmn, bmx)| (amn.min(bmn), amx.max(bmx)),
            );
        let smn = a.iter().cloned().fold(f64::INFINITY, f64::min);
        let smx = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(mn, smn);
        assert_eq!(mx, smx);
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..5_000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 5_000);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[4_999], 4);
    }

    #[test]
    fn zip_truncation_drops_by_value_tail() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let long: Vec<Counted> = (0..3_000).map(Counted).collect();
        let short = vec![1.0f64; 2_000];
        DROPS.store(0, Ordering::SeqCst);
        let n = long
            .into_par_iter()
            .zip(short.par_iter())
            .map(|(c, _)| c)
            .count();
        assert_eq!(n, 2_000);
        // The 1,000 cut-off items dropped at zip time, the 2,000 driven
        // ones when the terminal op consumed them: nothing leaked.
        assert_eq!(DROPS.load(Ordering::SeqCst), 3_000);
    }

    #[test]
    fn count_and_all() {
        let v = big(40_000, 4);
        assert_eq!(v.par_iter().count(), 40_000);
        assert!(v.par_iter().all(|x| x.abs() <= 0.5));
        assert!(!v.par_iter().all(|x| *x > 0.0));
    }

    #[test]
    fn with_min_len_still_deterministic() {
        let v = big(200, 5);
        let fine: f64 = {
            set_max_active_threads(1);
            v.par_iter().with_min_len(1).sum()
        };
        let same: f64 = {
            set_max_active_threads(0);
            v.par_iter().with_min_len(1).sum()
        };
        assert_eq!(fine.to_bits(), same.to_bits());
    }

    #[test]
    fn chunking_is_a_function_of_length_only() {
        assert_eq!(chunk_count(10, DEFAULT_MIN_CHUNK), 1);
        assert_eq!(chunk_count(4 * DEFAULT_MIN_CHUNK, DEFAULT_MIN_CHUNK), 4);
        assert_eq!(chunk_count(usize::MAX / 2, DEFAULT_MIN_CHUNK), MAX_CHUNKS);
        assert_eq!(chunk_count(100, 1), MAX_CHUNKS.min(100));
    }

    #[test]
    #[should_panic(expected = "deliberate kernel panic")]
    fn panic_payload_survives_parallel_execution() {
        // Whether the panicking chunk lands on the caller or a worker
        // (LCR_NUM_THREADS decides), the original message must surface.
        let v: Vec<usize> = (0..100_000).collect();
        v.par_iter().for_each(|&i| {
            assert!(i != 77_777, "deliberate kernel panic at {i}");
        });
    }

    #[test]
    fn pool_survives_repeated_worker_panics() {
        // Regression test for the ticket-revocation/panic plumbing: a
        // worker panicking mid-job must still check its ticket in (so
        // `wait_tickets` cannot deadlock), the payload must surface on the
        // caller, and the pool must stay fully usable afterwards.
        initialize_pool(4);
        let v: Vec<usize> = (0..200_000).collect();
        let expect: usize = v.len() * (v.len() - 1) / 2;
        for round in 0..8usize {
            let bomb = (round * 24_989) % v.len();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                v.par_iter().for_each(|&i| {
                    assert!(i != bomb, "deliberate stress panic at {i}");
                });
            }))
            .unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("deliberate stress panic"),
                "round {round}: foreign payload: {msg}"
            );
            // The very next parallel call must run to completion with the
            // right answer — no leaked job, no stuck ticket.
            let s: usize = v.par_iter().map(|&x| x).sum();
            assert_eq!(s, expect, "round {round}: pool corrupted after panic");
        }
    }

    #[cfg(feature = "racecheck")]
    #[test]
    fn par_iter_mut_claims_each_index_once() {
        // Normal use drives every index exactly once; the racecheck
        // delivery bitmap must stay silent for it.
        let mut v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        v.par_iter_mut().for_each(|x| *x += 1.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[9_999], 10_000.0);
    }

    #[cfg(feature = "racecheck")]
    #[test]
    fn slice_mut_source_panics_on_double_drive() {
        let mut v = vec![0.0f64; 4];
        let src = SliceMutSource {
            ptr: v.as_mut_ptr(),
            len: v.len(),
            driven: (0..4)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            _marker: std::marker::PhantomData,
        };
        // SAFETY: index 1 is in bounds and has not been driven yet.
        let first = unsafe { src.get(1) };
        *first = 7.0;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: in bounds; the point is that the *contract* is now
            // violated and racecheck must catch it before any aliasing.
            let _ = unsafe { src.get(1) };
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("driven twice"), "unexpected message: {msg}");
    }

    #[test]
    fn run_ordered_returns_results_in_task_order() {
        let v = big(80_000, 6);
        // Caller-defined uneven partition: results must come back in task
        // order regardless of which thread ran which task.
        let bounds = [0usize, 13_000, 13_001, 50_000, 80_000];
        let partial = |lo: usize, hi: usize| v[lo..hi].iter().sum::<f64>();
        let seq: Vec<f64> = bounds.windows(2).map(|w| partial(w[0], w[1])).collect();
        set_max_active_threads(0);
        let par = run_ordered(bounds.len() - 1, |i| partial(bounds[i], bounds[i + 1]));
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert_eq!(p.to_bits(), s.to_bits());
        }
        set_max_active_threads(1);
        let one = run_ordered(bounds.len() - 1, |i| partial(bounds[i], bounds[i + 1]));
        set_max_active_threads(0);
        assert_eq!(one, par);
        assert!(run_ordered(0, |_| 0.0f64).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<f64> = Vec::new();
        let s: f64 = v.par_iter().map(|x| *x).sum();
        assert_eq!(s, 0.0);
        let c: Vec<f64> = v.par_iter().map(|x| *x).collect();
        assert!(c.is_empty());
        assert_eq!((0..0).into_par_iter().count(), 0);
    }
}
