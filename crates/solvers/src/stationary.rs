//! Stationary iterative methods: Jacobi, Gauss–Seidel, SOR and SSOR.
//!
//! Section 4.4.1 of the paper analyses the impact of lossy checkpointing on
//! these methods through the contraction `‖x⁽ⁱ⁾ − x*‖ ≈ Rⁱ‖x*‖` of the
//! iteration `x⁽ⁱ⁾ = G x⁽ⁱ⁻¹⁾ + c`, where `R` is the spectral radius of the
//! iteration matrix `G`.  All four methods share that form, so they share a
//! single implementation parameterised by [`StationaryKind`], with
//! [`Jacobi`], [`GaussSeidel`], [`Sor`] and [`Ssor`] as thin constructors.
//!
//! Each `step()` performs one sweep.  The residual is recomputed as
//! `r = b − A x` (a *recomputed variable* in the paper's classification),
//! and only `x` and the iteration counter are dynamic state.
//!
//! The Jacobi sweep reads only the previous iterate, so it runs on the
//! matrix's nnz-balanced [`SpmvPlan`](lcr_sparse::SpmvPlan) row chunks
//! ([`kernels::jacobi_sweep`]); the residual refresh fuses the subtraction
//! and the norm into the matrix traversal ([`kernels::residual_norm2`]),
//! replacing a per-step allocation plus two extra sweeps.  Gauss–Seidel and
//! SOR update in place (loop-carried dependence) and stay sequential.

use crate::convergence::{ConvergenceHistory, StoppingCriteria};
use crate::{DynamicState, IterativeMethod, LinearSystem};
use lcr_sparse::{kernels, Vector};

/// Which stationary sweep to perform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationaryKind {
    /// Jacobi sweep (simultaneous updates).
    Jacobi,
    /// Gauss–Seidel sweep (in-place forward updates).
    GaussSeidel,
    /// Successive over-relaxation with factor ω.
    Sor(f64),
    /// Symmetric SOR: a forward followed by a backward relaxed sweep.
    Ssor(f64),
}

impl StationaryKind {
    fn name(&self) -> &'static str {
        match self {
            StationaryKind::Jacobi => "jacobi",
            StationaryKind::GaussSeidel => "gauss-seidel",
            StationaryKind::Sor(_) => "sor",
            StationaryKind::Ssor(_) => "ssor",
        }
    }
}

/// A stationary iterative solver.
#[derive(Debug, Clone)]
pub struct StationarySolver {
    system: LinearSystem,
    kind: StationaryKind,
    criteria: StoppingCriteria,
    x: Vector,
    scratch: Vector,
    iteration: usize,
    residual_norm: f64,
    reference_norm: f64,
    history: ConvergenceHistory,
}

/// Jacobi method constructor alias.
pub struct Jacobi;
/// Gauss–Seidel method constructor alias.
pub struct GaussSeidel;
/// SOR method constructor alias.
pub struct Sor;
/// SSOR method constructor alias.
pub struct Ssor;

impl Jacobi {
    /// Creates a Jacobi solver.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(system: LinearSystem, x0: Vector, criteria: StoppingCriteria) -> StationarySolver {
        StationarySolver::new(system, StationaryKind::Jacobi, x0, criteria)
    }
}

impl GaussSeidel {
    /// Creates a Gauss–Seidel solver.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(system: LinearSystem, x0: Vector, criteria: StoppingCriteria) -> StationarySolver {
        StationarySolver::new(system, StationaryKind::GaussSeidel, x0, criteria)
    }
}

impl Sor {
    /// Creates an SOR solver with relaxation factor `omega`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        system: LinearSystem,
        x0: Vector,
        omega: f64,
        criteria: StoppingCriteria,
    ) -> StationarySolver {
        StationarySolver::new(system, StationaryKind::Sor(omega), x0, criteria)
    }
}

impl Ssor {
    /// Creates an SSOR solver with relaxation factor `omega`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        system: LinearSystem,
        x0: Vector,
        omega: f64,
        criteria: StoppingCriteria,
    ) -> StationarySolver {
        StationarySolver::new(system, StationaryKind::Ssor(omega), x0, criteria)
    }
}

impl StationarySolver {
    /// Creates a stationary solver of the given kind.
    ///
    /// # Panics
    /// Panics if the matrix has a zero diagonal entry, if dimensions are
    /// inconsistent, or if an SOR/SSOR relaxation factor is outside `(0, 2)`.
    pub fn new(
        system: LinearSystem,
        kind: StationaryKind,
        x0: Vector,
        criteria: StoppingCriteria,
    ) -> Self {
        assert_eq!(x0.len(), system.dim(), "x0 dimension mismatch");
        system
            .a
            .require_nonzero_diagonal()
            .expect("stationary methods need a non-zero diagonal");
        if let StationaryKind::Sor(w) | StationaryKind::Ssor(w) = kind {
            assert!(w > 0.0 && w < 2.0, "relaxation factor must be in (0, 2)");
        }
        let reference_norm = system.b.norm2();
        let residual_norm = system.a.residual(&x0, &system.b).norm2();
        let history = ConvergenceHistory::new(residual_norm);
        let n = system.dim();
        StationarySolver {
            system,
            kind,
            criteria,
            x: x0,
            scratch: Vector::zeros(n),
            iteration: 0,
            residual_norm,
            reference_norm,
            history,
        }
    }

    /// The stopping criteria in use.
    pub fn criteria(&self) -> &StoppingCriteria {
        &self.criteria
    }

    /// Estimates the spectral radius `R` of the iteration matrix from the
    /// observed contraction of the residual (Theorem 2 uses this `R`).
    pub fn estimated_spectral_radius(&self) -> Option<f64> {
        self.history.contraction_factor()
    }

    fn jacobi_sweep(&mut self) {
        kernels::jacobi_sweep(
            &self.system.a,
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.scratch.as_mut_slice(),
        );
        std::mem::swap(&mut self.x, &mut self.scratch);
    }

    fn relaxed_forward_sweep(&mut self, omega: f64) {
        let a = &self.system.a;
        let b = &self.system.b;
        let n = self.x.len();
        for i in 0..n {
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (pos, &j) in a.row_indices(i).iter().enumerate() {
                let v = a.row_values(i)[pos];
                if j == i {
                    diag = v;
                } else {
                    sigma += v * self.x[j];
                }
            }
            let gs_value = (b[i] - sigma) / diag;
            self.x[i] = (1.0 - omega) * self.x[i] + omega * gs_value;
        }
    }

    fn relaxed_backward_sweep(&mut self, omega: f64) {
        let a = &self.system.a;
        let b = &self.system.b;
        let n = self.x.len();
        for i in (0..n).rev() {
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (pos, &j) in a.row_indices(i).iter().enumerate() {
                let v = a.row_values(i)[pos];
                if j == i {
                    diag = v;
                } else {
                    sigma += v * self.x[j];
                }
            }
            let gs_value = (b[i] - sigma) / diag;
            self.x[i] = (1.0 - omega) * self.x[i] + omega * gs_value;
        }
    }

    fn refresh_residual(&mut self) {
        // Fused r = b - A x and ||r||^2 into the scratch buffer (dead
        // between sweeps): no allocation, no separate subtraction or norm
        // sweep.
        self.residual_norm = kernels::residual_norm2(
            &self.system.a,
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.scratch.as_mut_slice(),
        )
        .sqrt();
    }
}

impl IterativeMethod for StationarySolver {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn residual_norm(&self) -> f64 {
        self.residual_norm
    }

    fn reference_norm(&self) -> f64 {
        self.reference_norm
    }

    fn solution(&self) -> &Vector {
        &self.x
    }

    fn converged(&self) -> bool {
        self.criteria
            .is_satisfied(self.residual_norm, self.reference_norm)
            || self.criteria.limit_reached(self.iteration)
    }

    fn step(&mut self) {
        if self.converged() {
            return;
        }
        match self.kind {
            StationaryKind::Jacobi => self.jacobi_sweep(),
            StationaryKind::GaussSeidel => self.relaxed_forward_sweep(1.0),
            StationaryKind::Sor(w) => self.relaxed_forward_sweep(w),
            StationaryKind::Ssor(w) => {
                self.relaxed_forward_sweep(w);
                self.relaxed_backward_sweep(w);
            }
        }
        self.iteration += 1;
        self.refresh_residual();
        self.history.record(self.residual_norm);
        if self.criteria.limit_reached(self.iteration) {
            self.history.limit_reached = true;
        }
    }

    fn capture_state(&self) -> DynamicState {
        DynamicState {
            iteration: self.iteration,
            scalars: Vec::new(),
            vectors: vec![("x".to_string(), self.x.clone())],
        }
    }

    fn restore_state(&mut self, state: &DynamicState) {
        let x = state
            .vector("x")
            .expect("stationary checkpoint must contain x")
            .clone();
        self.restart_from_solution(x, state.iteration);
    }

    fn restart_from_solution(&mut self, x: Vector, iteration: usize) {
        assert_eq!(x.len(), self.system.dim(), "restart vector dimension");
        self.x = x;
        self.iteration = iteration;
        self.refresh_residual();
        self.history.record_restart(iteration);
    }

    fn history(&self) -> &ConvergenceHistory {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterativeMethod;
    use lcr_sparse::poisson::{manufactured_rhs, poisson1d, poisson2d, poisson3d};

    fn criteria(rtol: f64) -> StoppingCriteria {
        StoppingCriteria::new(rtol, 100_000)
    }

    fn poisson2d_system(n: usize) -> (LinearSystem, Vector) {
        let a = poisson2d(n);
        let (xstar, b) = manufactured_rhs(&a);
        (LinearSystem::new(a, b), xstar)
    }

    #[test]
    fn jacobi_converges_on_poisson2d() {
        let (sys, xstar) = poisson2d_system(8);
        let mut solver = Jacobi::new(sys, Vector::zeros(64), criteria(1e-8));
        let iters = solver.run_to_convergence();
        assert!(iters > 0);
        assert!(solver.converged());
        assert!(!solver.history().limit_reached);
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-5);
        assert_eq!(solver.name(), "jacobi");
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (sys, _) = poisson2d_system(8);
        let mut j = Jacobi::new(sys.clone(), Vector::zeros(64), criteria(1e-8));
        let mut gs = GaussSeidel::new(sys, Vector::zeros(64), criteria(1e-8));
        let ji = j.run_to_convergence();
        let gi = gs.run_to_convergence();
        assert!(gi < ji, "Gauss-Seidel ({gi}) should beat Jacobi ({ji})");
    }

    #[test]
    fn sor_with_good_omega_beats_gauss_seidel() {
        let (sys, _) = poisson2d_system(10);
        let n = sys.dim();
        let mut gs = GaussSeidel::new(sys.clone(), Vector::zeros(n), criteria(1e-8));
        // Near-optimal omega for the 10x10 Poisson problem.
        let mut sor = Sor::new(sys, Vector::zeros(n), 1.5, criteria(1e-8));
        let gi = gs.run_to_convergence();
        let si = sor.run_to_convergence();
        assert!(si < gi, "SOR ({si}) should beat Gauss-Seidel ({gi})");
    }

    #[test]
    fn ssor_converges() {
        let (sys, xstar) = poisson2d_system(6);
        let n = sys.dim();
        let mut solver = Ssor::new(sys, Vector::zeros(n), 1.2, criteria(1e-9));
        solver.run_to_convergence();
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-5);
        assert_eq!(solver.name(), "ssor");
    }

    #[test]
    fn jacobi_on_poisson3d_paper_matrix() {
        let a = poisson3d(5);
        let (xstar, b) = manufactured_rhs(&a);
        let sys = LinearSystem::new(a, b);
        let n = sys.dim();
        let mut solver = Jacobi::new(sys, Vector::zeros(n), criteria(1e-10));
        solver.run_to_convergence();
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-6);
    }

    #[test]
    fn residual_decreases_monotonically_for_jacobi_on_poisson() {
        let (sys, _) = poisson2d_system(6);
        let n = sys.dim();
        let mut solver = Jacobi::new(sys, Vector::zeros(n), criteria(1e-6));
        let mut prev = solver.residual_norm();
        for _ in 0..50 {
            solver.step();
            assert!(solver.residual_norm() <= prev * (1.0 + 1e-12));
            prev = solver.residual_norm();
        }
    }

    #[test]
    fn capture_restore_roundtrip_is_exact() {
        let (sys, _) = poisson2d_system(6);
        let n = sys.dim();
        let mut solver = Jacobi::new(sys.clone(), Vector::zeros(n), criteria(1e-12));
        for _ in 0..20 {
            solver.step();
        }
        let state = solver.capture_state();
        assert_eq!(state.iteration, 20);

        // Run the original forward as the reference.
        let mut reference = solver.clone();
        for _ in 0..10 {
            reference.step();
        }

        // Restore a fresh solver from the checkpoint: it must follow the
        // exact same trajectory (traditional checkpointing is exact).
        let mut restored = Jacobi::new(sys, Vector::zeros(n), criteria(1e-12));
        restored.restore_state(&state);
        assert_eq!(restored.iteration(), 20);
        for _ in 0..10 {
            restored.step();
        }
        assert!(restored
            .solution()
            .max_abs_diff(reference.solution())
            .abs()
            < 1e-15);
    }

    #[test]
    fn lossy_restart_still_converges_to_same_tolerance() {
        let (sys, xstar) = poisson2d_system(8);
        let n = sys.dim();
        let mut solver = Jacobi::new(sys, Vector::zeros(n), criteria(1e-8));
        for _ in 0..30 {
            solver.step();
        }
        // Perturb the solution like a lossy decompression with a relative
        // error bound of 1e-4 would.
        let mut x = solver.solution().clone();
        for (i, v) in x.iter_mut().enumerate() {
            *v *= 1.0 + 1e-4 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        solver.restart_from_solution(x, 30);
        solver.run_to_convergence();
        assert!(solver.converged());
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-4);
        assert_eq!(solver.history().restarts(), &[30]);
    }

    #[test]
    fn spectral_radius_estimate_is_below_one() {
        let (sys, _) = poisson2d_system(8);
        let n = sys.dim();
        let mut solver = Jacobi::new(sys, Vector::zeros(n), criteria(1e-10));
        solver.run_to_convergence();
        let r = solver.estimated_spectral_radius().unwrap();
        assert!(r > 0.0 && r < 1.0, "estimated R = {r}");
    }

    #[test]
    fn iteration_limit_reported() {
        let (sys, _) = poisson2d_system(8);
        let n = sys.dim();
        let mut solver = Jacobi::new(sys, Vector::zeros(n), StoppingCriteria::new(1e-14, 5));
        solver.run_to_convergence();
        assert_eq!(solver.iteration(), 5);
        assert!(solver.history().limit_reached);
        // Further steps are no-ops.
        solver.step();
        assert_eq!(solver.iteration(), 5);
    }

    #[test]
    fn solves_1d_system_exactly_eventually() {
        let a = poisson1d(20);
        let (xstar, b) = manufactured_rhs(&a);
        let sys = LinearSystem::new(a, b);
        let mut solver = GaussSeidel::new(sys, Vector::zeros(20), criteria(1e-12));
        solver.run_to_convergence();
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "x0 dimension mismatch")]
    fn dimension_mismatch_panics() {
        let (sys, _) = poisson2d_system(4);
        let _ = Jacobi::new(sys, Vector::zeros(3), criteria(1e-6));
    }

    #[test]
    #[should_panic(expected = "relaxation factor")]
    fn bad_omega_panics() {
        let (sys, _) = poisson2d_system(4);
        let n = sys.dim();
        let _ = Sor::new(sys, Vector::zeros(n), 2.5, criteria(1e-6));
    }
}
