//! Preconditioned conjugate gradient (PCG) and its restarted variant.
//!
//! Algorithm 1 of the paper is the fault-tolerant PCG with traditional
//! checkpointing: the dynamic variables are the iteration counter `i`, the
//! scalar `ρ`, the direction vector `p` and the solution `x`; the residual
//! `r` is recomputed after recovery.  [`ConjugateGradient`] implements
//! exactly that state machine.
//!
//! Algorithm 2 is the lossy-checkpointing variant: only `x` is saved, and a
//! recovery performs a *restart* — the decompressed `x` becomes a new
//! initial guess and a fresh Krylov space is built (`r = b − A x`,
//! `z = M⁻¹ r`, `p = z`, `ρ = rᵀz`), because the compression error breaks
//! the orthogonality relations CG's superlinear convergence rests on
//! (§4.2).  [`RestartedCg`] adds the paper's periodic-restart behaviour on
//! top of the same core so that restarts can also be triggered every `k`
//! iterations, as in restarted CG [Powell 1977].

use crate::convergence::{ConvergenceHistory, StoppingCriteria};
use crate::precond::{IdentityPreconditioner, Preconditioner};
use crate::{DynamicState, IterativeMethod, LinearSystem};
use lcr_sparse::{kernels, Vector};
use std::sync::Arc;

/// The preconditioned conjugate gradient method.
///
/// The inner loop runs on the fused kernels of [`lcr_sparse::kernels`]:
/// `q = A p` and `pᵀq` share one matrix traversal ([`kernels::spmv_dot`]),
/// and the `x`/`r` updates produce ‖r‖² in the same pass
/// ([`kernels::axpy2_norm2`]), eliminating the separate dot and norm
/// sweeps of the textbook formulation.  With the identity preconditioner
/// the `z = M⁻¹ r` copy and the `rᵀz` sweep vanish as well, because
/// `rᵀz = ‖r‖²` is already in hand.
pub struct ConjugateGradient {
    system: LinearSystem,
    precond: Arc<dyn Preconditioner>,
    criteria: StoppingCriteria,
    x: Vector,
    r: Vector,
    p: Vector,
    /// Scratch for `q = A p` — preallocated so the inner loop never hits
    /// the allocator (which would serialize concurrent solver instances).
    q: Vector,
    /// Scratch for `z = M⁻¹ r`.
    z: Vector,
    /// Whether the preconditioner is the identity, enabling the
    /// `z = r`, `ρ = ‖r‖²` fast path (bit-identical to applying the
    /// identity: the copy and the redundant dot are merely skipped).
    identity_precond: bool,
    rho: f64,
    iteration: usize,
    residual_norm: f64,
    reference_norm: f64,
    history: ConvergenceHistory,
}

impl ConjugateGradient {
    /// Creates a PCG solver with the given preconditioner.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn new(
        system: LinearSystem,
        precond: Arc<dyn Preconditioner>,
        x0: Vector,
        criteria: StoppingCriteria,
    ) -> Self {
        assert_eq!(x0.len(), system.dim(), "x0 dimension mismatch");
        let n = system.dim();
        let reference_norm = system.b.norm2();
        let r = system.a.residual(&x0, &system.b);
        let residual_norm = r.norm2();
        let identity_precond = precond.is_identity();
        let z = precond.apply(&r);
        let rho = r.dot(&z);
        let history = ConvergenceHistory::new(residual_norm);
        ConjugateGradient {
            system,
            precond,
            criteria,
            x: x0,
            p: z,
            r,
            q: Vector::zeros(n),
            z: Vector::zeros(n),
            identity_precond,
            rho,
            iteration: 0,
            residual_norm,
            reference_norm,
            history,
        }
    }

    /// Creates an unpreconditioned CG solver.
    pub fn unpreconditioned(system: LinearSystem, x0: Vector, criteria: StoppingCriteria) -> Self {
        Self::new(
            system,
            Arc::new(IdentityPreconditioner::new()),
            x0,
            criteria,
        )
    }

    /// The preconditioner in use.
    pub fn preconditioner(&self) -> &Arc<dyn Preconditioner> {
        &self.precond
    }

    /// Rebuilds `r`, `z`, `p`, `ρ` from the current `x` (the recovery steps
    /// of Algorithm 2, lines 10–13).  The residual and its norm come from
    /// one fused traversal; the identity fast path reuses ‖r‖² as `ρ`.
    fn rebuild_krylov_state(&mut self) {
        let rr = kernels::residual_norm2(
            &self.system.a,
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.r.as_mut_slice(),
        );
        self.residual_norm = rr.sqrt();
        if self.identity_precond {
            self.rho = rr;
            self.p.copy_from(&self.r);
        } else {
            self.precond.apply_into(&self.r, &mut self.z);
            self.rho = self.r.dot(&self.z);
            self.p.copy_from(&self.z);
        }
    }
}

impl IterativeMethod for ConjugateGradient {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn residual_norm(&self) -> f64 {
        self.residual_norm
    }

    fn reference_norm(&self) -> f64 {
        self.reference_norm
    }

    fn solution(&self) -> &Vector {
        &self.x
    }

    fn converged(&self) -> bool {
        self.criteria
            .is_satisfied(self.residual_norm, self.reference_norm)
            || self.criteria.limit_reached(self.iteration)
    }

    fn step(&mut self) {
        if self.converged() {
            return;
        }
        // Algorithm 1 lines 10–17 on the fused kernels, allocation-free:
        // q and z live in preallocated scratch, and the five separate
        // sweeps of the textbook loop (dot, two axpys, dot, norm) collapse
        // into two fused passes plus the direction refresh.
        let pq = kernels::spmv_dot(
            &self.system.a,
            self.p.as_slice(),
            self.q.as_mut_slice(),
            self.p.as_slice(),
        ); // q = A p and pᵀq in one traversal
        if pq == 0.0 || !pq.is_finite() {
            // Breakdown: restart from the current solution.
            self.rebuild_krylov_state();
            self.history.record_restart(self.iteration);
            return;
        }
        let alpha = self.rho / pq;
        // x += α p, r -= α q and ‖r‖² in one pass over the four vectors.
        let rr = kernels::axpy2_norm2(
            alpha,
            self.p.as_slice(),
            self.q.as_slice(),
            self.x.as_mut_slice(),
            self.r.as_mut_slice(),
        );
        self.residual_norm = rr.sqrt();
        let rho_next = if self.identity_precond {
            // z = r, so ρ' = rᵀz = ‖r‖² is already in hand: no copy, no
            // extra dot sweep (bit-identical to performing both).
            rr
        } else {
            self.precond.apply_into(&self.r, &mut self.z); // M z = r
            self.r.dot(&self.z)
        };
        let beta = rho_next / self.rho;
        self.rho = rho_next;
        if self.identity_precond {
            self.p.xpby(&self.r, beta); // p = r + β p
        } else {
            self.p.xpby(&self.z, beta); // p = z + β p
        }
        self.iteration += 1;
        self.history.record(self.residual_norm);
        if self.criteria.limit_reached(self.iteration) {
            self.history.limit_reached = true;
        }
    }

    fn capture_state(&self) -> DynamicState {
        // Algorithm 1 line 4: checkpoint i, ρ, p, x.
        DynamicState {
            iteration: self.iteration,
            scalars: vec![("rho".to_string(), self.rho)],
            vectors: vec![
                ("x".to_string(), self.x.clone()),
                ("p".to_string(), self.p.clone()),
            ],
        }
    }

    fn restore_state(&mut self, state: &DynamicState) {
        // Algorithm 1 lines 7–8: recover i, ρ, p, x and recompute r.
        self.x = state
            .vector("x")
            .expect("CG checkpoint must contain x")
            .clone();
        self.p = state
            .vector("p")
            .expect("CG traditional checkpoint must contain p")
            .clone();
        self.rho = state.scalar("rho").expect("CG checkpoint must contain rho");
        self.iteration = state.iteration;
        let rr = kernels::residual_norm2(
            &self.system.a,
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.r.as_mut_slice(),
        );
        self.residual_norm = rr.sqrt();
        self.history.record_restart(self.iteration);
    }

    fn restart_from_solution(&mut self, x: Vector, iteration: usize) {
        // Algorithm 2 lines 8–13: only x is recovered; r, z, p, ρ rebuilt.
        assert_eq!(x.len(), self.system.dim(), "restart vector dimension");
        self.x = x;
        self.iteration = iteration;
        self.rebuild_krylov_state();
        self.history.record_restart(iteration);
    }

    fn history(&self) -> &ConvergenceHistory {
        &self.history
    }
}

/// Restarted conjugate gradient: identical to [`ConjugateGradient`] but the
/// Krylov space is additionally rebuilt every `restart_period` iterations,
/// treating the current solution as a fresh initial guess (the scheme the
/// paper adopts for CG under lossy checkpointing, §4.2).
pub struct RestartedCg {
    inner: ConjugateGradient,
    restart_period: usize,
}

impl RestartedCg {
    /// Creates a restarted CG solver that refreshes its Krylov space every
    /// `restart_period` iterations.
    ///
    /// # Panics
    /// Panics if `restart_period` is zero or on dimension mismatch.
    pub fn new(
        system: LinearSystem,
        precond: Arc<dyn Preconditioner>,
        x0: Vector,
        restart_period: usize,
        criteria: StoppingCriteria,
    ) -> Self {
        assert!(restart_period > 0, "restart period must be positive");
        RestartedCg {
            inner: ConjugateGradient::new(system, precond, x0, criteria),
            restart_period,
        }
    }

    /// The restart period.
    pub fn restart_period(&self) -> usize {
        self.restart_period
    }
}

impl IterativeMethod for RestartedCg {
    fn name(&self) -> &'static str {
        "restarted-cg"
    }

    fn iteration(&self) -> usize {
        self.inner.iteration()
    }

    fn residual_norm(&self) -> f64 {
        self.inner.residual_norm()
    }

    fn reference_norm(&self) -> f64 {
        self.inner.reference_norm()
    }

    fn solution(&self) -> &Vector {
        self.inner.solution()
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }

    fn step(&mut self) {
        self.inner.step();
        if !self.inner.converged()
            && self.inner.iteration() > 0
            && self.inner.iteration().is_multiple_of(self.restart_period)
        {
            self.inner.rebuild_krylov_state();
        }
    }

    fn capture_state(&self) -> DynamicState {
        // Under the restarted scheme only x (and the counter) needs saving.
        DynamicState {
            iteration: self.inner.iteration,
            scalars: Vec::new(),
            vectors: vec![("x".to_string(), self.inner.x.clone())],
        }
    }

    fn restore_state(&mut self, state: &DynamicState) {
        let x = state
            .vector("x")
            .expect("restarted-CG checkpoint must contain x")
            .clone();
        self.restart_from_solution(x, state.iteration);
    }

    fn restart_from_solution(&mut self, x: Vector, iteration: usize) {
        self.inner.restart_from_solution(x, iteration);
    }

    fn history(&self) -> &ConvergenceHistory {
        self.inner.history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Ic0Preconditioner, JacobiPreconditioner};
    use lcr_sparse::poisson::{manufactured_rhs, poisson2d, poisson3d};
    use lcr_sparse::CsrMatrix;

    /// SPD Poisson system (the paper's generator is negative definite, CG
    /// needs positive definite, so flip the sign of both sides).
    fn spd_system(n: usize, three_d: bool) -> (LinearSystem, Vector) {
        let mut a = if three_d { poisson3d(n) } else { poisson2d(n) };
        for v in a.values_mut() {
            *v = -*v;
        }
        let (xstar, b) = manufactured_rhs(&a);
        (LinearSystem::new(a, b), xstar)
    }

    fn criteria(rtol: f64) -> StoppingCriteria {
        StoppingCriteria::new(rtol, 50_000)
    }

    #[test]
    fn cg_converges_on_spd_poisson2d() {
        let (sys, xstar) = spd_system(10, false);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(sys, Vector::zeros(n), criteria(1e-10));
        let iters = cg.run_to_convergence();
        assert!(cg.converged());
        assert!(cg.solution().max_abs_diff(&xstar) < 1e-6);
        // CG on an n-dimensional SPD system converges in at most n steps in
        // exact arithmetic; with rounding we allow a small slack.
        assert!(iters <= n + 10, "took {iters} iterations for n = {n}");
        assert_eq!(cg.name(), "cg");
    }

    #[test]
    fn preconditioned_cg_converges_faster() {
        let (sys, _) = spd_system(12, false);
        let n = sys.dim();
        let plain =
            ConjugateGradient::unpreconditioned(sys.clone(), Vector::zeros(n), criteria(1e-10))
                .run_to_convergence();
        let ic = Arc::new(Ic0Preconditioner::new(&sys.a).unwrap());
        let pcg = ConjugateGradient::new(sys.clone(), ic, Vector::zeros(n), criteria(1e-10))
            .run_to_convergence();
        let jac = Arc::new(JacobiPreconditioner::new(&sys.a).unwrap());
        let jcg = ConjugateGradient::new(sys, jac, Vector::zeros(n), criteria(1e-10))
            .run_to_convergence();
        assert!(pcg < plain, "IC(0)-PCG {pcg} vs CG {plain}");
        // Jacobi preconditioning of the constant-diagonal Poisson matrix is
        // a pure scaling, so it cannot be slower than plain CG by more than
        // rounding noise.
        assert!(jcg <= plain + 2);
    }

    #[test]
    fn cg_on_3d_poisson_paper_matrix() {
        let (sys, xstar) = spd_system(5, true);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(sys, Vector::zeros(n), criteria(1e-7));
        cg.run_to_convergence();
        assert!(cg.solution().max_abs_diff(&xstar) < 1e-4);
    }

    #[test]
    fn capture_restore_is_exact() {
        let (sys, _) = spd_system(8, false);
        let n = sys.dim();
        let mut cg =
            ConjugateGradient::unpreconditioned(sys.clone(), Vector::zeros(n), criteria(1e-12));
        for _ in 0..10 {
            cg.step();
        }
        let state = cg.capture_state();
        assert!(state.vector("p").is_some());
        assert!(state.scalar("rho").is_some());
        assert_eq!(state.vector_bytes(), 2 * n * 8);

        // Reference trajectory.
        let mut reference_iters = Vec::new();
        for _ in 0..5 {
            cg.step();
            reference_iters.push(cg.residual_norm());
        }

        let mut restored =
            ConjugateGradient::unpreconditioned(sys, Vector::zeros(n), criteria(1e-12));
        restored.restore_state(&state);
        assert_eq!(restored.iteration(), 10);
        for expected in reference_iters {
            restored.step();
            assert!((restored.residual_norm() - expected).abs() <= 1e-12 * expected.max(1.0));
        }
    }

    #[test]
    fn lossy_restart_converges_with_extra_iterations() {
        // §4.4.3: lossy recovery delays CG convergence but still converges.
        let (sys, xstar) = spd_system(10, false);
        let n = sys.dim();

        let mut clean =
            ConjugateGradient::unpreconditioned(sys.clone(), Vector::zeros(n), criteria(1e-10));
        let clean_iters = clean.run_to_convergence();

        let mut lossy =
            ConjugateGradient::unpreconditioned(sys, Vector::zeros(n), criteria(1e-10));
        for _ in 0..clean_iters / 2 {
            lossy.step();
        }
        // Perturb x like a 1e-4 relative-error-bound decompression.
        let mut x = lossy.solution().clone();
        for (i, v) in x.iter_mut().enumerate() {
            *v *= 1.0 + 1e-4 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        lossy.restart_from_solution(x, clean_iters / 2);
        let extra = lossy.run_to_convergence();
        assert!(lossy.converged());
        assert!(lossy.solution().max_abs_diff(&xstar) < 1e-4);
        // It must converge, possibly needing extra work compared to the
        // remaining half of the clean run.
        assert!(extra >= clean_iters / 2 - 2);
        assert_eq!(lossy.history().restarts().len(), 1);
    }

    #[test]
    fn restarted_cg_converges_and_only_checkpoints_x() {
        let (sys, xstar) = spd_system(10, false);
        let n = sys.dim();
        let mut rcg = RestartedCg::new(
            sys,
            Arc::new(IdentityPreconditioner::new()),
            Vector::zeros(n),
            30,
            criteria(1e-10),
        );
        assert_eq!(rcg.restart_period(), 30);
        rcg.run_to_convergence();
        assert!(rcg.solution().max_abs_diff(&xstar) < 1e-5);
        let state = rcg.capture_state();
        assert_eq!(state.vectors.len(), 1);
        assert!(state.vector("x").is_some());
        assert_eq!(rcg.name(), "restarted-cg");
    }

    #[test]
    fn restarted_cg_restore_resumes() {
        let (sys, _) = spd_system(8, false);
        let n = sys.dim();
        let mut rcg = RestartedCg::new(
            sys.clone(),
            Arc::new(IdentityPreconditioner::new()),
            Vector::zeros(n),
            10,
            criteria(1e-10),
        );
        for _ in 0..7 {
            rcg.step();
        }
        let state = rcg.capture_state();
        let mut other = RestartedCg::new(
            sys,
            Arc::new(IdentityPreconditioner::new()),
            Vector::zeros(n),
            10,
            criteria(1e-10),
        );
        other.restore_state(&state);
        assert_eq!(other.iteration(), 7);
        other.run_to_convergence();
        assert!(other.converged());
    }

    #[test]
    fn cg_handles_identity_system_in_one_step() {
        let a = CsrMatrix::identity(5);
        let b = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let sys = LinearSystem::new(a, b.clone());
        let mut cg = ConjugateGradient::unpreconditioned(sys, Vector::zeros(5), criteria(1e-12));
        cg.run_to_convergence();
        assert!(cg.iteration() <= 2);
        assert!(cg.solution().max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn converged_solver_steps_are_noops() {
        let (sys, _) = spd_system(6, false);
        let n = sys.dim();
        let mut cg = ConjugateGradient::unpreconditioned(sys, Vector::zeros(n), criteria(1e-8));
        cg.run_to_convergence();
        let it = cg.iteration();
        cg.step();
        cg.step();
        assert_eq!(cg.iteration(), it);
    }

    #[test]
    #[should_panic(expected = "restart period")]
    fn zero_restart_period_panics() {
        let (sys, _) = spd_system(4, false);
        let n = sys.dim();
        let _ = RestartedCg::new(
            sys,
            Arc::new(IdentityPreconditioner::new()),
            Vector::zeros(n),
            0,
            criteria(1e-6),
        );
    }
}
