//! BiCGStab (biconjugate gradient stabilised) solver.
//!
//! Not evaluated in the paper's experiments but included because it is one
//! of the standard Krylov methods PETSc users run on nonsymmetric systems,
//! and because it exercises the lossy checkpointing scheme on a method
//! whose recurrence state (`r̂₀`, `p`, `v`, scalars) is larger than CG's —
//! making the restart-style recovery (only `x` checkpointed) an even bigger
//! storage win.

use crate::convergence::{ConvergenceHistory, StoppingCriteria};
use crate::precond::{IdentityPreconditioner, Preconditioner};
use crate::{DynamicState, IterativeMethod, LinearSystem};
use lcr_sparse::{kernels, Vector};
use std::sync::Arc;

/// Preconditioned BiCGStab solver.
///
/// The inner loop runs on the fused kernels of [`lcr_sparse::kernels`]:
/// the direction refresh `p = r + β (p − ω v)` is one pass
/// ([`kernels::bicgstab_p_update`], previously three), `v = A p̂` carries
/// the `r̂ᵀv` dot in its traversal ([`kernels::spmv_dot`]), the `s` and `r`
/// updates return their norms in the producing pass
/// ([`kernels::waxpy_norm2`]), the stabilisation pair `(tᵀt, tᵀs)` is one
/// sweep ([`kernels::dot2`]) and the solution update folds both axpys into
/// one pass ([`kernels::axpy2`]).
pub struct BiCgStab {
    system: LinearSystem,
    precond: Arc<dyn Preconditioner>,
    criteria: StoppingCriteria,
    x: Vector,
    r: Vector,
    r_hat: Vector,
    p: Vector,
    v: Vector,
    /// Preallocated scratch (`M⁻¹p`, `s`, `M⁻¹s`, `As_hat`) so the inner
    /// loop performs no per-iteration allocations.
    p_hat: Vector,
    s: Vector,
    s_hat: Vector,
    t: Vector,
    rho: f64,
    alpha: f64,
    omega: f64,
    iteration: usize,
    residual_norm: f64,
    reference_norm: f64,
    history: ConvergenceHistory,
}

impl BiCgStab {
    /// Creates a preconditioned BiCGStab solver.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn new(
        system: LinearSystem,
        precond: Arc<dyn Preconditioner>,
        x0: Vector,
        criteria: StoppingCriteria,
    ) -> Self {
        assert_eq!(x0.len(), system.dim(), "x0 dimension mismatch");
        let reference_norm = system.b.norm2();
        let r = system.a.residual(&x0, &system.b);
        let residual_norm = r.norm2();
        let history = ConvergenceHistory::new(residual_norm);
        let n = system.dim();
        BiCgStab {
            system,
            precond,
            criteria,
            x: x0,
            r_hat: r.clone(),
            r,
            p: Vector::zeros(n),
            v: Vector::zeros(n),
            p_hat: Vector::zeros(n),
            s: Vector::zeros(n),
            s_hat: Vector::zeros(n),
            t: Vector::zeros(n),
            rho: 1.0,
            alpha: 1.0,
            omega: 1.0,
            iteration: 0,
            residual_norm,
            reference_norm,
            history,
        }
    }

    /// Creates an unpreconditioned BiCGStab solver.
    pub fn unpreconditioned(system: LinearSystem, x0: Vector, criteria: StoppingCriteria) -> Self {
        Self::new(
            system,
            Arc::new(IdentityPreconditioner::new()),
            x0,
            criteria,
        )
    }

    fn rebuild_from_x(&mut self) {
        let rr = kernels::residual_norm2(
            &self.system.a,
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.r.as_mut_slice(),
        );
        self.residual_norm = rr.sqrt();
        self.r_hat.copy_from(&self.r);
        self.p.set_zero();
        self.v.set_zero();
        self.rho = 1.0;
        self.alpha = 1.0;
        self.omega = 1.0;
    }
}

impl IterativeMethod for BiCgStab {
    fn name(&self) -> &'static str {
        "bicgstab"
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn residual_norm(&self) -> f64 {
        self.residual_norm
    }

    fn reference_norm(&self) -> f64 {
        self.reference_norm
    }

    fn solution(&self) -> &Vector {
        &self.x
    }

    fn converged(&self) -> bool {
        self.criteria
            .is_satisfied(self.residual_norm, self.reference_norm)
            || self.criteria.limit_reached(self.iteration)
    }

    fn step(&mut self) {
        if self.converged() {
            return;
        }
        let rho_next = self.r_hat.dot(&self.r);
        if rho_next == 0.0 || !rho_next.is_finite() {
            // Breakdown: restart from current solution.
            self.rebuild_from_x();
            self.history.record_restart(self.iteration);
            return;
        }
        let beta = (rho_next / self.rho) * (self.alpha / self.omega);
        self.rho = rho_next;
        // p = r + beta (p - omega v) in one fused pass.
        kernels::bicgstab_p_update(
            self.p.as_mut_slice(),
            self.r.as_slice(),
            self.v.as_slice(),
            beta,
            self.omega,
        );

        self.precond.apply_into(&self.p, &mut self.p_hat);
        // v = A p_hat and r_hat'v in one traversal.
        let denom = kernels::spmv_dot(
            &self.system.a,
            self.p_hat.as_slice(),
            self.v.as_mut_slice(),
            self.r_hat.as_slice(),
        );
        if denom == 0.0 || !denom.is_finite() {
            self.rebuild_from_x();
            self.history.record_restart(self.iteration);
            return;
        }
        self.alpha = self.rho / denom;
        // s = r - alpha v and ||s||^2 in the producing pass.
        let ss = kernels::waxpy_norm2(
            self.s.as_mut_slice(),
            self.r.as_slice(),
            -self.alpha,
            self.v.as_slice(),
        );
        if ss.sqrt() <= self.criteria.atol {
            self.x.axpy(self.alpha, &self.p_hat);
            self.r.copy_from(&self.s);
            self.residual_norm = ss.sqrt();
            self.iteration += 1;
            self.history.record(self.residual_norm);
            return;
        }
        self.precond.apply_into(&self.s, &mut self.s_hat);
        self.system
            .a
            .spmv(self.s_hat.as_slice(), self.t.as_mut_slice());
        // Stabilisation pair (t't, t's) over the shared operand t, fused.
        let (tt, ts) = kernels::dot2(self.t.as_slice(), self.t.as_slice(), self.s.as_slice());
        self.omega = if tt > 0.0 { ts / tt } else { 0.0 };
        // x += alpha p_hat + omega s_hat in one pass.
        kernels::axpy2(
            self.x.as_mut_slice(),
            self.alpha,
            self.p_hat.as_slice(),
            self.omega,
            self.s_hat.as_slice(),
        );
        // r = s - omega t and ||r||^2 in the producing pass.
        let rr = kernels::waxpy_norm2(
            self.r.as_mut_slice(),
            self.s.as_slice(),
            -self.omega,
            self.t.as_slice(),
        );

        self.iteration += 1;
        self.residual_norm = rr.sqrt();
        self.history.record(self.residual_norm);
        if self.criteria.limit_reached(self.iteration) {
            self.history.limit_reached = true;
        }
        if self.omega == 0.0 {
            self.rebuild_from_x();
            self.history.record_restart(self.iteration);
        }
    }

    fn capture_state(&self) -> DynamicState {
        DynamicState {
            iteration: self.iteration,
            scalars: vec![
                ("rho".to_string(), self.rho),
                ("alpha".to_string(), self.alpha),
                ("omega".to_string(), self.omega),
            ],
            vectors: vec![
                ("x".to_string(), self.x.clone()),
                ("p".to_string(), self.p.clone()),
                ("v".to_string(), self.v.clone()),
                ("r_hat".to_string(), self.r_hat.clone()),
            ],
        }
    }

    fn restore_state(&mut self, state: &DynamicState) {
        self.x = state
            .vector("x")
            .expect("BiCGStab checkpoint must contain x")
            .clone();
        self.p = state.vector("p").expect("missing p").clone();
        self.v = state.vector("v").expect("missing v").clone();
        self.r_hat = state.vector("r_hat").expect("missing r_hat").clone();
        self.rho = state.scalar("rho").expect("missing rho");
        self.alpha = state.scalar("alpha").expect("missing alpha");
        self.omega = state.scalar("omega").expect("missing omega");
        self.iteration = state.iteration;
        let rr = kernels::residual_norm2(
            &self.system.a,
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.r.as_mut_slice(),
        );
        self.residual_norm = rr.sqrt();
        self.history.record_restart(self.iteration);
    }

    fn restart_from_solution(&mut self, x: Vector, iteration: usize) {
        assert_eq!(x.len(), self.system.dim(), "restart vector dimension");
        self.x = x;
        self.iteration = iteration;
        self.rebuild_from_x();
        self.history.record_restart(iteration);
    }

    fn history(&self) -> &ConvergenceHistory {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcr_sparse::poisson::{manufactured_rhs, poisson2d};

    fn criteria(rtol: f64) -> StoppingCriteria {
        StoppingCriteria::new(rtol, 20_000)
    }

    fn nonsymmetric_system(n: usize) -> (LinearSystem, Vector) {
        let mut a = poisson2d(n);
        let dim = a.nrows();
        {
            let indptr = a.indptr().to_vec();
            let indices = a.indices().to_vec();
            let values = a.values_mut();
            for i in 0..dim {
                for k in indptr[i]..indptr[i + 1] {
                    if indices[k] == i + 1 {
                        values[k] += 0.4;
                    }
                }
            }
        }
        let (xstar, b) = manufactured_rhs(&a);
        (LinearSystem::new(a, b), xstar)
    }

    #[test]
    fn bicgstab_converges_on_nonsymmetric_system() {
        let (sys, xstar) = nonsymmetric_system(8);
        let n = sys.dim();
        let mut solver = BiCgStab::unpreconditioned(sys, Vector::zeros(n), criteria(1e-10));
        solver.run_to_convergence();
        assert!(solver.converged());
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-5);
        assert_eq!(solver.name(), "bicgstab");
    }

    #[test]
    fn bicgstab_converges_on_symmetric_poisson() {
        let a = poisson2d(8);
        let (xstar, b) = manufactured_rhs(&a);
        let sys = LinearSystem::new(a, b);
        let n = sys.dim();
        let mut solver = BiCgStab::unpreconditioned(sys, Vector::zeros(n), criteria(1e-10));
        solver.run_to_convergence();
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-5);
    }

    #[test]
    fn capture_restore_roundtrip() {
        let (sys, _) = nonsymmetric_system(6);
        let n = sys.dim();
        let mut solver =
            BiCgStab::unpreconditioned(sys.clone(), Vector::zeros(n), criteria(1e-12));
        for _ in 0..5 {
            solver.step();
        }
        let state = solver.capture_state();
        assert_eq!(state.vectors.len(), 4);
        let mut restored = BiCgStab::unpreconditioned(sys, Vector::zeros(n), criteria(1e-12));
        restored.restore_state(&state);
        assert_eq!(restored.iteration(), 5);
        // Both continue and converge.
        solver.run_to_convergence();
        restored.run_to_convergence();
        assert!(restored.converged());
        assert!(restored.solution().max_abs_diff(solver.solution()) < 1e-6);
    }

    #[test]
    fn lossy_restart_converges() {
        let (sys, xstar) = nonsymmetric_system(8);
        let n = sys.dim();
        let mut solver = BiCgStab::unpreconditioned(sys, Vector::zeros(n), criteria(1e-10));
        for _ in 0..10 {
            solver.step();
        }
        let mut x = solver.solution().clone();
        for (i, v) in x.iter_mut().enumerate() {
            *v *= 1.0 + 1e-4 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        solver.restart_from_solution(x, 10);
        solver.run_to_convergence();
        assert!(solver.converged());
        assert!(solver.solution().max_abs_diff(&xstar) < 1e-4);
        assert!(!solver.history().restarts().is_empty());
    }
}
