//! Preconditioners.
//!
//! The paper uses PETSc's default preconditioning set-up — block Jacobi with
//! ILU(0)/IC(0) inside the blocks — for the Poisson experiments, and a plain
//! Jacobi (diagonal) preconditioner for the KKT240/GMRES experiment of
//! Figure 3.  This module implements those plus SSOR, all behind the
//! [`Preconditioner`] trait (apply `z = M⁻¹ r`).

use lcr_sparse::{CsrMatrix, SparseError, Vector};
use rayon::prelude::*;
use std::sync::Arc;

/// Applies the inverse of a preconditioning operator `M`.
pub trait Preconditioner: Send + Sync {
    /// Computes `z = M⁻¹ r`.
    ///
    /// # Panics
    /// Implementations panic on dimension mismatch (programming error).
    fn apply(&self, r: &Vector) -> Vector;

    /// Computes `z = M⁻¹ r` into a preallocated vector — the variant the
    /// solver inner loops call so that per-iteration allocations vanish.
    /// The default delegates to [`Preconditioner::apply`]; implementations
    /// with cheap kernels override it to skip the allocation entirely.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        *out = self.apply(r);
    }

    /// Short name ("none", "jacobi", "bjacobi+ilu0", ...).
    fn name(&self) -> &'static str;

    /// Whether this preconditioner is exactly the identity (`M = I`).
    ///
    /// Solvers use this to skip the `z = M⁻¹ r` application and reuse
    /// ‖r‖² as `rᵀz` — numerically identical, two fewer sweeps per
    /// iteration.  Only [`IdentityPreconditioner`] returns `true`.
    fn is_identity(&self) -> bool {
        false
    }

    /// Approximate number of bytes needed to store the preconditioner's
    /// data; contributes to the static-variable recovery accounting.
    fn storage_bytes(&self) -> usize;
}

/// The identity preconditioner (`M = I`).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl IdentityPreconditioner {
    /// Creates the identity preconditioner.
    pub fn new() -> Self {
        IdentityPreconditioner
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &Vector) -> Vector {
        r.clone()
    }

    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        out.copy_from(r);
    }

    fn name(&self) -> &'static str {
        "none"
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn storage_bytes(&self) -> usize {
        0
    }
}

/// Jacobi (diagonal) preconditioner: `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vector,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Errors
    /// Returns [`SparseError::ZeroDiagonal`] if any diagonal entry is zero.
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        a.require_nonzero_diagonal()?;
        let mut inv_diag = a.diagonal();
        for v in inv_diag.iter_mut() {
            *v = 1.0 / *v;
        }
        Ok(JacobiPreconditioner { inv_diag })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &Vector) -> Vector {
        let mut z = Vector::zeros(r.len());
        self.apply_into(r, &mut z);
        z
    }

    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        assert_eq!(r.len(), self.inv_diag.len(), "dimension mismatch");
        assert_eq!(out.len(), r.len(), "dimension mismatch");
        if r.len() >= lcr_sparse::PAR_THRESHOLD {
            out.as_mut_slice()
                .par_iter_mut()
                .zip(r.as_slice().par_iter())
                .zip(self.inv_diag.as_slice().par_iter())
                .for_each(|((z, ri), di)| *z = ri * di);
        } else {
            for i in 0..r.len() {
                out[i] = r[i] * self.inv_diag[i];
            }
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn storage_bytes(&self) -> usize {
        self.inv_diag.len() * std::mem::size_of::<f64>()
    }
}

/// Incomplete LU factorisation with zero fill-in, ILU(0): `M = L·U` where
/// `L`/`U` keep exactly the sparsity pattern of `A`.
#[derive(Debug, Clone)]
pub struct Ilu0Preconditioner {
    /// Combined LU factors stored in the sparsity pattern of `A`
    /// (strict lower part = L without its unit diagonal, upper part = U).
    factors: CsrMatrix,
}

impl Ilu0Preconditioner {
    /// Computes the ILU(0) factorisation of `a`.
    ///
    /// # Errors
    /// Returns [`SparseError::ZeroDiagonal`] if a pivot becomes zero.
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        a.require_nonzero_diagonal()?;
        let n = a.nrows();
        let mut factors = a.clone();
        // IKJ-variant ILU(0) restricted to the original pattern.
        for i in 1..n {
            // For each k < i present in row i:
            let row_start = factors.indptr()[i];
            let row_end = factors.indptr()[i + 1];
            for kk in row_start..row_end {
                let k = factors.indices()[kk];
                if k >= i {
                    break;
                }
                let pivot = factors.get(k, k);
                if pivot == 0.0 {
                    return Err(SparseError::ZeroDiagonal(k));
                }
                let lik = factors.values()[kk] / pivot;
                factors.values_mut()[kk] = lik;
                // Update remaining entries of row i with row k of U, only
                // where row i already has entries (zero fill-in).
                for jj in (kk + 1)..row_end {
                    let j = factors.indices()[jj];
                    let ukj = factors.get(k, j);
                    if ukj != 0.0 {
                        factors.values_mut()[jj] -= lik * ukj;
                    }
                }
            }
        }
        // Final pivots must be non-zero for the triangular solves.
        for i in 0..n {
            if factors.get(i, i) == 0.0 {
                return Err(SparseError::ZeroDiagonal(i));
            }
        }
        Ok(Ilu0Preconditioner { factors })
    }

    /// Solves `L U z = r` with forward/backward substitution, writing into
    /// a caller-provided buffer (every element is overwritten).  The
    /// forward result `y` lives in `z` and the backward solve runs in
    /// place, so no temporaries are allocated.
    fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        let n = self.factors.nrows();
        // Forward solve L y = r (unit diagonal), y stored in z.
        for i in 0..n {
            let mut sum = r[i];
            for (pos, &j) in self.factors.row_indices(i).iter().enumerate() {
                if j >= i {
                    break;
                }
                sum -= self.factors.row_values(i)[pos] * z[j];
            }
            z[i] = sum;
        }
        // Backward solve U z = y, in place (z[j] for j > i is final).
        for i in (0..n).rev() {
            let mut sum = z[i];
            let mut diag = 1.0;
            for (pos, &j) in self.factors.row_indices(i).iter().enumerate() {
                let v = self.factors.row_values(i)[pos];
                if j > i {
                    sum -= v * z[j];
                } else if j == i {
                    diag = v;
                }
            }
            z[i] = sum / diag;
        }
    }
}

impl Preconditioner for Ilu0Preconditioner {
    fn apply(&self, r: &Vector) -> Vector {
        let mut z = Vector::zeros(r.len());
        self.apply_into(r, &mut z);
        z
    }

    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        assert_eq!(r.len(), self.factors.nrows(), "dimension mismatch");
        assert_eq!(out.len(), r.len(), "dimension mismatch");
        self.solve_into(r.as_slice(), out.as_mut_slice());
    }

    fn name(&self) -> &'static str {
        "ilu0"
    }

    fn storage_bytes(&self) -> usize {
        self.factors.storage_bytes()
    }
}

/// Incomplete Cholesky factorisation with zero fill-in, IC(0), for SPD
/// matrices: `M = L·Lᵀ` on the lower-triangular pattern of `A`.
#[derive(Debug, Clone)]
pub struct Ic0Preconditioner {
    /// Lower-triangular factor stored densely by rows of the original
    /// pattern (row-major list of `(col, value)` per row, diagonal last).
    rows: Vec<Vec<(usize, f64)>>,
}

impl Ic0Preconditioner {
    /// Computes the IC(0) factorisation of the (assumed SPD) matrix `a`.
    ///
    /// # Errors
    /// Returns [`SparseError::ZeroDiagonal`] if a pivot becomes non-positive
    /// (matrix not SPD enough for IC(0)).
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        let n = a.nrows();
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            // Entries of the lower triangle of row i, in column order.
            for (pos, &j) in a.row_indices(i).iter().enumerate() {
                if j > i {
                    break;
                }
                let mut sum = a.row_values(i)[pos];
                // sum -= Σ_k<j L[i][k] * L[j][k]
                for &(ki, vi) in &rows[i] {
                    if ki >= j {
                        break;
                    }
                    if let Some(&(_, vj)) = rows[j].iter().find(|&&(kj, _)| kj == ki) {
                        sum -= vi * vj;
                    }
                }
                if j == i {
                    if sum <= 0.0 {
                        return Err(SparseError::ZeroDiagonal(i));
                    }
                    rows[i].push((j, sum.sqrt()));
                } else {
                    let ljj = rows[j]
                        .last()
                        .map(|&(_, v)| v)
                        .ok_or(SparseError::ZeroDiagonal(j))?;
                    rows[i].push((j, sum / ljj));
                }
            }
            if rows[i].last().map(|&(c, _)| c) != Some(i) {
                return Err(SparseError::ZeroDiagonal(i));
            }
        }
        Ok(Ic0Preconditioner { rows })
    }

    /// Solves `L Lᵀ z = r`, writing into a caller-provided buffer (every
    /// element is overwritten; the backward sweep runs in place on the
    /// forward result, so no temporaries are allocated).
    fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        let n = self.rows.len();
        // Forward solve L y = r, y stored in z.
        for i in 0..n {
            let mut sum = r[i];
            let mut diag = 1.0;
            for &(j, v) in &self.rows[i] {
                if j < i {
                    sum -= v * z[j];
                } else {
                    diag = v;
                }
            }
            z[i] = sum / diag;
        }
        // Backward solve Lᵀ z = y, in place.
        for i in (0..n).rev() {
            let diag = self.rows[i].last().expect("diagonal present").1;
            z[i] /= diag;
            let zi = z[i];
            for &(j, v) in &self.rows[i] {
                if j < i {
                    z[j] -= v * zi;
                }
            }
        }
    }
}

impl Preconditioner for Ic0Preconditioner {
    fn apply(&self, r: &Vector) -> Vector {
        let mut z = Vector::zeros(r.len());
        self.apply_into(r, &mut z);
        z
    }

    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        assert_eq!(r.len(), self.rows.len(), "dimension mismatch");
        assert_eq!(out.len(), r.len(), "dimension mismatch");
        self.solve_into(r.as_slice(), out.as_mut_slice());
    }

    fn name(&self) -> &'static str {
        "ic0"
    }

    fn storage_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.len() * (std::mem::size_of::<usize>() + std::mem::size_of::<f64>()))
            .sum()
    }
}

/// Block Jacobi preconditioner with ILU(0) inside each diagonal block —
/// PETSc's default parallel preconditioner, where each MPI rank factorises
/// its local diagonal block (the paper's §5.1 set-up).
#[derive(Debug, Clone)]
pub struct BlockJacobiPreconditioner {
    blocks: Vec<(usize, Ilu0Preconditioner)>,
    dim: usize,
}

impl BlockJacobiPreconditioner {
    /// Builds a block-Jacobi preconditioner with `n_blocks` contiguous
    /// diagonal blocks, each factorised with ILU(0).  `n_blocks` mirrors the
    /// number of ranks in the simulated run.
    ///
    /// # Errors
    /// Propagates zero-pivot errors from the per-block ILU(0).
    ///
    /// # Panics
    /// Panics if `n_blocks` is zero.
    pub fn new(a: &CsrMatrix, n_blocks: usize) -> Result<Self, SparseError> {
        assert!(n_blocks > 0, "need at least one block");
        let n = a.nrows();
        let n_blocks = n_blocks.min(n.max(1));
        let base = n / n_blocks;
        let extra = n % n_blocks;
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut start = 0usize;
        for b in 0..n_blocks {
            let len = base + usize::from(b < extra);
            if len == 0 {
                continue;
            }
            let block = a.diagonal_block(start, len);
            blocks.push((start, Ilu0Preconditioner::new(&block)?));
            start += len;
        }
        Ok(BlockJacobiPreconditioner { blocks, dim: n })
    }
}

impl Preconditioner for BlockJacobiPreconditioner {
    fn apply(&self, r: &Vector) -> Vector {
        let mut z = Vector::zeros(r.len());
        self.apply_into(r, &mut z);
        z
    }

    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        assert_eq!(r.len(), self.dim, "dimension mismatch");
        assert_eq!(out.len(), self.dim, "dimension mismatch");
        for (start, ilu) in &self.blocks {
            let len = ilu.factors.nrows();
            // Each block solves straight between the corresponding slices —
            // no per-block copies or allocations.
            ilu.solve_into(
                &r.as_slice()[*start..*start + len],
                &mut out.as_mut_slice()[*start..*start + len],
            );
        }
    }

    fn name(&self) -> &'static str {
        "bjacobi+ilu0"
    }

    fn storage_bytes(&self) -> usize {
        self.blocks.iter().map(|(_, b)| b.storage_bytes()).sum()
    }
}

/// SSOR preconditioner: `M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + U) · ω/(2−ω)`
/// applied through two triangular sweeps.
#[derive(Debug, Clone)]
pub struct SsorPreconditioner {
    a: Arc<CsrMatrix>,
    diag: Vector,
    omega: f64,
}

impl SsorPreconditioner {
    /// Builds the SSOR preconditioner with relaxation factor `omega`
    /// (0 < ω < 2).
    ///
    /// # Errors
    /// Returns [`SparseError::ZeroDiagonal`] for zero diagonal entries.
    ///
    /// # Panics
    /// Panics if `omega` is outside `(0, 2)`.
    pub fn new(a: Arc<CsrMatrix>, omega: f64) -> Result<Self, SparseError> {
        assert!(omega > 0.0 && omega < 2.0, "omega must be in (0, 2)");
        a.require_nonzero_diagonal()?;
        let diag = a.diagonal();
        Ok(SsorPreconditioner { a, diag, omega })
    }
}

impl Preconditioner for SsorPreconditioner {
    fn apply(&self, r: &Vector) -> Vector {
        let mut z = Vector::zeros(r.len());
        self.apply_into(r, &mut z);
        z
    }

    fn apply_into(&self, r: &Vector, out: &mut Vector) {
        assert_eq!(r.len(), self.a.nrows(), "dimension mismatch");
        assert_eq!(out.len(), r.len(), "dimension mismatch");
        let n = r.len();
        let w = self.omega;
        let z = out.as_mut_slice();
        // Forward sweep: (D/ω + L) y = r, y stored in z.
        for i in 0..n {
            let mut sum = r[i];
            for (pos, &j) in self.a.row_indices(i).iter().enumerate() {
                if j < i {
                    sum -= self.a.row_values(i)[pos] * z[j];
                }
            }
            z[i] = sum * w / self.diag[i];
        }
        // Backward sweep: (D/ω + U) z = (D/ω) y, in place (z[j] for j > i
        // is final; z[i] still holds y[i] when row i is processed).
        for i in (0..n).rev() {
            let mut sum = self.diag[i] / w * z[i];
            for (pos, &j) in self.a.row_indices(i).iter().enumerate() {
                if j > i {
                    sum -= self.a.row_values(i)[pos] * z[j];
                }
            }
            z[i] = sum * w / self.diag[i];
        }
        // Symmetrising scale factor ω(2−ω) keeps M consistent with A for
        // ω = 1 (symmetric Gauss–Seidel).
        out.scale(w * (2.0 - w));
    }

    fn name(&self) -> &'static str {
        "ssor"
    }

    fn storage_bytes(&self) -> usize {
        self.diag.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcr_sparse::poisson::{poisson1d, poisson2d};

    /// SPD version of the 2-D Poisson matrix (the generators use the paper's
    /// negative-definite sign convention).
    fn spd_poisson2d(n: usize) -> CsrMatrix {
        let mut a = poisson2d(n);
        for v in a.values_mut() {
            *v = -*v;
        }
        a
    }

    fn dense_solve(a: &CsrMatrix, b: &Vector) -> Vector {
        // Small dense Gaussian elimination for reference solutions.
        let n = a.nrows();
        let mut m = vec![0.0f64; n * (n + 1)];
        for i in 0..n {
            for j in 0..n {
                m[i * (n + 1) + j] = a.get(i, j);
            }
            m[i * (n + 1) + n] = b[i];
        }
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            for r in col + 1..n {
                if m[r * (n + 1) + col].abs() > m[piv * (n + 1) + col].abs() {
                    piv = r;
                }
            }
            for k in 0..=n {
                m.swap(col * (n + 1) + k, piv * (n + 1) + k);
            }
            let d = m[col * (n + 1) + col];
            for r in 0..n {
                if r != col && m[r * (n + 1) + col] != 0.0 {
                    let f = m[r * (n + 1) + col] / d;
                    for k in col..=n {
                        m[r * (n + 1) + k] -= f * m[col * (n + 1) + k];
                    }
                }
            }
        }
        Vector::from_vec(
            (0..n)
                .map(|i| m[i * (n + 1) + n] / m[i * (n + 1) + i])
                .collect(),
        )
    }

    #[test]
    fn identity_preconditioner() {
        let p = IdentityPreconditioner::new();
        let r = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.apply(&r), r);
        assert_eq!(p.name(), "none");
        assert_eq!(p.storage_bytes(), 0);
    }

    #[test]
    fn jacobi_preconditioner_divides_by_diagonal() {
        let a = poisson1d(4); // diagonal -2
        let p = JacobiPreconditioner::new(&a).unwrap();
        let r = Vector::from_vec(vec![2.0, -4.0, 6.0, 8.0]);
        let z = p.apply(&r);
        assert_eq!(z.as_slice(), &[-1.0, 2.0, -3.0, -4.0]);
        assert_eq!(p.name(), "jacobi");
        assert!(p.storage_bytes() > 0);

        let singular = CsrMatrix::from_dense(2, 2, &[0.0, 1.0, 1.0, 1.0]);
        assert!(JacobiPreconditioner::new(&singular).is_err());
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // For a tridiagonal matrix ILU(0) equals the full LU, so applying it
        // solves the system exactly.
        let a = poisson1d(10);
        let ilu = Ilu0Preconditioner::new(&a).unwrap();
        let b = Vector::filled(10, 1.0);
        let z = ilu.apply(&b);
        let exact = dense_solve(&a, &b);
        assert!(z.max_abs_diff(&exact) < 1e-10);
        assert_eq!(ilu.name(), "ilu0");
    }

    #[test]
    fn ilu0_reduces_condition_for_poisson2d() {
        let a = spd_poisson2d(6);
        let ilu = Ilu0Preconditioner::new(&a).unwrap();
        let r = Vector::filled(36, 1.0);
        let z = ilu.apply(&r);
        // M⁻¹ r should be much closer to A⁻¹ r than r itself.
        let exact = dense_solve(&a, &r);
        let err_prec = z.max_abs_diff(&exact);
        let err_raw = r.max_abs_diff(&exact);
        assert!(err_prec < err_raw);
    }

    #[test]
    fn ic0_matches_ilu0_direction_for_spd() {
        let a = spd_poisson2d(5);
        let ic = Ic0Preconditioner::new(&a).unwrap();
        let r = Vector::filled(25, 1.0);
        let z = ic.apply(&r);
        let exact = dense_solve(&a, &r);
        // IC(0) of a 2-D Poisson matrix is a good approximation of A⁻¹: the
        // preconditioned residual should be far closer to the exact solve
        // than the unpreconditioned right-hand side is.
        let err_prec = z.max_abs_diff(&exact);
        let err_raw = r.max_abs_diff(&exact);
        assert!(err_prec < err_raw);
        assert_eq!(ic.name(), "ic0");
        assert!(ic.storage_bytes() > 0);
    }

    #[test]
    fn ic0_rejects_indefinite_matrix() {
        let indef = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert!(Ic0Preconditioner::new(&indef).is_err());
    }

    #[test]
    fn block_jacobi_with_single_block_equals_ilu0() {
        let a = spd_poisson2d(4);
        let bj = BlockJacobiPreconditioner::new(&a, 1).unwrap();
        let ilu = Ilu0Preconditioner::new(&a).unwrap();
        let r = Vector::filled(16, 1.0);
        assert!(bj.apply(&r).max_abs_diff(&ilu.apply(&r)) < 1e-14);
    }

    #[test]
    fn block_jacobi_multiple_blocks() {
        let a = spd_poisson2d(4);
        let bj = BlockJacobiPreconditioner::new(&a, 4).unwrap();
        let r = Vector::filled(16, 1.0);
        let z = bj.apply(&r);
        assert_eq!(z.len(), 16);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(bj.name(), "bjacobi+ilu0");
        assert!(bj.storage_bytes() > 0);
        // More blocks than rows is clamped, not a panic.
        let bj_many = BlockJacobiPreconditioner::new(&a, 100).unwrap();
        assert_eq!(bj_many.apply(&r).len(), 16);
    }

    #[test]
    fn ssor_preconditioner_applies_expected_operator() {
        // For ω = 1 the SSOR preconditioner is M = (D + L) D⁻¹ (D + U)
        // (symmetric Gauss–Seidel).  Check M · apply(r) == r.
        let a = Arc::new(spd_poisson2d(5));
        let p = SsorPreconditioner::new(a.clone(), 1.0).unwrap();
        let r = Vector::from_vec((0..25).map(|i| 1.0 + 0.1 * i as f64).collect());
        let z = p.apply(&r);

        let (l, d, u) = a.split_ldu();
        // t1 = (D + U) z
        let mut t1 = u.mul_vec(&z);
        for i in 0..25 {
            t1[i] += d[i] * z[i];
        }
        // t2 = D⁻¹ t1
        let mut t2 = t1;
        for i in 0..25 {
            t2[i] /= d[i];
        }
        // t3 = (D + L) t2
        let mut t3 = l.mul_vec(&t2);
        for i in 0..25 {
            t3[i] += d[i] * t2[i];
        }
        assert!(
            t3.max_abs_diff(&r) < 1e-10,
            "M·M⁻¹·r deviates by {}",
            t3.max_abs_diff(&r)
        );
        assert_eq!(p.name(), "ssor");
        assert!(p.storage_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn ssor_rejects_bad_omega() {
        let a = Arc::new(spd_poisson2d(3));
        let _ = SsorPreconditioner::new(a, 2.5);
    }
}
