//! Stopping criteria and convergence history.

use serde::{Deserialize, Serialize};

/// Stopping criteria shared by all solvers, following PETSc's convention
/// used in the paper: convergence when the (possibly preconditioned)
/// residual norm has decreased by the relative tolerance `rtol` with respect
/// to the reference norm, or has fallen below the absolute tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingCriteria {
    /// Relative tolerance (the paper uses 1e-4 for Jacobi, 7e-5 for GMRES
    /// and 1e-7 for CG in §5.1).
    pub rtol: f64,
    /// Absolute tolerance on the residual norm.
    pub atol: f64,
    /// Hard iteration limit; the solver reports convergence (with a
    /// `limit_reached` flag in the history) once it is hit so that driver
    /// loops always terminate.
    pub max_iterations: usize,
}

impl Default for StoppingCriteria {
    fn default() -> Self {
        StoppingCriteria {
            rtol: 1e-5,
            atol: 1e-50,
            max_iterations: 1_000_000,
        }
    }
}

impl StoppingCriteria {
    /// Creates criteria with the given relative tolerance and iteration cap.
    pub fn new(rtol: f64, max_iterations: usize) -> Self {
        StoppingCriteria {
            rtol,
            max_iterations,
            ..StoppingCriteria::default()
        }
    }

    /// Whether a residual norm satisfies the tolerance part of the criteria
    /// relative to `reference_norm`.
    pub fn is_satisfied(&self, residual_norm: f64, reference_norm: f64) -> bool {
        residual_norm <= self.atol || residual_norm <= self.rtol * reference_norm
    }

    /// Whether the iteration budget is exhausted.
    pub fn limit_reached(&self, iteration: usize) -> bool {
        iteration >= self.max_iterations
    }
}

/// Residual-norm history of a solve, including restart/recovery markers so
/// the Figure 9-style residual traces can be reconstructed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceHistory {
    /// Residual norm after each iteration (`residuals[k]` is the norm after
    /// iteration `k+1`; the norm of the initial guess is `initial`).
    residuals: Vec<f64>,
    /// Residual norm of the initial guess.
    initial: f64,
    /// Iteration indices at which a (lossy or exact) recovery happened.
    restarts: Vec<usize>,
    /// Whether the iteration limit was hit before the tolerance.
    pub limit_reached: bool,
}

impl ConvergenceHistory {
    /// Creates an empty history with the given initial residual norm.
    pub fn new(initial_residual: f64) -> Self {
        ConvergenceHistory {
            residuals: Vec::new(),
            initial: initial_residual,
            restarts: Vec::new(),
            limit_reached: false,
        }
    }

    /// Records the residual norm after an iteration.
    pub fn record(&mut self, residual_norm: f64) {
        self.residuals.push(residual_norm);
    }

    /// Records that a recovery/restart occurred before iteration `iteration`.
    pub fn record_restart(&mut self, iteration: usize) {
        self.restarts.push(iteration);
    }

    /// Resets the initial residual (used when a solver is restored).
    pub fn reset_initial(&mut self, initial_residual: f64) {
        self.initial = initial_residual;
    }

    /// The initial residual norm.
    pub fn initial_residual(&self) -> f64 {
        self.initial
    }

    /// Residual norms per iteration.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Indices of iterations at which restarts/recoveries happened.
    pub fn restarts(&self) -> &[usize] {
        &self.restarts
    }

    /// Number of iterations recorded.
    pub fn iterations(&self) -> usize {
        self.residuals.len()
    }

    /// Last recorded residual norm (or the initial one if none recorded).
    pub fn last_residual(&self) -> f64 {
        *self.residuals.last().unwrap_or(&self.initial)
    }

    /// Estimates the average contraction factor per iteration,
    /// `(‖r_k‖ / ‖r_0‖)^(1/k)` — an empirical estimate of the spectral
    /// radius `R` of the iteration matrix used by Theorem 2.
    pub fn contraction_factor(&self) -> Option<f64> {
        let k = self.residuals.len();
        if k == 0 || self.initial <= 0.0 {
            return None;
        }
        let last = self.last_residual();
        if last <= 0.0 {
            return None;
        }
        Some((last / self.initial).powf(1.0 / k as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criteria_default_and_custom() {
        let d = StoppingCriteria::default();
        assert!(d.rtol > 0.0);
        let c = StoppingCriteria::new(1e-7, 500);
        assert_eq!(c.rtol, 1e-7);
        assert_eq!(c.max_iterations, 500);
        assert!(c.is_satisfied(1e-9, 1.0));
        assert!(!c.is_satisfied(1e-5, 1.0));
        assert!(c.is_satisfied(1e-60, 0.0));
        assert!(c.limit_reached(500));
        assert!(!c.limit_reached(499));
    }

    #[test]
    fn history_records_and_restarts() {
        let mut h = ConvergenceHistory::new(1.0);
        h.record(0.5);
        h.record(0.25);
        h.record_restart(2);
        h.record(0.125);
        assert_eq!(h.iterations(), 3);
        assert_eq!(h.last_residual(), 0.125);
        assert_eq!(h.restarts(), &[2]);
        assert_eq!(h.initial_residual(), 1.0);
        assert_eq!(h.residuals().len(), 3);
    }

    #[test]
    fn contraction_factor_estimate() {
        let mut h = ConvergenceHistory::new(1.0);
        // Perfect geometric decay with factor 0.5.
        for k in 1..=10 {
            h.record(0.5f64.powi(k));
        }
        let r = h.contraction_factor().unwrap();
        assert!((r - 0.5).abs() < 1e-12);

        let empty = ConvergenceHistory::new(1.0);
        assert!(empty.contraction_factor().is_none());

        let mut zero_init = ConvergenceHistory::new(0.0);
        zero_init.record(0.1);
        assert!(zero_init.contraction_factor().is_none());
    }

    #[test]
    fn last_residual_falls_back_to_initial() {
        let h = ConvergenceHistory::new(3.0);
        assert_eq!(h.last_residual(), 3.0);
    }
}
