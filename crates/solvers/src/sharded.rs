//! Sharded (domain-decomposed) solver loops: CG, BiCGStab and Jacobi hot
//! loops rewritten against one shard's [`ShardedCsr`] view and a
//! [`ShardComm`] endpoint.
//!
//! Every shard executes the same loop in lockstep.  All decisions that
//! steer control flow — convergence, breakdown restarts, checkpoint
//! epochs, failure injection — derive either from globally reduced scalars
//! (identical on every shard by construction) or from configuration every
//! shard holds a copy of, so the shards never diverge and every
//! [`ShardComm::reduce`]/[`ShardComm::barrier_all_ok`] call lines up.
//!
//! The loops follow the determinism contract of [`lcr_sparse::shard`]:
//! dots are per-reduction-block partials folded in global block order, the
//! local product is the carried-start traversal, elementwise updates are
//! position-local.  Residual traces are bit-identical across shard counts
//! and trivially independent of `LCR_NUM_THREADS` (the loops never touch
//! the pool — the shards *are* the parallelism).
//!
//! Fault tolerance is injected through [`ShardHook`]: the executor in
//! `lcr-core` checkpoints the local solution slice, injects fail-stop
//! kills and reloads lossy checkpoints from there; a hook returning
//! [`HookEvent::RestartKrylov`] makes every shard rebuild its Krylov state
//! from the (possibly partially restored) solution — Algorithm 2 of the
//! paper, lines 8–13, executed shard-locally with one halo exchange.

use lcr_sparse::shard::{CommError, ShardComm, ShardedCsr};
use lcr_sparse::simd;

/// Which sharded solver loop to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardedMethod {
    /// Conjugate gradient (requires an SPD operator).
    Cg,
    /// BiCGStab.
    BiCgStab,
    /// Jacobi relaxation.
    Jacobi,
}

impl ShardedMethod {
    /// Solver name, matching [`crate::IterativeMethod::name`] spelling.
    pub fn name(self) -> &'static str {
        match self {
            ShardedMethod::Cg => "cg",
            ShardedMethod::BiCgStab => "bicgstab",
            ShardedMethod::Jacobi => "jacobi",
        }
    }
}

/// What a [`ShardHook`] observed at the end of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookEvent {
    /// Nothing happened; continue the recurrence.
    None,
    /// The epoch included a recovery: some shard replaced its local `x`
    /// (from a lossy checkpoint) while the others kept theirs.  Every
    /// shard must rebuild its Krylov state from the current solution.
    /// Hooks must return this *on every shard* of the same iteration.
    RestartKrylov,
}

/// Per-iteration callback every shard invokes after updating its local
/// solution slice — the seam the checkpoint/failure executor plugs into.
pub trait ShardHook {
    /// Called after iteration `iteration` (1-based) with the shard's local
    /// solution slice.  May checkpoint `x`, mutate it (failure recovery)
    /// and use `comm` for commit barriers — but must issue the *same
    /// sequence* of comm operations on every shard.  Returns
    /// `Err(CommError)` when a comm operation inside the hook fails (peer
    /// died, coordinator aborted the round); the solver loop propagates
    /// the error instead of continuing on divergent state.
    fn after_iteration(
        &mut self,
        iteration: usize,
        x: &mut [f64],
        comm: &mut ShardComm,
    ) -> Result<HookEvent, CommError>;
}

/// A hook that does nothing (failure-free, checkpoint-free runs).
pub struct NoopHook;

impl ShardHook for NoopHook {
    fn after_iteration(
        &mut self,
        _: usize,
        _: &mut [f64],
        _: &mut ShardComm,
    ) -> Result<HookEvent, CommError> {
        Ok(HookEvent::None)
    }
}

/// One shard's view of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Whether the global residual met `rtol · ‖b‖`.
    pub converged: bool,
    /// Global iteration count (identical on every shard).
    pub iterations: usize,
    /// Residual-norm trace: `trace[0]` is the initial residual, one entry
    /// per completed iteration after that.  Bit-identical on every shard
    /// and across shard counts.
    pub trace: Vec<f64>,
    /// The shard's local slice of the solution.
    pub x_local: Vec<f64>,
    /// Iterations at which the Krylov state was rebuilt (breakdowns and
    /// hook-driven recoveries).
    pub restart_iterations: Vec<usize>,
}

/// Shared per-shard loop state: buffers and the reduction plumbing.
struct Ctx<'a> {
    mat: &'a ShardedCsr,
    b: &'a [f64],
    rows: usize,
    /// Extended-vector scratch for `[owned | halo]` operands.
    ext: Vec<f64>,
}

impl<'a> Ctx<'a> {
    fn new(mat: &'a ShardedCsr, b: &'a [f64]) -> Self {
        assert_eq!(b.len(), mat.rows(), "local rhs length");
        Ctx {
            mat,
            b,
            rows: mat.rows(),
            ext: vec![0.0; mat.ext_len()],
        }
    }

    /// `y = A w` for a distributed vector given by local slices: one halo
    /// exchange, then the deterministic local product.
    fn apply_a(&mut self, comm: &mut ShardComm, w: &[f64], y: &mut [f64]) -> Result<(), CommError> {
        self.ext[..self.rows].copy_from_slice(w);
        let (own, halo) = self.ext.split_at_mut(self.rows);
        comm.try_halo_exchange(&self.mat.halo, own, halo)?;
        self.mat.spmv_seq(&self.ext, y);
        Ok(())
    }

    /// Per-block partials of `a · b` (phase one of the reduction).
    fn block_dot(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        self.mat.layout.block_dot(self.mat.shard, a, b)
    }

    /// Reduces one quantity to its global scalar.
    fn reduce1(&self, comm: &mut ShardComm, partials: Vec<f64>) -> Result<f64, CommError> {
        Ok(comm.try_reduce(vec![partials])?[0])
    }

    /// Fused per-block `x += α p`, `r −= α q` returning the global ‖r‖².
    fn axpy2_norm2(
        &self,
        comm: &mut ShardComm,
        alpha: f64,
        p: &[f64],
        q: &[f64],
        x: &mut [f64],
        r: &mut [f64],
    ) -> Result<f64, CommError> {
        let partials: Vec<f64> = self
            .mat
            .layout
            .local_block_ranges(self.mat.shard)
            .map(|(s, e)| simd::axpy2_norm2(alpha, &p[s..e], &q[s..e], &mut x[s..e], &mut r[s..e]))
            .collect();
        self.reduce1(comm, partials)
    }

    /// Fused per-block `out = x + α y` returning the global ‖out‖².
    fn waxpy_norm2(
        &self,
        comm: &mut ShardComm,
        out: &mut [f64],
        x: &[f64],
        alpha: f64,
        y: &[f64],
    ) -> Result<f64, CommError> {
        let partials: Vec<f64> = self
            .mat
            .layout
            .local_block_ranges(self.mat.shard)
            .map(|(s, e)| simd::waxpy_norm2(&mut out[s..e], &x[s..e], alpha, &y[s..e]))
            .collect();
        self.reduce1(comm, partials)
    }

    /// Rebuilds `r = b − A x` and returns the global ‖r‖² — the shared
    /// core of every restart path (one halo exchange + one reduction).
    fn residual_norm2(
        &mut self,
        comm: &mut ShardComm,
        x: &[f64],
        q: &mut [f64],
        r: &mut [f64],
    ) -> Result<f64, CommError> {
        self.apply_a(comm, x, q)?;
        for i in 0..self.rows {
            r[i] = self.b[i] - q[i];
        }
        let partials = self.block_dot(r, r);
        self.reduce1(comm, partials)
    }
}

/// Runs the sharded solver loop for one shard to global convergence.
///
/// `b_local` is the shard's slice of the right-hand side.  The global
/// stopping rule is `‖r‖ ≤ rtol · ‖b‖` or `max_iterations`; both derive
/// from reduced scalars, so every shard exits on the same iteration.
///
/// # Panics
/// Panics on dimension mismatch or any comm failure (see
/// [`try_run_sharded`] for the fallible variant).
pub fn run_sharded(
    method: ShardedMethod,
    mat: &ShardedCsr,
    b_local: &[f64],
    rtol: f64,
    max_iterations: usize,
    comm: &mut ShardComm,
    hook: &mut dyn ShardHook,
) -> ShardOutcome {
    match try_run_sharded(method, mat, b_local, rtol, max_iterations, comm, hook) {
        Ok(outcome) => outcome,
        Err(e) => panic!("sharded solver comm failure: {e}"),
    }
}

/// Fallible variant of [`run_sharded`]: comm failures (peer death, stall
/// timeouts, coordinator aborts, injected message drops) surface as a
/// typed [`CommError`] instead of a panic, so a supervisor can decide
/// whether to retry, restart from a checkpoint, or fail the run.
pub fn try_run_sharded(
    method: ShardedMethod,
    mat: &ShardedCsr,
    b_local: &[f64],
    rtol: f64,
    max_iterations: usize,
    comm: &mut ShardComm,
    hook: &mut dyn ShardHook,
) -> Result<ShardOutcome, CommError> {
    match method {
        ShardedMethod::Cg => run_cg(mat, b_local, rtol, max_iterations, comm, hook),
        ShardedMethod::BiCgStab => run_bicgstab(mat, b_local, rtol, max_iterations, comm, hook),
        ShardedMethod::Jacobi => run_jacobi(mat, b_local, rtol, max_iterations, comm, hook),
    }
}

fn run_cg(
    mat: &ShardedCsr,
    b: &[f64],
    rtol: f64,
    max_iterations: usize,
    comm: &mut ShardComm,
    hook: &mut dyn ShardHook,
) -> Result<ShardOutcome, CommError> {
    let mut ctx = Ctx::new(mat, b);
    let rows = ctx.rows;
    let bb = ctx.reduce1(comm, ctx.block_dot(b, b))?;
    let threshold = rtol * bb.sqrt();

    // x₀ = 0 ⇒ r = b; unpreconditioned ⇒ p = r, ρ = ‖r‖².
    let mut x = vec![0.0; rows];
    let mut r = b.to_vec();
    let mut rr = ctx.reduce1(comm, ctx.block_dot(&r, &r))?;
    let mut rho = rr;
    let mut p = r.clone();
    let mut q = vec![0.0; rows];
    let mut resid = rr.sqrt();
    let mut trace = vec![resid];
    let mut restarts = Vec::new();
    let mut iteration = 0;

    while iteration < max_iterations && resid > threshold {
        ctx.apply_a(comm, &p, &mut q)?;
        let pq = ctx.reduce1(comm, ctx.block_dot(&p, &q))?;
        if pq == 0.0 || !pq.is_finite() {
            // Breakdown (globally agreed: pq is a reduced scalar):
            // restart from the current solution.
            rr = ctx.residual_norm2(comm, &x, &mut q, &mut r)?;
            resid = rr.sqrt();
            rho = rr;
            p.copy_from_slice(&r);
            restarts.push(iteration);
            continue;
        }
        let alpha = rho / pq;
        rr = ctx.axpy2_norm2(comm, alpha, &p, &q, &mut x, &mut r)?;
        resid = rr.sqrt();
        let beta = rr / rho;
        rho = rr;
        for i in 0..rows {
            p[i] = r[i] + beta * p[i];
        }
        iteration += 1;
        trace.push(resid);
        if hook.after_iteration(iteration, &mut x, comm)? == HookEvent::RestartKrylov {
            // Algorithm 2 lines 10–13, shard-local: rebuild r, p, ρ from
            // the (partially restored) solution.
            rr = ctx.residual_norm2(comm, &x, &mut q, &mut r)?;
            resid = rr.sqrt();
            rho = rr;
            p.copy_from_slice(&r);
            restarts.push(iteration);
        }
    }
    Ok(ShardOutcome {
        converged: resid <= threshold,
        iterations: iteration,
        trace,
        x_local: x,
        restart_iterations: restarts,
    })
}

fn run_bicgstab(
    mat: &ShardedCsr,
    b: &[f64],
    rtol: f64,
    max_iterations: usize,
    comm: &mut ShardComm,
    hook: &mut dyn ShardHook,
) -> Result<ShardOutcome, CommError> {
    let mut ctx = Ctx::new(mat, b);
    let rows = ctx.rows;
    let bb = ctx.reduce1(comm, ctx.block_dot(b, b))?;
    let threshold = rtol * bb.sqrt();

    let mut x = vec![0.0; rows];
    let mut r = b.to_vec();
    let mut rr = ctx.reduce1(comm, ctx.block_dot(&r, &r))?;
    let mut r_hat = r.clone();
    let mut p = vec![0.0; rows];
    let mut v = vec![0.0; rows];
    let mut s = vec![0.0; rows];
    let mut t = vec![0.0; rows];
    let (mut rho, mut alpha, mut omega) = (1.0, 1.0, 1.0);
    let mut resid = rr.sqrt();
    let mut trace = vec![resid];
    let mut restarts = Vec::new();
    let mut iteration = 0;

    macro_rules! rebuild {
        () => {{
            rr = ctx.residual_norm2(comm, &x, &mut t, &mut r)?;
            resid = rr.sqrt();
            r_hat.copy_from_slice(&r);
            p.iter_mut().for_each(|z| *z = 0.0);
            v.iter_mut().for_each(|z| *z = 0.0);
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            restarts.push(iteration);
        }};
    }

    while iteration < max_iterations && resid > threshold {
        let rho_next = ctx.reduce1(comm, ctx.block_dot(&r_hat, &r))?;
        if rho_next == 0.0 || !rho_next.is_finite() {
            rebuild!();
            continue;
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        // p = r + β (p − ω v), elementwise (position-local, shard-safe).
        simd::bicgstab_p_update(&mut p, &r, &v, beta, omega);
        ctx.apply_a(comm, &p, &mut v)?;
        let denom = ctx.reduce1(comm, ctx.block_dot(&r_hat, &v))?;
        if denom == 0.0 || !denom.is_finite() {
            rebuild!();
            continue;
        }
        alpha = rho / denom;
        // s = r − α v with the global ‖s‖² from the producing pass.
        let ss = ctx.waxpy_norm2(comm, &mut s, &r, -alpha, &v)?;
        if ss == 0.0 {
            // Exact first half-step: accept and stop the iteration early.
            for i in 0..rows {
                x[i] += alpha * p[i];
            }
            r.copy_from_slice(&s);
            resid = 0.0;
            iteration += 1;
            trace.push(resid);
            break;
        }
        ctx.apply_a(comm, &s, &mut t)?;
        let tts = comm.try_reduce(vec![ctx.block_dot(&t, &t), ctx.block_dot(&t, &s)])?;
        let (tt, ts) = (tts[0], tts[1]);
        omega = if tt > 0.0 { ts / tt } else { 0.0 };
        for i in 0..rows {
            x[i] += alpha * p[i] + omega * s[i];
        }
        rr = ctx.waxpy_norm2(comm, &mut r, &s, -omega, &t)?;
        resid = rr.sqrt();
        iteration += 1;
        trace.push(resid);
        if omega == 0.0 {
            rebuild!();
        }
        if hook.after_iteration(iteration, &mut x, comm)? == HookEvent::RestartKrylov {
            rebuild!();
        }
    }
    Ok(ShardOutcome {
        converged: resid <= threshold,
        iterations: iteration,
        trace,
        x_local: x,
        restart_iterations: restarts,
    })
}

fn run_jacobi(
    mat: &ShardedCsr,
    b: &[f64],
    rtol: f64,
    max_iterations: usize,
    comm: &mut ShardComm,
    hook: &mut dyn ShardHook,
) -> Result<ShardOutcome, CommError> {
    let mut ctx = Ctx::new(mat, b);
    let rows = ctx.rows;
    let bb = ctx.reduce1(comm, ctx.block_dot(b, b))?;
    let threshold = rtol * bb.sqrt();
    let diag = mat.diagonal_local();

    let mut x = vec![0.0; rows];
    let mut x_new = vec![0.0; rows];
    let mut q = vec![0.0; rows];
    let mut r = vec![0.0; rows];
    let mut rr = ctx.residual_norm2(comm, &x, &mut q, &mut r)?;
    let mut resid = rr.sqrt();
    let mut trace = vec![resid];
    let mut restarts = Vec::new();
    let mut iteration = 0;

    let indptr = mat.local.indptr();
    let indices = mat.local.indices();
    let values = mat.local.values();
    while iteration < max_iterations && resid > threshold {
        // One Jacobi sweep on the extended vector: x_newᵢ = (bᵢ − Σ_{j≠i}
        // aᵢⱼ xⱼ) / aᵢᵢ, traversing entries in global storage order.
        ctx.ext[..rows].copy_from_slice(&x);
        let (own, halo) = ctx.ext.split_at_mut(rows);
        comm.try_halo_exchange(&mat.halo, own, halo)?;
        for i in 0..rows {
            let mut acc = b[i];
            for k in indptr[i]..indptr[i + 1] {
                if indices[k] != i {
                    acc -= values[k] * ctx.ext[indices[k]];
                }
            }
            x_new[i] = acc / diag[i];
        }
        std::mem::swap(&mut x, &mut x_new);
        rr = ctx.residual_norm2(comm, &x, &mut q, &mut r)?;
        resid = rr.sqrt();
        iteration += 1;
        trace.push(resid);
        if hook.after_iteration(iteration, &mut x, comm)? == HookEvent::RestartKrylov {
            // Jacobi carries no recurrence state beyond x: recovery is
            // recomputing the residual from the restored solution.
            rr = ctx.residual_norm2(comm, &x, &mut q, &mut r)?;
            resid = rr.sqrt();
            restarts.push(iteration);
        }
    }
    Ok(ShardOutcome {
        converged: resid <= threshold,
        iterations: iteration,
        trace,
        x_local: x,
        restart_iterations: restarts,
    })
}
