//! Restarted generalized minimum residual method, GMRES(m).
//!
//! GMRES (Saad & Schultz, 1986) minimises the residual norm over a Krylov
//! subspace built by the Arnoldi process.  The paper always runs the
//! *restarted* variant GMRES(m) (PETSc's default `m = 30`), which is also
//! what makes lossy checkpointing cheap for it: the only dynamic variable
//! that must be saved is the solution vector `x`, because the Krylov basis
//! is discarded at every restart anyway (§4.4.2).  Theorem 3 shows that if
//! the compression error follows a relative bound of `O(‖r‖/‖b‖)` the
//! post-recovery residual stays on the same order, so `N′ ≈ 0` for GMRES.
//!
//! The implementation uses left preconditioning, the Arnoldi process with
//! modified Gram–Schmidt, and Givens rotations to maintain the residual
//! norm estimate cheaply.  One call to [`Gmres::step`] performs one *inner*
//! iteration (one new Krylov vector), which matches the per-iteration
//! checkpointing granularity used by the fault-tolerance driver.

use crate::convergence::{ConvergenceHistory, StoppingCriteria};
use crate::precond::{IdentityPreconditioner, Preconditioner};
use crate::{DynamicState, IterativeMethod, LinearSystem};
use lcr_sparse::{kernels, Vector};
use std::sync::Arc;

/// Restarted GMRES(m) solver.
pub struct Gmres {
    system: LinearSystem,
    precond: Arc<dyn Preconditioner>,
    criteria: StoppingCriteria,
    restart: usize,
    x: Vector,
    /// Krylov basis vectors (up to `restart + 1`).
    basis: Vec<Vector>,
    /// Upper-Hessenberg matrix stored column-wise: `hessenberg[j]` holds
    /// column `j` (length `j + 2`).
    hessenberg: Vec<Vec<f64>>,
    /// Givens rotation cosines/sines.
    givens: Vec<(f64, f64)>,
    /// Right-hand side of the least-squares problem.
    g: Vec<f64>,
    /// Preallocated scratch for `A v_j` (also reused as the residual buffer
    /// at cycle starts).
    av: Vector,
    /// Preallocated scratch for the vector being orthogonalised,
    /// `w = M⁻¹ A v_j`; only cloned when it actually extends the basis.
    w: Vector,
    /// Inner iteration index within the current cycle.
    inner: usize,
    iteration: usize,
    residual_norm: f64,
    reference_norm: f64,
    history: ConvergenceHistory,
}

impl Gmres {
    /// Creates a GMRES(m) solver with restart length `restart`.
    ///
    /// # Panics
    /// Panics if `restart == 0` or on dimension mismatch.
    pub fn new(
        system: LinearSystem,
        precond: Arc<dyn Preconditioner>,
        x0: Vector,
        restart: usize,
        criteria: StoppingCriteria,
    ) -> Self {
        assert!(restart > 0, "restart length must be positive");
        assert_eq!(x0.len(), system.dim(), "x0 dimension mismatch");
        let reference_norm = {
            // Left preconditioning: convergence is measured on M⁻¹(b − Ax).
            let pb = precond.apply(&system.b);
            pb.norm2()
        };
        let n = system.dim();
        let mut solver = Gmres {
            system,
            precond,
            criteria,
            restart,
            x: x0,
            basis: Vec::new(),
            hessenberg: Vec::new(),
            givens: Vec::new(),
            g: Vec::new(),
            av: Vector::zeros(n),
            w: Vector::zeros(n),
            inner: 0,
            iteration: 0,
            residual_norm: 0.0,
            reference_norm,
            history: ConvergenceHistory::new(0.0),
        };
        solver.begin_cycle();
        solver.history = ConvergenceHistory::new(solver.residual_norm);
        solver
    }

    /// Creates an unpreconditioned GMRES(m) solver.
    pub fn unpreconditioned(
        system: LinearSystem,
        x0: Vector,
        restart: usize,
        criteria: StoppingCriteria,
    ) -> Self {
        Self::new(
            system,
            Arc::new(IdentityPreconditioner::new()),
            x0,
            restart,
            criteria,
        )
    }

    /// Restart length `m`.
    pub fn restart_length(&self) -> usize {
        self.restart
    }

    /// Starts a new outer cycle from the current `x`, reusing the `av`/`w`
    /// scratch for the residual and its preconditioned image.
    fn begin_cycle(&mut self) {
        self.system.a.residual_into(
            self.x.as_slice(),
            self.system.b.as_slice(),
            self.av.as_mut_slice(),
        );
        self.precond.apply_into(&self.av, &mut self.w);
        let beta = self.w.norm2();
        self.residual_norm = beta;
        self.basis.clear();
        self.hessenberg.clear();
        self.givens.clear();
        self.g.clear();
        self.inner = 0;
        if beta > 0.0 {
            // v0 = w / beta written in one pass (no clone + rescale).
            let mut v0 = Vector::zeros(self.w.len());
            kernels::scale_into(v0.as_mut_slice(), 1.0 / beta, self.w.as_slice());
            self.basis.push(v0);
            self.g.push(beta);
        }
    }

    /// Solves the `k×k` upper-triangular least-squares system `R y = g` of
    /// the current cycle.
    fn solve_correction(&self) -> Vec<f64> {
        let k = self.inner;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut sum = self.g[i];
            for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                sum -= self.hessenberg[j][i] * yj;
            }
            y[i] = sum / self.hessenberg[i][i];
        }
        y
    }

    /// Assembles the solution update from the current least-squares system
    /// and folds it into `x`.
    fn update_solution(&mut self) {
        if self.inner == 0 {
            return;
        }
        let y = self.solve_correction();
        for (j, &yj) in y.iter().enumerate() {
            self.x.axpy(yj, &self.basis[j]);
        }
    }

    /// True (unpreconditioned) residual norm of the current `x`.
    pub fn true_residual_norm(&self) -> f64 {
        self.system.a.residual(&self.x, &self.system.b).norm2()
    }
}

impl IterativeMethod for Gmres {
    fn name(&self) -> &'static str {
        "gmres"
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn residual_norm(&self) -> f64 {
        self.residual_norm
    }

    fn reference_norm(&self) -> f64 {
        self.reference_norm
    }

    fn solution(&self) -> &Vector {
        &self.x
    }

    fn converged(&self) -> bool {
        self.criteria
            .is_satisfied(self.residual_norm, self.reference_norm)
            || self.criteria.limit_reached(self.iteration)
    }

    fn step(&mut self) {
        if self.converged() {
            return;
        }
        if self.basis.is_empty() {
            // Exact solution already (zero residual) — nothing to do.
            return;
        }

        let j = self.inner;
        // Arnoldi: w = M⁻¹ A v_j, computed in the preallocated scratch.
        self.system
            .a
            .spmv(self.basis[j].as_slice(), self.av.as_mut_slice());
        self.precond.apply_into(&self.av, &mut self.w);
        // Modified Gram–Schmidt.  The last projection is fused with the
        // norm of what remains: one pass instead of an axpy sweep followed
        // by a separate norm sweep.
        let mut h_col = Vec::with_capacity(j + 2);
        let mut w_norm2 = 0.0;
        for (i, vi) in self.basis.iter().take(j + 1).enumerate() {
            let hij = self.w.dot(vi);
            if i == j {
                w_norm2 = kernels::axpy_norm2(-hij, vi.as_slice(), self.w.as_mut_slice());
            } else {
                self.w.axpy(-hij, vi);
            }
            h_col.push(hij);
        }
        let h_next = w_norm2.sqrt();
        h_col.push(h_next);

        // Apply the accumulated Givens rotations to the new column.
        for (i, &(c, s)) in self.givens.iter().enumerate() {
            let temp = c * h_col[i] + s * h_col[i + 1];
            h_col[i + 1] = -s * h_col[i] + c * h_col[i + 1];
            h_col[i] = temp;
        }
        // New rotation eliminating h_col[j+1].
        let (c, s) = {
            let a = h_col[j];
            let b = h_col[j + 1];
            let denom = (a * a + b * b).sqrt();
            if denom == 0.0 {
                (1.0, 0.0)
            } else {
                (a / denom, b / denom)
            }
        };
        let rotated = c * h_col[j] + s * h_col[j + 1];
        h_col[j] = rotated;
        h_col[j + 1] = 0.0;
        self.givens.push((c, s));
        // Update g.
        let gj = self.g[j];
        self.g.push(-s * gj);
        self.g[j] = c * gj;

        self.hessenberg.push(h_col);
        self.inner += 1;
        self.iteration += 1;
        self.residual_norm = self.g[self.inner].abs();
        self.history.record(self.residual_norm);
        if self.criteria.limit_reached(self.iteration) {
            self.history.limit_reached = true;
        }

        let happy_breakdown = h_next == 0.0;
        let cycle_full = self.inner == self.restart;
        if self.converged() || cycle_full || happy_breakdown {
            // Fold the accumulated correction into x and restart the cycle.
            self.update_solution();
            self.begin_cycle();
        } else {
            // Extend the basis (the one allocation the Arnoldi process
            // genuinely needs: the basis keeps growing until the restart),
            // normalising in a single write pass instead of clone + scale.
            let mut v_next = Vector::zeros(self.w.len());
            kernels::scale_into(v_next.as_mut_slice(), 1.0 / h_next, self.w.as_slice());
            self.basis.push(v_next);
        }
    }

    fn capture_state(&self) -> DynamicState {
        // §4.4.2: for restarted GMRES the only dynamic vector worth saving
        // is x — the Krylov basis is discarded at restarts anyway.  To keep
        // the checkpoint consistent we capture the *restart-consistent*
        // solution: x with the current partial correction folded in.
        let mut x = self.x.clone();
        for (j, &yj) in self.solve_correction().iter().enumerate() {
            x.axpy(yj, &self.basis[j]);
        }
        DynamicState {
            iteration: self.iteration,
            scalars: Vec::new(),
            vectors: vec![("x".to_string(), x)],
        }
    }

    fn restore_state(&mut self, state: &DynamicState) {
        let x = state
            .vector("x")
            .expect("GMRES checkpoint must contain x")
            .clone();
        self.restart_from_solution(x, state.iteration);
    }

    fn restart_from_solution(&mut self, x: Vector, iteration: usize) {
        assert_eq!(x.len(), self.system.dim(), "restart vector dimension");
        self.x = x;
        self.iteration = iteration;
        self.begin_cycle();
        self.history.record_restart(iteration);
    }

    fn history(&self) -> &ConvergenceHistory {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::JacobiPreconditioner;
    use lcr_sparse::kkt::{kkt_system, KktConfig};
    use lcr_sparse::poisson::{manufactured_rhs, poisson2d, poisson3d};
    use lcr_sparse::CsrMatrix;

    fn criteria(rtol: f64) -> StoppingCriteria {
        StoppingCriteria::new(rtol, 100_000)
    }

    fn poisson_system(n: usize, three_d: bool) -> (LinearSystem, Vector) {
        let a = if three_d { poisson3d(n) } else { poisson2d(n) };
        let (xstar, b) = manufactured_rhs(&a);
        (LinearSystem::new(a, b), xstar)
    }

    #[test]
    fn gmres_converges_on_poisson2d() {
        let (sys, xstar) = poisson_system(10, false);
        let n = sys.dim();
        let mut g = Gmres::unpreconditioned(sys, Vector::zeros(n), 30, criteria(1e-10));
        g.run_to_convergence();
        assert!(g.converged());
        assert!(g.solution().max_abs_diff(&xstar) < 1e-5);
        assert!(g.true_residual_norm() < 1e-6);
        assert_eq!(g.name(), "gmres");
        assert_eq!(g.restart_length(), 30);
    }

    #[test]
    fn gmres_converges_on_nonsymmetric_system() {
        // Make the Poisson matrix nonsymmetric by adding a convection-like
        // off-diagonal perturbation; GMRES must still converge.
        let mut a = poisson2d(8);
        let n = a.nrows();
        {
            let indptr = a.indptr().to_vec();
            let indices = a.indices().to_vec();
            let values = a.values_mut();
            for i in 0..n {
                for k in indptr[i]..indptr[i + 1] {
                    if indices[k] == i + 1 {
                        values[k] += 0.3;
                    }
                }
            }
        }
        let (xstar, b) = manufactured_rhs(&a);
        assert!(!a.is_symmetric(1e-12));
        let sys = LinearSystem::new(a, b);
        let mut g = Gmres::unpreconditioned(sys, Vector::zeros(n), 20, criteria(1e-10));
        g.run_to_convergence();
        assert!(g.solution().max_abs_diff(&xstar) < 1e-5);
    }

    #[test]
    fn gmres_with_jacobi_preconditioner_on_kkt() {
        // Figure 3 of the paper: GMRES + Jacobi preconditioner on a
        // symmetric indefinite KKT system.
        let (k, xstar, b) = kkt_system(&KktConfig {
            grid_n: 4,
            ..KktConfig::default()
        });
        let n = k.nrows();
        let jacobi = Arc::new(JacobiPreconditioner::new(&k).unwrap());
        let sys = LinearSystem::new(k, b);
        let mut g = Gmres::new(sys, jacobi, Vector::zeros(n), 30, criteria(1e-8));
        g.run_to_convergence();
        assert!(g.converged());
        assert!(!g.history().limit_reached);
        assert!(g.solution().max_abs_diff(&xstar) < 1e-3);
    }

    #[test]
    fn restart_length_affects_iteration_count() {
        let (sys, _) = poisson_system(10, false);
        let n = sys.dim();
        let full =
            Gmres::unpreconditioned(sys.clone(), Vector::zeros(n), n, criteria(1e-8))
                .run_to_convergence();
        let short = Gmres::unpreconditioned(sys, Vector::zeros(n), 5, criteria(1e-8))
            .run_to_convergence();
        assert!(
            full <= short,
            "full-memory GMRES ({full}) should need no more iterations than GMRES(5) ({short})"
        );
    }

    #[test]
    fn gmres_on_3d_poisson() {
        let (sys, xstar) = poisson_system(4, true);
        let n = sys.dim();
        let mut g = Gmres::unpreconditioned(sys, Vector::zeros(n), 30, criteria(1e-9));
        g.run_to_convergence();
        assert!(g.solution().max_abs_diff(&xstar) < 1e-5);
    }

    #[test]
    fn capture_state_contains_only_x_and_is_consistent() {
        let (sys, _) = poisson_system(8, false);
        let n = sys.dim();
        let mut g = Gmres::unpreconditioned(sys.clone(), Vector::zeros(n), 10, criteria(1e-10));
        for _ in 0..7 {
            g.step();
        }
        let state = g.capture_state();
        assert_eq!(state.vectors.len(), 1);
        // The captured x folds in the partial Krylov correction: restoring
        // it and continuing must converge to the same solution.
        let mut restored =
            Gmres::unpreconditioned(sys, Vector::zeros(n), 10, criteria(1e-10));
        restored.restore_state(&state);
        assert_eq!(restored.iteration(), 7);
        restored.run_to_convergence();
        assert!(restored.converged());
        assert!(restored.true_residual_norm() < 1e-6);
    }

    #[test]
    fn lossy_restart_does_not_stall_gmres() {
        // §4.4.2 / Theorem 3: restarting GMRES from a perturbed x whose
        // perturbation follows a ‖r‖/‖b‖ relative bound does not delay
        // convergence by more than a handful of iterations.
        let (sys, _) = poisson_system(10, false);
        let n = sys.dim();
        let mut clean =
            Gmres::unpreconditioned(sys.clone(), Vector::zeros(n), 30, criteria(1e-8));
        let clean_total = clean.run_to_convergence();

        let mut lossy = Gmres::unpreconditioned(sys, Vector::zeros(n), 30, criteria(1e-8));
        for _ in 0..clean_total / 2 {
            lossy.step();
        }
        let state = lossy.capture_state();
        let x = state.vector("x").unwrap().clone();
        // Perturb with the Theorem-3 error bound eb = ||r|| / ||b||.
        let eb = lossy.true_residual_norm() / lossy.system.b.norm2();
        let mut xp = x;
        for (i, v) in xp.iter_mut().enumerate() {
            *v *= 1.0 + eb * if i % 2 == 0 { 0.9 } else { -0.9 };
        }
        lossy.restart_from_solution(xp, clean_total / 2);
        lossy.run_to_convergence();
        let total = lossy.iteration();
        assert!(lossy.converged());
        assert!(
            total <= clean_total * 2 + 30,
            "lossy GMRES took {total} vs clean {clean_total}"
        );
    }

    #[test]
    fn identity_system_converges_immediately() {
        let a = CsrMatrix::identity(6);
        let b = Vector::filled(6, 2.0);
        let sys = LinearSystem::new(a, b.clone());
        let mut g = Gmres::unpreconditioned(sys, Vector::zeros(6), 30, criteria(1e-12));
        g.run_to_convergence();
        assert!(g.iteration() <= 2);
        assert!(g.solution().max_abs_diff(&b) < 1e-12);
        // Steps after convergence are no-ops.
        let it = g.iteration();
        g.step();
        assert_eq!(g.iteration(), it);
    }

    #[test]
    fn starting_from_exact_solution_needs_no_iterations() {
        let (sys, xstar) = poisson_system(6, false);
        let mut g = Gmres::unpreconditioned(sys, xstar.clone(), 30, criteria(1e-8));
        assert!(g.converged());
        assert_eq!(g.run_to_convergence(), 0);
        assert!(g.solution().max_abs_diff(&xstar) < 1e-14);
    }

    #[test]
    #[should_panic(expected = "restart length")]
    fn zero_restart_panics() {
        let (sys, _) = poisson_system(4, false);
        let n = sys.dim();
        let _ = Gmres::unpreconditioned(sys, Vector::zeros(n), 0, criteria(1e-6));
    }
}
