//! # lcr-solvers
//!
//! Iterative methods for sparse linear systems, re-implemented from scratch
//! for the lossy-checkpointing reproduction of *"Improving Performance of
//! Iterative Methods by Lossy Checkpointing"* (Tao et al., HPDC 2018).
//!
//! The paper evaluates three families of solvers provided by PETSc:
//! stationary methods (represented by Jacobi), the restarted generalized
//! minimum residual method GMRES(m), and the (restarted) conjugate gradient
//! method CG/PCG.  This crate provides all of them, plus Gauss–Seidel,
//! SOR, SSOR and BiCGStab, and the preconditioners the paper uses
//! (Jacobi, block Jacobi, ILU(0), IC(0), SSOR).
//!
//! ## Step-wise execution and checkpointable state
//!
//! Fault-tolerant execution needs to interleave solver iterations with
//! checkpoints, failures and recoveries, so every solver implements
//! [`IterativeMethod`]: a step-at-a-time interface exposing
//!
//! * [`IterativeMethod::step`] — run one iteration;
//! * [`IterativeMethod::capture_state`] — the *dynamic variables* that a
//!   traditional checkpoint must save (for CG: `i`, `ρ`, `p`, `x`; for
//!   Jacobi and GMRES: `i`, `x` — exactly the classification of §3 of the
//!   paper);
//! * [`IterativeMethod::restore_state`] — exact recovery (traditional /
//!   lossless checkpointing);
//! * [`IterativeMethod::restart_from_solution`] — lossy recovery: treat a
//!   (decompressed, hence perturbed) solution vector as a new initial guess
//!   and rebuild the remaining state, as Algorithm 2 of the paper does.
//!
//! Static variables (the matrix `A`, the preconditioner `M`, the right-hand
//! side `b`) are shared through [`std::sync::Arc`] and are never mutated by
//! the solvers, mirroring their "checkpoint once" role in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bicgstab;
pub mod cg;
pub mod convergence;
pub mod gmres;
pub mod precond;
pub mod sharded;
pub mod stationary;

use std::sync::Arc;

use lcr_sparse::{CsrMatrix, Vector};
use serde::{Deserialize, Serialize};

pub use bicgstab::BiCgStab;
pub use cg::{ConjugateGradient, RestartedCg};
pub use convergence::{ConvergenceHistory, StoppingCriteria};
pub use gmres::Gmres;
pub use precond::{
    BlockJacobiPreconditioner, Ic0Preconditioner, IdentityPreconditioner, Ilu0Preconditioner,
    JacobiPreconditioner, Preconditioner, SsorPreconditioner,
};
pub use sharded::{HookEvent, NoopHook, ShardHook, ShardOutcome, ShardedMethod};
pub use stationary::{GaussSeidel, Jacobi, Sor, Ssor, StationaryKind};

/// Which iterative method a configuration refers to; used by the experiment
/// harness to build solvers generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverKind {
    /// The Jacobi stationary method (the paper's stationary representative).
    Jacobi,
    /// Gauss–Seidel stationary method.
    GaussSeidel,
    /// Successive over-relaxation.
    Sor,
    /// Symmetric successive over-relaxation.
    Ssor,
    /// Conjugate gradient (restarted variant under lossy checkpointing).
    Cg,
    /// Restarted GMRES(m).
    Gmres,
    /// BiCGStab.
    BiCgStab,
}

impl SolverKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Jacobi => "jacobi",
            SolverKind::GaussSeidel => "gauss-seidel",
            SolverKind::Sor => "sor",
            SolverKind::Ssor => "ssor",
            SolverKind::Cg => "cg",
            SolverKind::Gmres => "gmres",
            SolverKind::BiCgStab => "bicgstab",
        }
    }

    /// Number of dynamic *vectors* a traditional checkpoint stores for this
    /// method (Table 3: CG checkpoints `x` and `p`, the others only `x`).
    pub fn traditional_checkpoint_vectors(&self) -> usize {
        match self {
            SolverKind::Cg => 2,
            _ => 1,
        }
    }
}

/// The dynamic variables of a solver at a checkpoint: iteration counter,
/// scalar state, and named vectors, exactly the classification of Section 3
/// of the paper (static variables are shared and recomputed variables are
/// rebuilt on recovery).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicState {
    /// Iteration counter `i`.
    pub iteration: usize,
    /// Named scalar dynamic variables (e.g. CG's `ρ`).
    pub scalars: Vec<(String, f64)>,
    /// Named vector dynamic variables (e.g. `x`, and `p` for CG).
    pub vectors: Vec<(String, Vector)>,
}

impl DynamicState {
    /// Total number of bytes of the vector payload (the quantity the
    /// checkpoint-size accounting of Table 3 uses).
    pub fn vector_bytes(&self) -> usize {
        self.vectors
            .iter()
            .map(|(_, v)| v.len() * std::mem::size_of::<f64>())
            .sum()
    }

    /// Returns the named vector, if present.
    pub fn vector(&self, name: &str) -> Option<&Vector> {
        self.vectors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Returns the named scalar, if present.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A linear system `A x = b` shared by solvers, checkpointing and the
/// experiment harness.  `A`, `M`-defining data and `b` are the *static
/// variables* of the paper's classification.
#[derive(Debug, Clone)]
pub struct LinearSystem {
    /// System matrix.
    pub a: Arc<CsrMatrix>,
    /// Right-hand side.
    pub b: Arc<Vector>,
}

impl LinearSystem {
    /// Creates a system from a matrix and right-hand side.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn new(a: CsrMatrix, b: Vector) -> Self {
        assert_eq!(a.nrows(), b.len(), "matrix/rhs dimension mismatch");
        LinearSystem {
            a: Arc::new(a),
            b: Arc::new(b),
        }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.a.nrows()
    }

    /// Bytes of static data (matrix structure + values + rhs), used for
    /// recovery-time accounting of static variables.
    pub fn static_bytes(&self) -> usize {
        self.a.storage_bytes() + self.b.len() * std::mem::size_of::<f64>()
    }
}

/// Step-at-a-time interface implemented by every iterative method, designed
/// around the checkpoint/recovery workflow of Section 3 and Algorithm 1/2
/// of the paper.
pub trait IterativeMethod {
    /// Solver family name.
    fn name(&self) -> &'static str;

    /// Iterations completed so far.
    fn iteration(&self) -> usize;

    /// Current (true or estimated) residual 2-norm.
    fn residual_norm(&self) -> f64;

    /// Norm used as the convergence reference (‖b‖ by default).
    fn reference_norm(&self) -> f64;

    /// Current approximate solution.
    fn solution(&self) -> &Vector;

    /// Whether the stopping criteria are met.
    fn converged(&self) -> bool;

    /// Performs one iteration (a no-op once converged).
    fn step(&mut self);

    /// Captures the dynamic variables a traditional checkpoint must save.
    fn capture_state(&self) -> DynamicState;

    /// Restores the solver exactly from a previously captured state
    /// (traditional / lossless recovery).
    fn restore_state(&mut self, state: &DynamicState);

    /// Restarts the solver treating `x` as a new initial guess at iteration
    /// `iteration` (lossy recovery, Algorithm 2 lines 7–14: recomputed
    /// variables such as `r`, `z`, `p`, `ρ` are rebuilt from `x`).
    fn restart_from_solution(&mut self, x: Vector, iteration: usize);

    /// Convergence history (residual norm per iteration).
    fn history(&self) -> &ConvergenceHistory;

    /// Runs until convergence or the iteration limit, returning the number
    /// of iterations executed by this call.
    fn run_to_convergence(&mut self) -> usize {
        let start = self.iteration();
        while !self.converged() {
            self.step();
        }
        self.iteration() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcr_sparse::poisson::poisson1d;

    #[test]
    fn solver_kind_names_and_vectors() {
        assert_eq!(SolverKind::Jacobi.name(), "jacobi");
        assert_eq!(SolverKind::Gmres.name(), "gmres");
        assert_eq!(SolverKind::Cg.traditional_checkpoint_vectors(), 2);
        assert_eq!(SolverKind::Gmres.traditional_checkpoint_vectors(), 1);
        assert_eq!(SolverKind::Jacobi.traditional_checkpoint_vectors(), 1);
    }

    #[test]
    fn dynamic_state_accessors() {
        let state = DynamicState {
            iteration: 5,
            scalars: vec![("rho".to_string(), 2.5)],
            vectors: vec![("x".to_string(), Vector::zeros(10))],
        };
        assert_eq!(state.scalar("rho"), Some(2.5));
        assert_eq!(state.scalar("nope"), None);
        assert_eq!(state.vector("x").unwrap().len(), 10);
        assert!(state.vector("p").is_none());
        assert_eq!(state.vector_bytes(), 80);
    }

    #[test]
    fn linear_system_accounting() {
        let a = poisson1d(10);
        let b = Vector::filled(10, 1.0);
        let sys = LinearSystem::new(a.clone(), b);
        assert_eq!(sys.dim(), 10);
        assert_eq!(sys.static_bytes(), a.storage_bytes() + 80);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn linear_system_dimension_checked() {
        let a = poisson1d(10);
        let b = Vector::zeros(5);
        let _ = LinearSystem::new(a, b);
    }
}
