//! Property-based tests of solver invariants on randomly generated
//! well-conditioned systems.

use lcr_solvers::{
    ConjugateGradient, Gmres, IterativeMethod, Jacobi, JacobiPreconditioner, LinearSystem,
    Preconditioner, StoppingCriteria,
};
use lcr_sparse::{CooMatrix, CsrMatrix, Vector};
use proptest::prelude::*;

/// Generates a random strictly diagonally dominant (hence non-singular)
/// sparse matrix of dimension `n` with a manufactured solution/RHS.
fn dominant_system(n: usize, seed: u64, symmetric: bool) -> (LinearSystem, Vector) {
    let mut coo = CooMatrix::new(n, n);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut row_sums = vec![0.0f64; n];
    for i in 0..n {
        // A few off-diagonal entries per row.
        for _ in 0..3 {
            let j = (next() * n as f64) as usize % n;
            if j == i {
                continue;
            }
            let v = next() - 0.5;
            coo.push(i, j, v).unwrap();
            row_sums[i] += v.abs();
            if symmetric {
                coo.push(j, i, v).unwrap();
                row_sums[j] += v.abs();
            }
        }
    }
    // Strictly dominant positive diagonal (SPD when symmetric).
    for (i, s) in row_sums.iter().enumerate() {
        coo.push(i, i, s + 1.0 + next()).unwrap();
    }
    let a = coo.to_csr();
    let mut xstar = Vector::zeros(n);
    xstar.fill_random(seed ^ 0xFACE, -1.0, 1.0);
    let b = a.mul_vec(&xstar);
    (LinearSystem::new(a, b), xstar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jacobi_converges_on_diagonally_dominant_systems(n in 4usize..40, seed in 0u64..500) {
        let (sys, xstar) = dominant_system(n, seed, false);
        let mut solver = Jacobi::new(sys, Vector::zeros(n), StoppingCriteria::new(1e-10, 50_000));
        solver.run_to_convergence();
        prop_assert!(!solver.history().limit_reached);
        prop_assert!(solver.solution().max_abs_diff(&xstar) < 1e-6);
    }

    #[test]
    fn cg_converges_within_dimension_bound_on_spd_systems(n in 4usize..40, seed in 0u64..500) {
        let (sys, xstar) = dominant_system(n, seed, true);
        let mut solver = ConjugateGradient::unpreconditioned(
            sys,
            Vector::zeros(n),
            StoppingCriteria::new(1e-12, 50_000),
        );
        let iters = solver.run_to_convergence();
        prop_assert!(solver.solution().max_abs_diff(&xstar) < 1e-6);
        // Finite-termination property of CG (with slack for rounding).
        prop_assert!(iters <= n + 5, "CG took {} iterations for n = {}", iters, n);
    }

    #[test]
    fn gmres_estimated_residual_is_monotone_within_a_cycle(n in 6usize..40, seed in 0u64..500) {
        let (sys, _) = dominant_system(n, seed, false);
        let mut solver = Gmres::unpreconditioned(
            sys,
            Vector::zeros(n),
            n, // full-memory cycle: the estimate must be monotone
            StoppingCriteria::new(1e-12, 10_000),
        );
        let mut prev = solver.residual_norm();
        for _ in 0..n {
            if solver.converged() {
                break;
            }
            solver.step();
            prop_assert!(solver.residual_norm() <= prev * (1.0 + 1e-9));
            prev = solver.residual_norm();
        }
    }

    #[test]
    fn exact_checkpoint_restore_resumes_identical_trajectory(n in 6usize..30, seed in 0u64..500) {
        let (sys, _) = dominant_system(n, seed, true);
        let criteria = StoppingCriteria::new(1e-12, 50_000);
        let mut original =
            ConjugateGradient::unpreconditioned(sys.clone(), Vector::zeros(n), criteria);
        for _ in 0..3 {
            if !original.converged() {
                original.step();
            }
        }
        let state = original.capture_state();
        let mut restored = ConjugateGradient::unpreconditioned(sys, Vector::zeros(n), criteria);
        restored.restore_state(&state);
        for _ in 0..5 {
            if original.converged() || restored.converged() {
                break;
            }
            original.step();
            restored.step();
            let diff = original.solution().max_abs_diff(restored.solution());
            prop_assert!(diff <= 1e-9 * original.solution().norm_inf().max(1.0));
        }
    }

    #[test]
    fn lossy_restart_never_prevents_convergence(
        n in 6usize..30,
        seed in 0u64..500,
        rel_err in 1e-6f64..1e-2,
    ) {
        let (sys, xstar) = dominant_system(n, seed, true);
        let mut solver = ConjugateGradient::unpreconditioned(
            sys,
            Vector::zeros(n),
            StoppingCriteria::new(1e-10, 100_000),
        );
        for _ in 0..n / 2 {
            if !solver.converged() {
                solver.step();
            }
        }
        let at = solver.iteration();
        let mut x = solver.solution().clone();
        for (i, v) in x.iter_mut().enumerate() {
            *v *= 1.0 + rel_err * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        solver.restart_from_solution(x, at);
        solver.run_to_convergence();
        prop_assert!(!solver.history().limit_reached);
        prop_assert!(solver.solution().max_abs_diff(&xstar) < 1e-5);
    }

    #[test]
    fn jacobi_preconditioner_is_exact_inverse_of_diagonal_matrices(
        n in 1usize..50,
        seed in 0u64..500,
    ) {
        let mut diag = Vector::zeros(n);
        diag.fill_random(seed, 0.5, 10.0);
        let a = CsrMatrix::from_diagonal(diag.as_slice());
        let pre = JacobiPreconditioner::new(&a).unwrap();
        let mut r = Vector::zeros(n);
        r.fill_random(seed ^ 1, -5.0, 5.0);
        let z = pre.apply(&r);
        // For a diagonal matrix, M⁻¹ r solves A z = r exactly.
        let az = a.mul_vec(&z);
        prop_assert!(az.max_abs_diff(&r) < 1e-12);
    }
}
