//! Workspace discovery: find the root, enumerate member crates and their
//! Rust sources without any dependency on cargo metadata (the build
//! environment is offline, and the scanner must stay dependency-free).

use crate::source::{split_lines, SourceFile};
use std::io;
use std::path::{Path, PathBuf};

/// One workspace member (or the root package).
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from its `Cargo.toml`.
    pub name: String,
    /// Workspace-relative directory (`""` for the root package).
    pub rel_dir: String,
    /// Workspace-relative path of the primary root file (`src/lib.rs`,
    /// falling back to `src/main.rs`).
    pub root_rel: String,
    /// Workspace-relative prefix of the crate's source directory
    /// (`crates/foo/src/`).
    pub src_prefix: String,
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerates every `.rs` file under `root`, skipping `target/`, hidden
/// directories and anything outside the tree.  Paths come back sorted so
/// diagnostics and the generated inventory are deterministic.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile {
            rel,
            lines: split_lines(&text),
        });
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk(root, &path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Enumerates the workspace's crates: every directory holding a
/// `Cargo.toml` with a `[package]` section (the root package included).
pub fn collect_crates(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let mut dirs = vec![PathBuf::new()];
    for sub in ["crates", "shims"] {
        let base = root.join(sub);
        if base.is_dir() {
            for entry in std::fs::read_dir(&base)? {
                let entry = entry?;
                if entry.file_type()?.is_dir() {
                    dirs.push(PathBuf::from(sub).join(entry.file_name()));
                }
            }
        }
    }
    dirs.sort();
    let mut crates = Vec::new();
    for rel_dir in dirs {
        let manifest = root.join(&rel_dir).join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&manifest)?;
        if !text.contains("[package]") {
            continue;
        }
        let name = text
            .lines()
            .find_map(|l| {
                let l = l.trim();
                l.strip_prefix("name")
                    .and_then(|r| r.trim_start().strip_prefix('='))
                    .map(|r| r.trim().trim_matches('"').to_string())
            })
            .unwrap_or_else(|| rel_dir.to_string_lossy().into_owned());
        let rel_dir_s = rel_dir
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let prefix = if rel_dir_s.is_empty() {
            String::new()
        } else {
            format!("{rel_dir_s}/")
        };
        let lib = format!("{prefix}src/lib.rs");
        let main = format!("{prefix}src/main.rs");
        let root_rel = if root.join(&lib).is_file() {
            lib
        } else if root.join(&main).is_file() {
            main
        } else {
            continue; // manifest without sources — nothing to audit
        };
        crates.push(CrateInfo {
            name,
            rel_dir: rel_dir_s,
            root_rel,
            src_prefix: format!("{prefix}src/"),
        });
    }
    Ok(crates)
}
