//! The unsafe audit: every `unsafe` site must justify itself.
//!
//! Three rules, mirroring the workspace's safety conventions:
//!
//! 1. **Documented unsafe** — every `unsafe` keyword in code must carry an
//!    adjacent justification: a `// SAFETY:` comment on the same line or in
//!    the contiguous comment/attribute block directly above, or (for
//!    `unsafe fn`/`unsafe trait` declarations) a `# Safety` section in the
//!    doc comment block above.
//! 2. **Dangerous-token allowlist** — `get_unchecked`, `transmute`,
//!    raw-pointer constructors and friends may only appear in the crates
//!    that own the workspace's unsafe surface (`crates/sparse`,
//!    `shims/rayon`).
//! 3. **Crate-root attributes** — crates whose sources contain no `unsafe`
//!    must pin that with `#![forbid(unsafe_code)]`; crates that do use
//!    `unsafe` must compile under `#![deny(unsafe_op_in_unsafe_fn)]` so
//!    every unsafe operation sits in an explicit, commentable block.

use crate::source::{contains_token, find_token, SourceFile};
use crate::workspace::CrateInfo;
use crate::Diagnostic;

/// Tokens whose presence marks a file as touching the raw-memory API
/// surface, confined to [`DANGEROUS_ALLOWLIST`] crates.
pub const DANGEROUS_TOKENS: &[&str] = &[
    "get_unchecked",
    "get_unchecked_mut",
    "transmute",
    "from_raw_parts",
    "from_raw_parts_mut",
    "ptr::read",
    "ptr::write",
    "read_volatile",
    "write_volatile",
    "drop_in_place",
    "set_len",
    "assume_init",
];

/// Workspace-relative path prefixes allowed to use [`DANGEROUS_TOKENS`]:
/// the two crates that own the deterministic-parallelism unsafe surface.
pub const DANGEROUS_ALLOWLIST: &[&str] = &["crates/sparse/", "shims/rayon/"];

/// One audited `unsafe` occurrence, for the `UNSAFE.md` inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// Site kind: `impl`, `fn`, `trait` or `block`.
    pub kind: &'static str,
    /// The code line, trimmed.
    pub snippet: String,
    /// The adjacent SAFETY / `# Safety` justification, if present.
    pub justification: Option<String>,
}

/// Scans one file for `unsafe` sites, reporting undocumented ones into
/// `diags` and every site into `sites`.
pub fn audit_file(file: &SourceFile, diags: &mut Vec<Diagnostic>, sites: &mut Vec<UnsafeSite>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(pos) = find_token(&line.code, "unsafe") else {
            continue;
        };
        let kind = classify(&line.code[pos + "unsafe".len()..]);
        let justification = adjacent_justification(file, idx, kind);
        if justification.is_none() {
            diags.push(Diagnostic {
                lint: "undocumented-unsafe",
                rel: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "`unsafe` {kind} has no adjacent `// SAFETY:` comment{}",
                    if kind == "fn" || kind == "trait" {
                        " (or `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            });
        }
        sites.push(UnsafeSite {
            rel: file.rel.clone(),
            line: idx + 1,
            kind,
            snippet: line.code.trim().to_string(),
            justification,
        });
        // A second `unsafe` on the same line (e.g. paired Send/Sync impls
        // squeezed together) would share the first's justification; the
        // workspace style keeps one per line, so auditing the first is
        // enough — but flag the style itself.
        if find_token(&line.code[pos + "unsafe".len()..], "unsafe").is_some() {
            diags.push(Diagnostic {
                lint: "undocumented-unsafe",
                rel: file.rel.clone(),
                line: idx + 1,
                message: "multiple `unsafe` sites on one line — split them so each \
                          carries its own SAFETY comment"
                    .to_string(),
            });
        }
    }
}

fn classify(after: &str) -> &'static str {
    let t = after.trim_start();
    if t.starts_with("impl") {
        "impl"
    } else if t.starts_with("fn") || t.starts_with("extern") {
        "fn"
    } else if t.starts_with("trait") {
        "trait"
    } else {
        "block"
    }
}

/// Looks for the justification adjacent to line `idx`: a `SAFETY:` marker
/// in the same line's comment, or in the contiguous block of comment-only /
/// attribute-only lines directly above (doc `# Safety` headings count for
/// declarations).
fn adjacent_justification(file: &SourceFile, idx: usize, kind: &'static str) -> Option<String> {
    let accepts_doc = kind == "fn" || kind == "trait";
    let own = &file.lines[idx].comment;
    if own.contains("SAFETY:") {
        return Some(own.trim().to_string());
    }
    let mut collected: Vec<&str> = Vec::new();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &file.lines[j];
        if line.is_comment_only() || line.is_attr_only() {
            if !line.comment.trim().is_empty() {
                collected.push(line.comment.trim());
            }
            continue;
        }
        break;
    }
    // `collected` is bottom-up; a SAFETY marker anywhere in the block
    // counts, and the justification is the marker line plus what follows
    // it (i.e. precedes it in bottom-up order).
    let has_safety = collected.iter().any(|c| c.contains("SAFETY:"));
    let has_doc_safety = accepts_doc && collected.iter().any(|c| c.trim() == "# Safety");
    if has_safety || has_doc_safety {
        let mut text: Vec<&str> = Vec::new();
        for c in collected.iter().rev() {
            if text.is_empty() && !(c.contains("SAFETY:") || c.trim() == "# Safety") {
                continue;
            }
            text.push(c);
        }
        return Some(text.join(" "));
    }
    None
}

/// Whole-tree pass: dangerous raw-memory tokens are confined to the
/// allowlisted crates, *including* their tests and benches — nothing else
/// in the tree may use them at all.
pub fn audit_dangerous_tokens(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for file in files {
        if DANGEROUS_ALLOWLIST.iter().any(|p| file.rel.starts_with(p)) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            for tok in DANGEROUS_TOKENS {
                if contains_token(&line.code, tok) {
                    diags.push(Diagnostic {
                        lint: "unsafe-outside-allowlist",
                        rel: file.rel.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{tok}` is confined to {DANGEROUS_ALLOWLIST:?}"
                        ),
                    });
                }
            }
        }
    }
}

/// Per-crate attribute checks.
pub fn audit_crate(krate: &CrateInfo, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    let crate_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with(&krate.src_prefix) || f.rel == krate.root_rel)
        .collect();
    let uses_unsafe = crate_files.iter().any(|f| {
        f.lines
            .iter()
            .any(|l| contains_token(&l.code, "unsafe"))
    });
    let root = files.iter().find(|f| f.rel == krate.root_rel);
    let Some(root) = root else {
        diags.push(Diagnostic {
            lint: "missing-forbid-unsafe",
            rel: krate.root_rel.clone(),
            line: 1,
            message: format!("crate `{}` has no readable root file", krate.name),
        });
        return;
    };
    let has_attr = |needle: &str| {
        root.lines.iter().any(|l| {
            let squashed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
            squashed.contains(needle)
        })
    };
    if uses_unsafe {
        if !has_attr("#![deny(unsafe_op_in_unsafe_fn)]") {
            diags.push(Diagnostic {
                lint: "missing-deny-unsafe-op",
                rel: krate.root_rel.clone(),
                line: 1,
                message: format!(
                    "crate `{}` uses `unsafe` but its root does not declare \
                     `#![deny(unsafe_op_in_unsafe_fn)]`",
                    krate.name
                ),
            });
        }
    } else if !has_attr("#![forbid(unsafe_code)]") {
        diags.push(Diagnostic {
            lint: "missing-forbid-unsafe",
            rel: krate.root_rel.clone(),
            line: 1,
            message: format!(
                "crate `{}` is unsafe-free but its root does not declare \
                 `#![forbid(unsafe_code)]`",
                krate.name
            ),
        });
    }
}
