//! `lcr-analyze` — scan the workspace, print violations, exit nonzero on
//! any.
//!
//! ```text
//! cargo run -p lcr-analyze                      # lint scan
//! cargo run -p lcr-analyze -- --write-unsafe-md # also regenerate UNSAFE.md
//! cargo run -p lcr-analyze -- --check-unsafe-md # also verify UNSAFE.md is current
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut write_md = false;
    let mut check_md = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--write-unsafe-md" => write_md = true,
            "--check-unsafe-md" => check_md = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: lcr-analyze [--root <dir>] [--write-unsafe-md] [--check-unsafe-md]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd is readable");
            match lcr_analyze::workspace::find_root(&cwd) {
                Some(r) => r,
                None => return usage("no workspace root found above the current directory"),
            }
        }
    };

    let report = match lcr_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lcr-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for diag in &report.diagnostics {
        println!("{diag}");
    }

    let mut failed = !report.diagnostics.is_empty();
    let md_path = root.join("UNSAFE.md");
    let rendered = lcr_analyze::render_unsafe_md(&report);
    if write_md {
        if let Err(e) = std::fs::write(&md_path, &rendered) {
            eprintln!("lcr-analyze: cannot write {}: {e}", md_path.display());
            return ExitCode::from(2);
        }
        println!("lcr-analyze: wrote {}", md_path.display());
    } else if check_md {
        match std::fs::read_to_string(&md_path) {
            Ok(existing) if existing == rendered => {}
            Ok(_) => {
                println!(
                    "UNSAFE.md: [stale-inventory] out of date — regenerate with \
                     `cargo run -p lcr-analyze -- --write-unsafe-md`"
                );
                failed = true;
            }
            Err(_) => {
                println!(
                    "UNSAFE.md: [stale-inventory] missing — generate with \
                     `cargo run -p lcr-analyze -- --write-unsafe-md`"
                );
                failed = true;
            }
        }
    }

    if failed {
        println!(
            "lcr-analyze: FAILED — {} violation(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lcr-analyze: clean — {} files, {} unsafe sites (all documented), {} waiver(s)",
            report.files_scanned,
            report.unsafe_sites.len(),
            report.waivers.len()
        );
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("lcr-analyze: {msg}");
    eprintln!("usage: lcr-analyze [--root <dir>] [--write-unsafe-md] [--check-unsafe-md]");
    ExitCode::from(2)
}
