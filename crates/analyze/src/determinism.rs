//! Determinism lints: the bit-identical-at-any-thread-count contract,
//! machine-checked.
//!
//! The workspace's reproducibility claim rests on every parallel kernel
//! routing through the rayon shim's chunk-ordered primitives and on kernel
//! code never consulting sources of nondeterminism.  These lints deny the
//! known escape hatches:
//!
//! * `thread-spawn` — raw `std::thread` spawning anywhere except the pool
//!   itself (`shims/rayon/src/pool.rs`) and the `DiskStore` write-behind
//!   thread (`crates/ckpt/src/disk.rs`).  Everything else must go through
//!   the deterministic pool.
//! * `hash-collection` — `HashMap`/`HashSet` in the kernel crates
//!   (`sparse`, `compress`, `solvers`): hash iteration order is
//!   randomised across processes, so any kernel-path iteration silently
//!   breaks reproducibility.  Use `BTreeMap`/`Vec` histograms, or waive a
//!   site whose iteration provably sorts first.
//! * `wall-clock` — `Instant::now`/`SystemTime` in kernel crates: timing
//!   must never steer a kernel-path decision.
//! * `atomic-reduction` — atomic read-modify-write in kernel crates:
//!   parallel float reductions must combine per-chunk partials in chunk
//!   order via `rayon::run_chunks`/`run_ordered`, never accumulate through
//!   atomics (whose arrival order is scheduling-dependent).
//!
//! A site that is sound for a documented reason carries a waiver comment:
//!
//! ```text
//! // lcr-analyze: allow(hash-collection): iteration is sorted by symbol
//! // before use, so hash order never reaches the output.
//! ```
//!
//! Waivers require a justification and apply to the same line or the line
//! below; they are reported in the inventory so review can see every one.

use crate::source::{cfg_test_mask, contains_token, SourceFile};
use crate::Diagnostic;

/// Crates whose `src/` trees are held to the kernel-determinism lints.
pub const KERNEL_CRATE_PREFIXES: &[&str] = &[
    "crates/sparse/src/",
    "crates/compress/src/",
    "crates/solvers/src/",
];

/// Files allowed to spawn threads directly.
pub const THREAD_SPAWN_ALLOWLIST: &[&str] =
    &["shims/rayon/src/pool.rs", "crates/ckpt/src/disk.rs"];

/// A recorded waiver, for the inventory.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The lint being waived.
    pub lint: String,
    /// The stated justification.
    pub reason: String,
}

/// Parses `lcr-analyze: allow(<lint>): <reason>` out of a comment.
fn parse_waiver(comment: &str) -> Option<(String, String)> {
    let pos = comment.find("lcr-analyze: allow(")?;
    let rest = &comment[pos + "lcr-analyze: allow(".len()..];
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([':', ' ', '—', '-'])
        .trim()
        .to_string();
    Some((lint, reason))
}

/// Collects waivers and flags reason-less ones.  Returns, per line, the
/// set of lint names waived *for that line* (a waiver covers its own line
/// and, when it sits on a comment-only line, the next line as well —
/// chains of comment-only lines extend downward to the first code line).
fn waiver_map(
    file: &SourceFile,
    diags: &mut Vec<Diagnostic>,
    waivers: &mut Vec<Waiver>,
) -> Vec<Vec<String>> {
    let mut map: Vec<Vec<String>> = vec![Vec::new(); file.lines.len()];
    for (idx, line) in file.lines.iter().enumerate() {
        // Waivers must be plain `//` comments: doc comments describe APIs
        // (and may quote the waiver syntax) but never waive anything.
        if line.doc {
            continue;
        }
        let Some((lint, reason)) = parse_waiver(&line.comment) else {
            continue;
        };
        if reason.len() < 10 {
            diags.push(Diagnostic {
                lint: "waiver-missing-reason",
                rel: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "waiver for `{lint}` must state a justification after the colon"
                ),
            });
            continue;
        }
        waivers.push(Waiver {
            rel: file.rel.clone(),
            line: idx + 1,
            lint: lint.clone(),
            reason: reason.clone(),
        });
        map[idx].push(lint.clone());
        if file.lines[idx].is_comment_only() {
            // Extend to the first code line below the comment block.
            let mut j = idx + 1;
            while j < file.lines.len() {
                map[j].push(lint.clone());
                if !file.lines[j].is_comment_only() && !file.lines[j].is_blank() {
                    break;
                }
                j += 1;
            }
        }
    }
    map
}

struct DenyRule {
    lint: &'static str,
    tokens: &'static [&'static str],
    message: &'static str,
}

const KERNEL_RULES: &[DenyRule] = &[
    DenyRule {
        lint: "hash-collection",
        tokens: &["HashMap", "HashSet"],
        message: "hash iteration order is nondeterministic; kernel crates must use \
                  ordered collections (or waive a site that sorts before iterating)",
    },
    DenyRule {
        lint: "wall-clock",
        tokens: &["Instant::now", "SystemTime", "UNIX_EPOCH"],
        message: "wall-clock reads are forbidden in kernel crates — timing must never \
                  steer a deterministic kernel path",
    },
    DenyRule {
        lint: "atomic-reduction",
        tokens: &[
            "fetch_add",
            "fetch_sub",
            "fetch_update",
            "fetch_or",
            "fetch_and",
            "fetch_xor",
            "compare_exchange",
            "compare_exchange_weak",
        ],
        message: "atomic read-modify-write accumulation is order-nondeterministic; \
                  parallel reductions must combine chunk partials in chunk order via \
                  `rayon::run_chunks`/`run_ordered`",
    },
];

/// Runs every determinism lint over one file.
pub fn lint_file(file: &SourceFile, diags: &mut Vec<Diagnostic>, waivers: &mut Vec<Waiver>) {
    // Tests, benches and examples may spawn, time and hash freely — the
    // contract governs production kernel code.
    let path_is_test = file.rel.contains("/tests/")
        || file.rel.starts_with("tests/")
        || file.rel.contains("/benches/")
        || file.rel.contains("/examples/")
        || file.rel.starts_with("examples/");
    if path_is_test {
        return;
    }
    let waived = waiver_map(file, diags, waivers);
    let test_mask = cfg_test_mask(&file.lines);

    // thread-spawn: workspace-wide on src files.
    let spawn_allowed = THREAD_SPAWN_ALLOWLIST.contains(&file.rel.as_str());
    let in_kernel_crate = KERNEL_CRATE_PREFIXES
        .iter()
        .any(|p| file.rel.starts_with(p));

    for (idx, line) in file.lines.iter().enumerate() {
        if test_mask[idx] {
            continue;
        }
        if !spawn_allowed
            && ["thread::spawn", "thread::Builder"]
                .iter()
                .any(|t| contains_token(&line.code, t))
            && !waived[idx].iter().any(|l| l == "thread-spawn")
        {
            diags.push(Diagnostic {
                lint: "thread-spawn",
                rel: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "raw thread spawning is confined to {THREAD_SPAWN_ALLOWLIST:?}; \
                     route parallel work through the deterministic pool"
                ),
            });
        }
        if !in_kernel_crate {
            continue;
        }
        for rule in KERNEL_RULES {
            if rule.tokens.iter().any(|t| contains_token(&line.code, t))
                && !waived[idx].iter().any(|l| l == rule.lint)
            {
                diags.push(Diagnostic {
                    lint: rule.lint,
                    rel: file.rel.clone(),
                    line: idx + 1,
                    message: rule.message.to_string(),
                });
            }
        }
    }
}
