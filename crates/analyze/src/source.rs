//! Lexical source model: splits a Rust source file into per-line *code*
//! and *comment* channels.
//!
//! The checks in this crate are lexical, not syntactic — they only need to
//! know (a) which tokens appear in executable code and (b) what the
//! comments next to them say.  This module provides exactly that split:
//!
//! * string and character literal *contents* are blanked out of the code
//!   channel (so `"unsafe"` in a test fixture never trips a lint), while
//!   the delimiting quotes stay in place so columns line up;
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   nested) are removed from the code channel and accumulated, per line,
//!   in the comment channel;
//! * raw strings (`r"…"`, `r#"…"#`, byte/raw-byte variants) and escape
//!   sequences are handled so a quote inside a literal cannot desynchronise
//!   the lexer.
//!
//! Lifetimes (`'a`) are distinguished from character literals (`'a'`) with
//! the standard two-characters-ahead heuristic, which is exact for every
//! literal this workspace contains.

/// One physical source line, split into its code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text appearing on this line (markers stripped).
    pub comment: String,
    /// Whether the comment text came from a doc comment (`///` or `//!`).
    /// Doc comments describe APIs — they never carry lint waivers, so
    /// documentation *quoting* the waiver syntax stays inert.
    pub doc: bool,
}

impl Line {
    /// Whether the line carries neither code nor comment text.
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }

    /// Whether the line carries comment text but no code.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    /// Whether the line is only an attribute (`#[…]` / `#![…]`), possibly
    /// with a trailing comment.
    pub fn is_attr_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// A parsed source file: workspace-relative path plus the per-line split.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The per-line code/comment split (0-indexed; diagnostics are
    /// 1-indexed).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `text` into per-line code and comment channels.
pub fn split_lines(text: &str) -> Vec<Line> {
    let bytes: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                        // Skip doc markers so the channel holds plain text.
                        while matches!(bytes.get(i), Some('/') | Some('!')) {
                            cur.doc = true;
                            i += 1;
                        }
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                        while matches!(bytes.get(i), Some('*') | Some('!')) {
                            i += 1;
                        }
                        continue;
                    }
                    '"' => {
                        cur.code.push('"');
                        state = State::Str;
                        i += 1;
                        continue;
                    }
                    'r' | 'b' => {
                        // Possible raw / byte string prefix: r", r#", br#", b".
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = (c == 'r' || bytes.get(i + 1) == Some(&'r'))
                            && bytes.get(j) == Some(&'"');
                        let is_byte_str =
                            c == 'b' && hashes == 0 && bytes.get(i + 1) == Some(&'"');
                        // Only treat as a literal prefix when not part of a
                        // longer identifier (`for` ends in 'r', `rb` vars…).
                        let prev_ident = i > 0 && is_ident_char(bytes[i - 1]);
                        if !prev_ident && is_raw {
                            for &b in &bytes[i..=j] {
                                cur.code.push(b);
                            }
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        if !prev_ident && is_byte_str {
                            cur.code.push('b');
                            cur.code.push('"');
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                    '\'' => {
                        // Char literal iff it closes within two chars
                        // (`'x'`) or starts with an escape; else lifetime.
                        let is_char = matches!(
                            (bytes.get(i + 1), bytes.get(i + 2)),
                            (Some('\\'), _) | (Some(_), Some('\''))
                        );
                        cur.code.push('\'');
                        i += 1;
                        if is_char {
                            state = State::Char;
                        }
                        continue;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if bytes.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' && bytes.get(i + 1).is_some_and(|&n| n != '\n') {
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `haystack` as a standalone token — i.e. not
/// embedded in a longer identifier on either side.  `needle` itself may
/// contain `::` path separators.
pub fn contains_token(haystack: &str, needle: &str) -> bool {
    find_token(haystack, needle).is_some()
}

/// Byte offset of the first standalone occurrence of `needle`.
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_char(h[start - 1] as char);
        let right_ok = end == h.len() || !is_ident_char(h[end] as char);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

/// Marks lines that sit inside `#[cfg(test)]`-gated items so lints that
/// only govern production code can skip them.  Returns one flag per line.
///
/// The walk is lexical: after a `#[cfg(test)]` attribute, everything up to
/// the end of the next item — the matching `}` of the first brace opened,
/// or the first `;` if no brace opens — is marked as test code.  Nested
/// braces are counted on the stripped code channel, so braces in strings
/// and comments cannot desynchronise it.
pub fn cfg_test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if contains_cfg_test(&lines[i].code) {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => {
                            // Braceless item (e.g. `#[cfg(test)] use …;`).
                            depth = i64::MIN;
                        }
                        _ => {}
                    }
                    if (opened && depth == 0) || depth == i64::MIN {
                        break;
                    }
                }
                if (opened && depth == 0) || depth == i64::MIN {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn contains_cfg_test(code: &str) -> bool {
    let squashed: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.contains("#[cfg(test)]") || squashed.contains("#[cfg(all(test")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_comments_extracted() {
        let lines = split_lines("let s = \"unsafe { }\"; // SAFETY: not really\n");
        assert_eq!(lines.len(), 1);
        assert!(!contains_token(&lines[0].code, "unsafe"));
        assert!(lines[0].comment.contains("SAFETY: not really"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = "let a = r#\"unsafe \" quote\"#; let b = \"esc \\\" q\";\nlet c = 1;\n";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 2);
        assert!(!contains_token(&lines[0].code, "unsafe"));
        assert!(contains_token(&lines[1].code, "c"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = split_lines("fn f<'a>(x: &'a str) -> char { '}' }\n");
        // The `}` inside the char literal must be blanked; the real braces
        // must survive.
        let opens = lines[0].code.matches('{').count();
        let closes = lines[0].code.matches('}').count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
    }

    #[test]
    fn block_comments_nest() {
        let lines = split_lines("a /* one /* two */ still */ b\n");
        assert!(contains_token(&lines[0].code, "a"));
        assert!(contains_token(&lines[0].code, "b"));
        assert!(!contains_token(&lines[0].code, "two"));
        assert!(lines[0].comment.contains("two"));
    }

    #[test]
    fn token_boundaries() {
        assert!(contains_token("unsafe {", "unsafe"));
        assert!(!contains_token("unsafe_code", "unsafe"));
        assert!(!contains_token("find_unsafe", "unsafe"));
        assert!(contains_token("std::thread::spawn(f)", "thread::spawn"));
        assert!(!contains_token("my_thread::spawner", "thread::spawn"));
    }

    #[test]
    fn cfg_test_mask_covers_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { if x { y } }\n}\nfn c() {}\n";
        let lines = split_lines(src);
        let mask = cfg_test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }
}
