//! Seeded-violation tests: build a throwaway fake workspace on disk with
//! one deliberate violation per lint class and assert `lcr-analyze` flags
//! each — the analyzer's false-negative gate.  (All fixture source lives
//! in string literals, which the scanner blanks, so this file does not
//! trip the live-tree scan.)

use lcr_analyze::analyze_workspace;
use std::path::{Path, PathBuf};

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str, files: &[(&str, &str)]) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "lcr-analyze-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, content) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, content).unwrap();
        }
        Fixture { root }
    }

    fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const WORKSPACE_MANIFEST: &str = "[workspace]\nmembers = [\"crates/sparse\"]\n";

fn package_manifest(name: &str) -> String {
    format!("[package]\nname = \"{name}\"\nversion = \"0.0.0\"\nedition = \"2021\"\n")
}

fn lints_for<'a>(
    report: &'a lcr_analyze::Report,
    rel: &str,
) -> Vec<(&'a str, usize)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rel == rel)
        .map(|d| (d.lint, d.line))
        .collect()
}

#[test]
fn undocumented_unsafe_and_missing_deny_attr_are_flagged() {
    let manifest = package_manifest("fake-sparse");
    let fx = Fixture::new(
        "unsafe",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/sparse/Cargo.toml", &manifest),
            (
                "crates/sparse/src/lib.rs",
                "pub fn peek(v: &[f64]) -> f64 {\n    unsafe { *v.get_unchecked(0) }\n}\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    let lints = lints_for(&report, "crates/sparse/src/lib.rs");
    assert!(
        lints.contains(&("undocumented-unsafe", 2)),
        "expected undocumented-unsafe at line 2, got {lints:?}"
    );
    assert!(
        lints.contains(&("missing-deny-unsafe-op", 1)),
        "unsafe-using crate without the deny attr must be flagged, got {lints:?}"
    );
}

#[test]
fn documented_unsafe_with_attrs_is_clean() {
    let manifest = package_manifest("fake-sparse");
    let fx = Fixture::new(
        "unsafe-ok",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/sparse/Cargo.toml", &manifest),
            (
                "crates/sparse/src/lib.rs",
                "#![deny(unsafe_op_in_unsafe_fn)]\n\
                 pub fn peek(v: &[f64]) -> f64 {\n    \
                 // SAFETY: caller guarantees v is non-empty.\n    \
                 unsafe { *v.get_unchecked(0) }\n}\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "clean fixture must produce no diagnostics, got {:?}",
        report.diagnostics
    );
    assert_eq!(report.unsafe_sites.len(), 1);
    assert!(report.unsafe_sites[0].justification.is_some());
}

#[test]
fn dangerous_tokens_outside_allowlist_are_flagged() {
    let manifest = package_manifest("other");
    let fx = Fixture::new(
        "danger",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/other/Cargo.toml", &manifest),
            (
                "crates/other/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn bits(x: f64) -> u64 {\n    \
                 std::mem::transmute(x)\n}\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    let lints = lints_for(&report, "crates/other/src/lib.rs");
    assert!(
        lints.contains(&("unsafe-outside-allowlist", 3)),
        "transmute outside the allowlist must be flagged, got {lints:?}"
    );
}

#[test]
fn missing_forbid_unsafe_is_flagged() {
    let manifest = package_manifest("clean-crate");
    let fx = Fixture::new(
        "forbid",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/clean/Cargo.toml", &manifest),
            ("crates/clean/src/lib.rs", "pub fn id(x: u32) -> u32 { x }\n"),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    let lints = lints_for(&report, "crates/clean/src/lib.rs");
    assert!(
        lints.contains(&("missing-forbid-unsafe", 1)),
        "unsafe-free crate without forbid must be flagged, got {lints:?}"
    );
}

#[test]
fn thread_spawn_outside_allowlist_is_flagged() {
    let manifest = package_manifest("other");
    let fx = Fixture::new(
        "spawn",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/other/Cargo.toml", &manifest),
            (
                "crates/other/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn go() {\n    \
                 std::thread::spawn(|| {});\n}\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    let lints = lints_for(&report, "crates/other/src/lib.rs");
    assert!(
        lints.contains(&("thread-spawn", 3)),
        "raw thread spawn must be flagged, got {lints:?}"
    );
}

#[test]
fn kernel_crate_determinism_rules_fire_and_waivers_silence_them() {
    let manifest = package_manifest("fake-sparse");
    let fx = Fixture::new(
        "kernel",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/sparse/Cargo.toml", &manifest),
            (
                "crates/sparse/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 use std::collections::HashMap;\n\
                 use std::sync::atomic::{AtomicU64, Ordering};\n\
                 pub fn bad(m: &HashMap<u32, u64>, a: &AtomicU64) -> u64 {\n    \
                 let t = std::time::Instant::now();\n    \
                 a.fetch_add(1, Ordering::Relaxed);\n    \
                 let _ = t.elapsed();\n    \
                 m.len() as u64\n}\n\
                 // lcr-analyze: allow(hash-collection): fixture waiver with a real reason\n\
                 pub fn waived(m: &HashMap<u32, u64>) -> usize { m.len() }\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    let lints = lints_for(&report, "crates/sparse/src/lib.rs");
    assert!(
        lints.iter().any(|&(l, n)| l == "hash-collection" && n <= 4),
        "HashMap in a kernel crate must be flagged, got {lints:?}"
    );
    assert!(
        lints.contains(&("wall-clock", 5)),
        "Instant::now in a kernel crate must be flagged, got {lints:?}"
    );
    assert!(
        lints.contains(&("atomic-reduction", 6)),
        "fetch_add in a kernel crate must be flagged, got {lints:?}"
    );
    assert!(
        !lints.iter().any(|&(l, n)| l == "hash-collection" && n >= 10),
        "the waived HashMap line must not be flagged, got {lints:?}"
    );
    assert_eq!(report.waivers.len(), 1, "the waiver must be recorded");
}

#[test]
fn waiver_without_reason_is_itself_a_violation() {
    let manifest = package_manifest("fake-sparse");
    let fx = Fixture::new(
        "waiver",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/sparse/Cargo.toml", &manifest),
            (
                "crates/sparse/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 use std::collections::HashMap;\n\
                 // lcr-analyze: allow(hash-collection):\n\
                 pub fn f(m: &HashMap<u32, u64>) -> usize { m.len() }\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    let lints = lints_for(&report, "crates/sparse/src/lib.rs");
    assert!(
        lints.contains(&("waiver-missing-reason", 3)),
        "a reason-less waiver must be flagged, got {lints:?}"
    );
    assert!(
        lints.contains(&("hash-collection", 4)),
        "a reason-less waiver must not silence the lint, got {lints:?}"
    );
}

#[test]
fn violations_inside_strings_and_test_code_are_ignored() {
    let manifest = package_manifest("fake-sparse");
    let fx = Fixture::new(
        "masked",
        &[
            ("Cargo.toml", WORKSPACE_MANIFEST),
            ("crates/sparse/Cargo.toml", &manifest),
            (
                "crates/sparse/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub const DOC: &str = \"std::thread::spawn and HashMap here\";\n\
                 #[cfg(test)]\n\
                 mod tests {\n    \
                 #[test]\n    \
                 fn timing() {\n        \
                 let _ = std::time::Instant::now();\n    \
                 }\n\
                 }\n",
            ),
        ],
    );
    let report = analyze_workspace(fx.root()).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "string contents and #[cfg(test)] code must not be linted, got {:?}",
        report.diagnostics
    );
}
