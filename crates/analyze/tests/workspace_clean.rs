//! The live-tree gate: scanning this workspace must come back clean, and
//! the committed `UNSAFE.md` inventory must match a fresh render.  This is
//! what makes `cargo test` enforce the static-analysis invariants without
//! a separate CI step.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/analyze/../.. — the workspace root this crate lives in.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    root
}

#[test]
fn live_tree_scans_clean() {
    let report = lcr_analyze::analyze_workspace(&workspace_root()).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "the tree must scan clean; violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(
        !report.unsafe_sites.is_empty(),
        "the tree has known unsafe sites; zero means the scan is broken"
    );
}

#[test]
fn unsafe_inventory_is_current() {
    let root = workspace_root();
    let report = lcr_analyze::analyze_workspace(&root).unwrap();
    let rendered = lcr_analyze::render_unsafe_md(&report);
    let committed = std::fs::read_to_string(root.join("UNSAFE.md"))
        .expect("UNSAFE.md must exist — generate with `cargo run -p lcr-analyze -- --write-unsafe-md`");
    assert_eq!(
        committed, rendered,
        "UNSAFE.md is stale — regenerate with `cargo run -p lcr-analyze -- --write-unsafe-md`"
    );
}
