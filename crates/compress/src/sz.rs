//! SZ-style prediction-based, error-bounded lossy compressor.
//!
//! This is a from-scratch re-implementation of the algorithmic core of the
//! SZ 1.4 compressor the paper uses (Di & Cappello, IPDPS'16; Tao et al.,
//! IPDPS'17) specialised to 1-D `f64` data — which is all the lossy
//! checkpointing scheme needs, because the dynamic variables of iterative
//! methods are 1-D vectors (§5.1 of the paper).
//!
//! Pipeline (compression):
//!
//! 1. **Prediction.** Each value is predicted from the *previously
//!    reconstructed* values with the better of a 1-step (Lorenzo) or 2-step
//!    linear extrapolation predictor.
//! 2. **Linear-scaling quantization.** The prediction error is quantized to
//!    an integer bin of width `2·eb`, guaranteeing `|x − x'| ≤ eb`.
//! 3. **Huffman coding** of the bin indices (they cluster tightly around the
//!    zero bin on smooth data, giving the 20–60× ratios in Table 3).
//! 4. **Unpredictable values** whose bin index would overflow the code range
//!    are stored verbatim (IEEE-754 bits) and flagged with the reserved bin 0.
//!
//! Prediction and quantization run as one fused, branch-light pass per
//! parallel block, writing into per-thread scratch buffers that persist
//! across blocks (no per-block `Vec` churn), and the entropy stage uses the
//! word-buffered bitstream and table-driven canonical Huffman codec.
//!
//! Point-wise relative bounds (`ErrorBound::PointwiseRel`) are honoured with
//! the standard SZ trick: compress `ln|x|` under an absolute bound
//! `ln(1 + eb)` with the signs and exact zeros stored in side channels;
//! value-range-relative bounds are mapped to an absolute bound
//! `eb·(max − min)`.
//!
//! ## Stream versions
//!
//! | version | layout                                                        |
//! |---------|---------------------------------------------------------------|
//! | 3       | block-split; per block `u64`-framed legacy Huffman blob + `u64` unpredictable count (decode-only) |
//! | 4       | block-split; per block v2 Huffman blob + varint unpredictable count (current) |
//!
//! Version-3 streams written by earlier releases decode bit-identically;
//! version 4 is what [`SzCompressor::compress`] emits.

use crate::bitstream::{bytes, BitReader, BitWriter};
use crate::{huffman, parblock};
use crate::{CompressError, Compressed, ErrorBound, LossyCompressor, Result};
use std::cell::RefCell;

/// Codec id stored in the stream header.
const CODEC_ID: u8 = 1;
/// Stream-format version written by the compressor.
const VERSION: u8 = 4;
/// Oldest stream version the decompressor still reads.
const MIN_VERSION: u8 = 3;

/// Half the number of quantization bins on each side of the zero bin.
/// 65536 intervals matches SZ's default `max_quant_intervals`.
const QUANT_RADIUS: i64 = 32_768;

/// Elements per independently compressed block.  The predictor restarts at
/// each block boundary, so blocks can be quantized, Huffman-coded and
/// decoded in parallel — and since every block's stream is produced
/// independently and concatenated in block order, the encoded bytes are
/// identical at any thread count.  Large enough that the per-block Huffman
/// table and the predictor warm-up cost are noise (<0.1% of a block).
const PAR_BLOCK: usize = 65_536;

thread_local! {
    /// Per-thread quantization-code scratch, reused across blocks (the
    /// worker threads of the deterministic pool persist, so each thread
    /// allocates these once).
    static QUANT_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread unpredictable-value scratch.
    static UNPRED_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Per-thread dense code histogram, kept all-zero between blocks (the
    /// Huffman builder zeroes the entries it consumed).
    static HIST_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Number of distinct quantization codes (`0` = unpredictable, then the
/// `2·QUANT_RADIUS − 1` bins shifted by `QUANT_RADIUS + 1`).
const N_CODES: usize = 2 * QUANT_RADIUS as usize + 2;

/// Rounds a scaled value to its integer grid point with the `1.5·2^52`
/// magic-constant trick (round-to-nearest, ties to even) — two additions
/// instead of a libm `round` call, and auto-vectorizable.  Exact for
/// `|v| < 2^51`; larger magnitudes produce *some* deterministic value that
/// the quantizer's range check rejects, and the decoder computes the
/// identical function, so encoder and decoder grids always agree.
#[inline]
fn grid_round(v: f64) -> f64 {
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    (v + MAGIC) - MAGIC
}

/// Largest grid magnitude the quantizer accepts as predictable.  Below
/// this bound every add/sub in the predictor is exact integer f64
/// arithmetic (all intermediates stay under 2^53), so the decoder's
/// reconstruction provably reproduces the encoder's grid value bit for
/// bit — no per-element replay check is needed and the whole quantization
/// pass is branch-light straight-line float code.
const GRID_MAX: f64 = (1u64 << 50) as f64;

/// Internal mode tag for the value transform applied before quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transform {
    /// Values compressed directly under an absolute bound.
    Identity = 0,
    /// `ln|x|` compressed under an absolute bound; signs/zeros in side
    /// channels (point-wise relative mode).
    Log = 1,
}

/// The SZ-style compressor.  Stateless and cheap to construct; the error
/// bound is supplied per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor;

impl SzCompressor {
    /// Creates a compressor.
    pub fn new() -> Self {
        SzCompressor
    }

    /// Fused prediction + linear-scaling quantization over one block,
    /// emitting bin codes into `quant`, out-of-range values into `unpred`
    /// (both cleared first) and symbol frequencies into `hist` (assumed
    /// all-zero on entry).  The predictor state starts from zero, so the
    /// block is decodable in isolation.
    ///
    /// The version-4 formulation works on the integer grid: every value is
    /// independently rounded to `r = round(x / 2eb)` and the bin codes are
    /// second differences of those integers.  Unlike the classic
    /// reconstruct-then-predict chain — which serialises one division, one
    /// libm rounding and two multiplies per element through a loop-carried
    /// FP dependency — each element's predictor inputs are independent
    /// roundings of its own *shifted value windows* (`x[i-1]`, `x[i-2]`),
    /// so the coding pass has no floating-point dependency chain and no
    /// materialised grid array: rounding a window element twice costs two
    /// vector ops, where the former grid scratch cost a full store+reload
    /// sweep of cache traffic per block.
    ///
    /// An element is coded (rather than stored verbatim) only if its
    /// window satisfies `|r| ≤ 2^50` and `|bin| < 2^15`, in which case
    /// every predictor add/sub below 2^53 is exact integer-f64 arithmetic
    /// and the decoder provably lands on the same grid point, and if the
    /// decoder's reconstruction `r · 2eb` (computed here with the same
    /// rounding) honours the bound.  NaN/∞ fail the comparisons and fall
    /// back to verbatim storage wholesale.
    /// Returns the inclusive `(min, max)` range of emitted codes (with
    /// `min > max` for the empty block), so the Huffman builder can scan
    /// only the live span of the 65 538-entry histogram.
    fn quantize_block(
        values: &[f64],
        abs_eb: f64,
        quant: &mut Vec<u32>,
        unpred: &mut Vec<f64>,
        hist: &mut [u32],
    ) -> (u32, u32) {
        let n = values.len();
        quant.clear();
        unpred.clear();
        quant.reserve(n);
        let two_eb = 2.0 * abs_eb;
        let inv = 1.0 / two_eb;

        // Coding pass (vectorizable): window codes.  The predictor inputs
        // `r1`/`r2` are the roundings of the two previous *values* (0.0
        // for the virtual elements before the block, matching the
        // order-0/1 warm-up predictors), recomputed per element from
        // shifted windows of `values` — `grid_round` is pure, so the
        // recomputed rounding is bit-identical to a stored one.  Every
        // element's code is then a pure branch-free expression of
        // `(x, r, r1, r2)` (the `if ok` compiles to a select; the
        // `f64 → u32` cast is saturating, hence defined even for the
        // not-taken lane), which the compiler turns into straight vector
        // code with no loop-carried state and no grid scratch traffic.
        let g = |x: f64| grid_round(x * inv);
        let shift = (QUANT_RADIUS + 1) as f64;
        let code_of = |x: f64, r: f64, r1: f64, r2: f64, pred: f64| -> u32 {
            let bin = r - pred;
            let ok = bin.abs() < QUANT_RADIUS as f64
                && r.abs() <= GRID_MAX
                && r1.abs() <= GRID_MAX
                && r2.abs() <= GRID_MAX
                && (x - r * two_eb).abs() <= abs_eb;
            // Code 0 is reserved for "unpredictable"; bins map to
            // 2..=2·QUANT_RADIUS.
            if ok {
                (bin + shift) as u32
            } else {
                0
            }
        };
        // Live-code range accumulators, fused into the coding pass as
        // eight independent integer lanes (u32 min/max is exact, so lane
        // order cannot change the result) — saves a full re-scan of the
        // code array.
        let mut lane_min = [u32::MAX; 8];
        let mut lane_max = [0u32; 8];
        if n >= 1 {
            let code = code_of(values[0], g(values[0]), 0.0, 0.0, 0.0);
            lane_min[0] = lane_min[0].min(code);
            lane_max[0] = lane_max[0].max(code);
            quant.push(code);
        }
        if n >= 2 {
            let r1 = g(values[0]);
            let code = code_of(values[1], g(values[1]), r1, 0.0, r1);
            lane_min[0] = lane_min[0].min(code);
            lane_max[0] = lane_max[0].max(code);
            quant.push(code);
        }
        if n >= 3 {
            // Chunk-of-8 coding with carried neighbour roundings: each
            // element is rounded exactly once per chunk and its predictor
            // inputs are the (pure, hence bit-identical) roundings of the
            // two previous elements, carried across the chunk boundary as
            // two scalars.  The 8-lane body fully unrolls; the carries are
            // value reuse, not an FP dependency chain — every `r[i]` is an
            // independent rounding of its own input.
            let mut c1 = g(values[1]);
            let mut c2 = g(values[0]);
            let mut chunks = values[2..].chunks_exact(8);
            for c in &mut chunks {
                let mut r = [0.0f64; 8];
                for i in 0..8 {
                    r[i] = g(c[i]);
                }
                let mut codes = [0u32; 8];
                for i in 0..8 {
                    let r1 = if i >= 1 { r[i - 1] } else { c1 };
                    let r2 = if i >= 2 {
                        r[i - 2]
                    } else if i == 1 {
                        c1
                    } else {
                        c2
                    };
                    codes[i] = code_of(c[i], r[i], r1, r2, 2.0 * r1 - r2);
                }
                for i in 0..8 {
                    lane_min[i] = lane_min[i].min(codes[i]);
                    lane_max[i] = lane_max[i].max(codes[i]);
                }
                quant.extend_from_slice(&codes);
                c1 = r[7];
                c2 = r[6];
            }
            for &x in chunks.remainder() {
                let r = g(x);
                let code = code_of(x, r, c1, c2, 2.0 * c1 - c2);
                lane_min[0] = lane_min[0].min(code);
                lane_max[0] = lane_max[0].max(code);
                quant.push(code);
                c2 = c1;
                c1 = r;
            }
        }

        let min_code = lane_min.into_iter().min().unwrap_or(u32::MAX);
        let max_code = lane_max.into_iter().max().unwrap_or(0);

        // Scatter pass: four interleaved sub-histograms over the live code
        // span break the store-to-load dependency that serialises runs of
        // equal codes (the common case for smooth fields, where one or two
        // bins dominate the block), then fold into the shared histogram.
        // The sub-histograms only span `[min_code, max_code]`, so the
        // scratch stays small for exactly the blocks where this pass is
        // hot.
        if min_code <= max_code {
            let base = min_code as usize;
            let span = (max_code - min_code) as usize + 1;
            let mut sub = vec![0u32; span * 4];
            let mut chunks = quant.chunks_exact(4);
            for c in &mut chunks {
                sub[(c[0] as usize - base) * 4] += 1;
                sub[(c[1] as usize - base) * 4 + 1] += 1;
                sub[(c[2] as usize - base) * 4 + 2] += 1;
                sub[(c[3] as usize - base) * 4 + 3] += 1;
            }
            for &code in chunks.remainder() {
                sub[(code as usize - base) * 4] += 1;
            }
            for (i, s) in sub.chunks_exact(4).enumerate() {
                hist[base + i] += s[0] + s[1] + s[2] + s[3];
            }
            // Verbatim collection only runs when code 0 was actually
            // emitted; fully predictable blocks skip the whole pass.
            if min_code == 0 {
                for (&code, &x) in quant.iter().zip(values) {
                    if code == 0 {
                        unpred.push(x);
                    }
                }
            }
        }
        (min_code, max_code)
    }

    /// Core absolute-error-bound compression of a pre-transformed stream.
    ///
    /// The stream is cut into [`PAR_BLOCK`]-element blocks that are
    /// predicted, quantized and Huffman-coded independently (and therefore
    /// in parallel), then concatenated in block order behind a length
    /// table:
    ///
    /// ```text
    /// [u64 nblocks][u64 len × nblocks][block bytes …]
    /// ```
    fn compress_abs(values: &[f64], abs_eb: f64, out: &mut Vec<u8>) {
        let n = values.len();
        parblock::encode_blocks(out, n.div_ceil(PAR_BLOCK), |b| {
            let start = b * PAR_BLOCK;
            let end = ((b + 1) * PAR_BLOCK).min(n);
            Self::encode_block_abs(&values[start..end], abs_eb)
        });
    }

    /// Quantization + entropy coding of one block in the version-4 layout:
    ///
    /// ```text
    /// [huffman v2 blob][varint n_unpred][f64 × n_unpred]
    /// ```
    fn encode_block_abs(values: &[f64], abs_eb: f64) -> Vec<u8> {
        QUANT_SCRATCH.with(|q| {
            UNPRED_SCRATCH.with(|u| {
                HIST_SCRATCH.with(|h| {
                    let quant = &mut q.borrow_mut();
                    let unpred = &mut u.borrow_mut();
                    let hist = &mut h.borrow_mut();
                    if hist.is_empty() {
                        hist.resize(N_CODES, 0);
                    }
                    let (lo, hi) = Self::quantize_block(values, abs_eb, quant, unpred, hist);
                    let mut out = Vec::with_capacity(values.len() / 2 + 32);
                    // The Huffman builder consumes the histogram and
                    // zeroes the entries it used, keeping the scratch
                    // all-zero for the next block; the live-code range
                    // from quantization confines its scan to the
                    // occupied span of the 65 538-entry table.
                    huffman::encode_block_from_hist_range(quant, hist, lo, hi, &mut out);
                    bytes::put_varint(&mut out, unpred.len() as u64);
                    for v in unpred.iter() {
                        bytes::put_f64(&mut out, *v);
                    }
                    out
                })
            })
        })
    }

    /// Inverse of [`SzCompressor::compress_abs`]: reads the block length
    /// table, then decodes the independent blocks in parallel and
    /// concatenates them in block order.  `version` selects the per-block
    /// layout (3 = legacy, 4 = current).
    fn decompress_abs(
        buf: &[u8],
        pos: &mut usize,
        n: usize,
        abs_eb: f64,
        version: u8,
    ) -> Result<Vec<f64>> {
        parblock::decode_blocks(buf, pos, n.div_ceil(PAR_BLOCK), n, "SZ", |b, block| {
            let block_n = (((b + 1) * PAR_BLOCK).min(n)) - b * PAR_BLOCK;
            Self::decode_block_abs(block, block_n, abs_eb, version)
        })
    }

    /// Inverse of [`SzCompressor::encode_block_abs`] (and of the legacy
    /// version-3 block encoder).
    fn decode_block_abs(block: &[u8], n: usize, abs_eb: f64, version: u8) -> Result<Vec<f64>> {
        QUANT_SCRATCH.with(|q| {
            let quant = &mut q.borrow_mut();
            let pos = &mut 0usize;
            let n_unpred = if version >= 4 {
                huffman::decode_block_into(block, pos, quant)?;
                bytes::get_varint(block, pos)? as usize
            } else {
                // v3 framed the Huffman blob with a redundant byte length.
                let huff_len = bytes::get_u64(block, pos)? as usize;
                let huff_slice = bytes::get_slice(block, pos, huff_len)?;
                let mut hpos = 0usize;
                huffman::decode_block_legacy_into(huff_slice, &mut hpos, quant)?;
                bytes::get_u64(block, pos)? as usize
            };
            if quant.len() != n {
                return Err(CompressError::Corrupt(format!(
                    "expected {n} quantization codes, found {}",
                    quant.len()
                )));
            }
            // The unpredictable values are read straight off the stream
            // slice; the length pre-check keeps corrupt counts from
            // over-allocating or wrapping.
            let unpred_len = n_unpred
                .checked_mul(8)
                .ok_or_else(|| CompressError::Corrupt("unpredictable count overflow".into()))?;
            let unpred_bytes = bytes::get_slice(block, pos, unpred_len)?;
            let mut unpred_iter = unpred_bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")));

            let two_eb = 2.0 * abs_eb;
            let mut out = Vec::with_capacity(n);
            if version >= 4 {
                // Grid-space reconstruction mirroring the v4 quantizer.
                let inv = 1.0 / two_eb;
                let mut rp = 0.0f64;
                let mut rp2 = 0.0f64;
                for (i, &code) in quant.iter().enumerate() {
                    let pred = if i >= 2 {
                        2.0 * rp - rp2
                    } else if i == 1 {
                        rp
                    } else {
                        0.0
                    };
                    rp2 = rp;
                    let value = if code == 0 {
                        let x = unpred_iter.next().ok_or_else(|| {
                            CompressError::Corrupt("missing unpredictable value".into())
                        })?;
                        rp = grid_round(x * inv);
                        x
                    } else {
                        let bin = (i64::from(code) - 1 - QUANT_RADIUS) as f64;
                        let r = pred + bin;
                        rp = r;
                        r * two_eb
                    };
                    out.push(value);
                }
            } else {
                // Legacy v3 reconstruct-then-predict chain, kept
                // bit-identical to the decoder that shipped with v3.
                let mut prev = 0.0f64;
                let mut prev2 = 0.0f64;
                for (i, &code) in quant.iter().enumerate() {
                    let value = if code == 0 {
                        unpred_iter.next().ok_or_else(|| {
                            CompressError::Corrupt("missing unpredictable value".into())
                        })?
                    } else {
                        let bin = (i64::from(code) - 1 - QUANT_RADIUS) as f64;
                        let pred = if i >= 2 {
                            2.0 * prev - prev2
                        } else if i == 1 {
                            prev
                        } else {
                            0.0
                        };
                        pred + bin * two_eb
                    };
                    prev2 = prev;
                    prev = value;
                    out.push(value);
                }
            }
            Ok(out)
        })
    }

    /// Shared body of [`LossyCompressor::compress`] /
    /// [`LossyCompressor::compress_into`]: appends a complete stream to
    /// `out`.
    fn compress_to(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<()> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }

        out.reserve(data.len() / 2 + 64);
        out.push(CODEC_ID);
        out.push(VERSION);
        bytes::put_u64(out, data.len() as u64);

        match bound {
            ErrorBound::Abs(abs) => {
                out.push(Transform::Identity as u8);
                bytes::put_f64(out, abs);
                Self::compress_abs(data, abs, out);
            }
            ErrorBound::ValueRangeRel(rel) => {
                let (min, max) = min_max(data);
                let range = (max - min).abs();
                // Degenerate constant data: any positive bound works.
                let abs = if range > 0.0 {
                    rel * range
                } else {
                    rel.max(f64::MIN_POSITIVE)
                };
                out.push(Transform::Identity as u8);
                bytes::put_f64(out, abs);
                Self::compress_abs(data, abs, out);
            }
            ErrorBound::PointwiseRel(rel) => {
                out.push(Transform::Log as u8);
                // Bound in log space guaranteeing |x'/x - 1| <= rel:
                // use ln(1+rel) and note exp(-d) >= 1-rel for d = ln(1+rel).
                let log_eb = rel.ln_1p();
                if !(log_eb.is_finite() && log_eb > 0.0) {
                    return Err(CompressError::InvalidBound(rel));
                }
                bytes::put_f64(out, rel);

                // Sign bits + zero flags side channel, then log magnitudes.
                let mut signs = BitWriter::with_capacity(data.len() / 8 + 1);
                let mut zeros = BitWriter::with_capacity(data.len() / 8 + 1);
                let mut logs: Vec<f64> = Vec::with_capacity(data.len());
                for &x in data {
                    zeros.write_bit(x == 0.0);
                    signs.write_bit(x.is_sign_negative());
                    if x != 0.0 {
                        logs.push(x.abs().ln());
                    }
                }
                let zero_bytes = zeros.into_bytes();
                let sign_bytes = signs.into_bytes();
                bytes::put_u64(out, zero_bytes.len() as u64);
                out.extend_from_slice(&zero_bytes);
                bytes::put_u64(out, sign_bytes.len() as u64);
                out.extend_from_slice(&sign_bytes);
                bytes::put_u64(out, logs.len() as u64);
                Self::compress_abs(&logs, log_eb, out);
            }
        }
        Ok(())
    }
}

impl LossyCompressor for SzCompressor {
    fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let mut out = Vec::new();
        self.compress_to(data, bound, &mut out)?;
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn compress_into(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<usize> {
        self.compress_to(data, bound, out)?;
        Ok(data.len())
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let codec = bytes::get_slice(buf, &mut pos, 1)?[0];
        if codec != CODEC_ID {
            return Err(CompressError::WrongCodec {
                found: codec,
                expected: CODEC_ID,
            });
        }
        let version = bytes::get_slice(buf, &mut pos, 1)?[0];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(CompressError::Corrupt(format!(
                "unsupported SZ stream version {version}"
            )));
        }
        let n = bytes::get_u64(buf, &mut pos)? as usize;
        if n != compressed.n_elements {
            return Err(CompressError::Corrupt(format!(
                "element count mismatch: header {n}, metadata {}",
                compressed.n_elements
            )));
        }
        let transform = bytes::get_slice(buf, &mut pos, 1)?[0];
        let eb = bytes::get_f64(buf, &mut pos)?;

        match transform {
            t if t == Transform::Identity as u8 => {
                Self::decompress_abs(buf, &mut pos, n, eb, version)
            }
            t if t == Transform::Log as u8 => {
                // The side channels are decoded straight from the borrowed
                // stream slices — no intermediate copies.
                let zero_len = bytes::get_u64(buf, &mut pos)? as usize;
                let zero_bytes = bytes::get_slice(buf, &mut pos, zero_len)?;
                let sign_len = bytes::get_u64(buf, &mut pos)? as usize;
                let sign_bytes = bytes::get_slice(buf, &mut pos, sign_len)?;
                let n_logs = bytes::get_u64(buf, &mut pos)? as usize;
                let log_eb = eb.ln_1p();
                let logs = Self::decompress_abs(buf, &mut pos, n_logs, log_eb, version)?;

                let mut zero_reader = BitReader::new(zero_bytes);
                let mut sign_reader = BitReader::new(sign_bytes);
                let mut log_iter = logs.into_iter();
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let is_zero = zero_reader.read_bit()?;
                    let is_neg = sign_reader.read_bit()?;
                    if is_zero {
                        out.push(if is_neg { -0.0 } else { 0.0 });
                    } else {
                        let mag = log_iter
                            .next()
                            .ok_or_else(|| {
                                CompressError::Corrupt("missing log magnitude".into())
                            })?
                            .exp();
                        out.push(if is_neg { -mag } else { mag });
                    }
                }
                Ok(out)
            }
            other => Err(CompressError::Corrupt(format!(
                "unknown transform tag {other}"
            ))),
        }
    }

    fn name(&self) -> &'static str {
        "sz"
    }
}

/// Legacy stream writers kept so the backwards-compatibility tests can
/// fabricate version-3 streams exactly as earlier releases wrote them.
#[doc(hidden)]
pub mod legacy {
    use super::*;

    /// The v3 reconstruct-then-predict quantizer, byte-identical to the
    /// encoder that shipped with stream version 3.
    fn quantize_block_v3(values: &[f64], abs_eb: f64, quant: &mut Vec<u32>, unpred: &mut Vec<f64>) {
        let two_eb = 2.0 * abs_eb;
        let mut prev = 0.0f64;
        let mut prev2 = 0.0f64;
        for (i, &x) in values.iter().enumerate() {
            let pred = match i {
                0 => 0.0,
                1 => prev,
                _ => 2.0 * prev - prev2,
            };
            let diff = x - pred;
            let bin = (diff / two_eb).round();
            let reconstructed = pred + bin * two_eb;
            let in_range = bin.abs() < (QUANT_RADIUS as f64);
            let accurate = (x - reconstructed).abs() <= abs_eb;
            if in_range && accurate {
                quant.push((bin as i64 + QUANT_RADIUS) as u32 + 1);
                prev2 = prev;
                prev = reconstructed;
            } else {
                quant.push(0);
                unpred.push(x);
                prev2 = prev;
                prev = x;
            }
        }
    }

    /// Version-3 equivalent of [`SzCompressor::encode_block_abs`].
    fn encode_block_abs_v3(values: &[f64], abs_eb: f64) -> Vec<u8> {
        let mut quant = Vec::new();
        let mut unpred = Vec::new();
        quantize_block_v3(values, abs_eb, &mut quant, &mut unpred);
        let mut out = Vec::with_capacity(values.len() / 2 + 32);
        let huff = huffman::encode_block_legacy(&quant);
        bytes::put_u64(&mut out, huff.len() as u64);
        out.extend_from_slice(&huff);
        bytes::put_u64(&mut out, unpred.len() as u64);
        for v in &unpred {
            bytes::put_f64(&mut out, *v);
        }
        out
    }

    fn compress_abs_v3(values: &[f64], abs_eb: f64, out: &mut Vec<u8>) {
        let n = values.len();
        parblock::encode_blocks(out, n.div_ceil(PAR_BLOCK), |b| {
            let start = b * PAR_BLOCK;
            let end = ((b + 1) * PAR_BLOCK).min(n);
            encode_block_abs_v3(&values[start..end], abs_eb)
        });
    }

    /// Compresses `data` into a version-3 stream, byte-identical to what
    /// the previous release's `SzCompressor::compress` produced.
    pub fn compress_v3(data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }
        let mut out = Vec::new();
        out.push(CODEC_ID);
        out.push(3u8);
        bytes::put_u64(&mut out, data.len() as u64);
        match bound {
            ErrorBound::Abs(abs) => {
                out.push(Transform::Identity as u8);
                bytes::put_f64(&mut out, abs);
                compress_abs_v3(data, abs, &mut out);
            }
            ErrorBound::ValueRangeRel(rel) => {
                let (min, max) = min_max(data);
                let range = (max - min).abs();
                let abs = if range > 0.0 {
                    rel * range
                } else {
                    rel.max(f64::MIN_POSITIVE)
                };
                out.push(Transform::Identity as u8);
                bytes::put_f64(&mut out, abs);
                compress_abs_v3(data, abs, &mut out);
            }
            ErrorBound::PointwiseRel(rel) => {
                out.push(Transform::Log as u8);
                let log_eb = rel.ln_1p();
                if !(log_eb.is_finite() && log_eb > 0.0) {
                    return Err(CompressError::InvalidBound(rel));
                }
                bytes::put_f64(&mut out, rel);
                let mut signs = BitWriter::new();
                let mut zeros = BitWriter::new();
                let mut logs: Vec<f64> = Vec::with_capacity(data.len());
                for &x in data {
                    zeros.write_bit(x == 0.0);
                    signs.write_bit(x.is_sign_negative());
                    if x != 0.0 {
                        logs.push(x.abs().ln());
                    }
                }
                let zero_bytes = zeros.into_bytes();
                let sign_bytes = signs.into_bytes();
                bytes::put_u64(&mut out, zero_bytes.len() as u64);
                out.extend_from_slice(&zero_bytes);
                bytes::put_u64(&mut out, sign_bytes.len() as u64);
                out.extend_from_slice(&sign_bytes);
                bytes::put_u64(&mut out, logs.len() as u64);
                compress_abs_v3(&logs, log_eb, &mut out);
            }
        }
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }
}

/// 8-lane min/max over one slice.  A single `(min, max)` accumulator pair
/// serialises the whole scan behind the 3–4-cycle latency of `minsd`/
/// `maxsd`; eight independent lane accumulators let the compiler issue
/// packed compares at full width instead.  `f64::min`/`f64::max` are
/// commutative and associative over any multiset (NaNs are absorbed, and a
/// `-0.0`-vs-`+0.0` tie is numerically indistinguishable downstream where
/// only `max − min` is used), so the lane-order reduction returns the same
/// range as a sequential fold.
fn min_max_lanes(data: &[f64]) -> (f64, f64) {
    let mut mn = [f64::INFINITY; 8];
    let mut mx = [f64::NEG_INFINITY; 8];
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        for i in 0..8 {
            mn[i] = mn[i].min(c[i]);
            mx[i] = mx[i].max(c[i]);
        }
    }
    for &v in chunks.remainder() {
        mn[0] = mn[0].min(v);
        mx[0] = mx[0].max(v);
    }
    (
        mn.iter().copied().fold(f64::INFINITY, f64::min),
        mx.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    )
}

fn min_max(data: &[f64]) -> (f64, f64) {
    if data.len() >= PAR_BLOCK {
        // Pool-parallel above one block so the range pre-pass of the
        // value-range-relative mode doesn't serialise the compressor
        // (lane-parallel min/max per chunk, combined in chunk order —
        // deterministic at any thread count).
        rayon::run_chunks(data.len(), rayon::DEFAULT_MIN_CHUNK, |s, e| {
            min_max_lanes(&data[s..e])
        })
        .into_iter()
        .fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(amn, amx), (bmn, bmx)| (amn.min(bmn), amx.max(bmx)),
        )
    } else {
        min_max_lanes(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * t).sin() + 0.3 * (11.0 * t).cos() + 2.0
            })
            .collect()
    }

    fn check_bound(data: &[f64], restored: &[f64], bound: ErrorBound) {
        assert_eq!(data.len(), restored.len());
        let range = {
            let (mn, mx) = min_max(data);
            mx - mn
        };
        for (i, (&a, &b)) in data.iter().zip(restored.iter()).enumerate() {
            let allowed = bound.allowed_abs_error(a, range) * (1.0 + 1e-12) + 1e-300;
            assert!(
                (a - b).abs() <= allowed,
                "element {i}: |{a} - {b}| = {} > {allowed}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn abs_bound_honoured_on_smooth_data() {
        let data = smooth_signal(10_000);
        let sz = SzCompressor::new();
        for eb in [1e-2, 1e-4, 1e-6, 1e-10] {
            let bound = ErrorBound::Abs(eb);
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
        }
    }

    #[test]
    fn value_range_rel_bound_honoured() {
        let data = smooth_signal(5_000);
        let sz = SzCompressor::new();
        let bound = ErrorBound::ValueRangeRel(1e-4);
        let c = sz.compress(&data, bound).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, bound);
    }

    #[test]
    fn pointwise_rel_bound_honoured() {
        // Mix of magnitudes, zeros and negatives.
        let mut data = smooth_signal(3_000);
        for (i, v) in data.iter_mut().enumerate() {
            *v = (*v - 2.0) * 10f64.powi((i % 7) as i32 - 3);
            if i % 97 == 0 {
                *v = 0.0;
            }
            if i % 3 == 0 {
                *v = -*v;
            }
        }
        let sz = SzCompressor::new();
        for eb in [1e-2, 1e-4, 1e-6] {
            let bound = ErrorBound::PointwiseRel(eb);
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
        }
    }

    #[test]
    fn smooth_data_compresses_much_better_than_lossless() {
        let data = smooth_signal(100_000);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::ValueRangeRel(1e-4)).unwrap();
        // The paper reports 20–60x on solver vectors; smooth analytic data
        // should comfortably exceed 10x.
        assert!(
            c.ratio() > 10.0,
            "expected ratio > 10, got {:.2}",
            c.ratio()
        );
    }

    #[test]
    fn random_data_still_respects_bound() {
        // Worst case for prediction: white noise.
        let mut data = vec![0.0f64; 4096];
        let mut state = 0x12345678u64;
        for v in data.iter_mut() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            *v = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
                - 0.5;
        }
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-3);
        let c = sz.compress(&data, bound).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, bound);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let sz = SzCompressor::new();
        for data in [vec![], vec![1.5], vec![1.5, -2.5]] {
            let c = sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap();
            let r = sz.decompress(&c).unwrap();
            assert_eq!(r.len(), data.len());
            check_bound(&data, &r, ErrorBound::Abs(1e-6));
        }
    }

    #[test]
    fn constant_data() {
        let data = vec![3.25f64; 1000];
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(1e-8),
            ErrorBound::ValueRangeRel(1e-4),
            ErrorBound::PointwiseRel(1e-4),
        ] {
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
            assert!(c.ratio() > 10.0, "constant data should compress massively");
        }
    }

    #[test]
    fn compress_into_appends_identical_stream() {
        let data = smooth_signal(4_000);
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let c = sz.compress(&data, bound).unwrap();

        let mut buf = vec![0xEE, 0xFF];
        let n = sz.compress_into(&data, bound, &mut buf).unwrap();
        assert_eq!(n, data.len());
        assert_eq!(&buf[..2], &[0xEE, 0xFF]);
        assert_eq!(&buf[2..], c.bytes.as_slice());
    }

    #[test]
    fn v3_streams_still_decode() {
        let mut data = smooth_signal(3_000);
        for (i, v) in data.iter_mut().enumerate() {
            if i % 113 == 0 {
                *v = 0.0;
            }
            if i % 7 == 0 {
                *v = -*v;
            }
        }
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(1e-6),
            ErrorBound::ValueRangeRel(1e-5),
            ErrorBound::PointwiseRel(1e-4),
        ] {
            let v3 = legacy::compress_v3(&data, bound).unwrap();
            assert_eq!(v3.bytes[1], 3, "legacy writer must emit version 3");
            let from_v3 = sz.decompress(&v3).unwrap();
            check_bound(&data, &from_v3, bound);

            // The current writer emits v4, which honours the same bound
            // (the v4 grid-space reconstruction is a different — equally
            // valid — point inside the bound, so only the contract is
            // compared, not the bits).
            let v4 = sz.compress(&data, bound).unwrap();
            assert_eq!(v4.bytes[1], 4);
            let from_v4 = sz.decompress(&v4).unwrap();
            check_bound(&data, &from_v4, bound);
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let sz = SzCompressor::new();
        let data = [1.0, 2.0];
        assert!(sz.compress(&data, ErrorBound::Abs(0.0)).is_err());
        assert!(sz.compress(&data, ErrorBound::Abs(-1.0)).is_err());
        assert!(sz.compress(&data, ErrorBound::Abs(f64::NAN)).is_err());
        assert!(sz.compress(&data, ErrorBound::PointwiseRel(0.0)).is_err());
    }

    #[test]
    fn corrupt_streams_detected() {
        let sz = SzCompressor::new();
        let data = smooth_signal(256);
        let c = sz.compress(&data, ErrorBound::Abs(1e-5)).unwrap();

        // Wrong codec id.
        let mut wrong = c.clone();
        wrong.bytes[0] = 99;
        assert!(matches!(
            sz.decompress(&wrong),
            Err(CompressError::WrongCodec { .. })
        ));

        // Unknown version.
        let mut vers = c.clone();
        vers.bytes[1] = 99;
        assert!(sz.decompress(&vers).is_err());

        // Truncation.
        let mut trunc = c.clone();
        trunc.bytes.truncate(c.bytes.len() / 2);
        assert!(sz.decompress(&trunc).is_err());

        // Element-count mismatch.
        let mut mism = c;
        mism.n_elements += 1;
        assert!(sz.decompress(&mism).is_err());
    }

    #[test]
    fn name_is_sz() {
        assert_eq!(SzCompressor::new().name(), "sz");
    }
}
