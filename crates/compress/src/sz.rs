//! SZ-style prediction-based, error-bounded lossy compressor.
//!
//! This is a from-scratch re-implementation of the algorithmic core of the
//! SZ 1.4 compressor the paper uses (Di & Cappello, IPDPS'16; Tao et al.,
//! IPDPS'17) specialised to 1-D `f64` data — which is all the lossy
//! checkpointing scheme needs, because the dynamic variables of iterative
//! methods are 1-D vectors (§5.1 of the paper).
//!
//! Pipeline (compression):
//!
//! 1. **Prediction.** Each value is predicted from the *previously
//!    reconstructed* values with the better of a 1-step (Lorenzo) or 2-step
//!    linear extrapolation predictor.
//! 2. **Linear-scaling quantization.** The prediction error is quantized to
//!    an integer bin of width `2·eb`, guaranteeing `|x − x'| ≤ eb`.
//! 3. **Huffman coding** of the bin indices (they cluster tightly around the
//!    zero bin on smooth data, giving the 20–60× ratios in Table 3).
//! 4. **Unpredictable values** whose bin index would overflow the code range
//!    are stored verbatim (IEEE-754 bits) and flagged with the reserved bin 0.
//!
//! Point-wise relative bounds (`ErrorBound::PointwiseRel`) are honoured with
//! the standard SZ trick: compress `ln|x|` under an absolute bound
//! `ln(1 + eb)` with the signs and exact zeros stored in side channels;
//! value-range-relative bounds are mapped to an absolute bound
//! `eb·(max − min)`.

use crate::bitstream::{bytes, BitReader, BitWriter};
use crate::{huffman, parblock};
use crate::{CompressError, Compressed, ErrorBound, LossyCompressor, Result};
use rayon::prelude::*;

/// Codec id stored in the stream header.
const CODEC_ID: u8 = 1;
/// Stream-format version.  Version 3 introduced the block-split layout that
/// makes prediction/quantization and decompression block-parallel.
const VERSION: u8 = 3;

/// Half the number of quantization bins on each side of the zero bin.
/// 65536 intervals matches SZ's default `max_quant_intervals`.
const QUANT_RADIUS: i64 = 32_768;

/// Elements per independently compressed block.  The predictor restarts at
/// each block boundary, so blocks can be quantized, Huffman-coded and
/// decoded in parallel — and since every block's stream is produced
/// independently and concatenated in block order, the encoded bytes are
/// identical at any thread count.  Large enough that the per-block Huffman
/// table and the predictor warm-up cost are noise (<0.1% of a block).
const PAR_BLOCK: usize = 65_536;

/// Internal mode tag for the value transform applied before quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transform {
    /// Values compressed directly under an absolute bound.
    Identity = 0,
    /// `ln|x|` compressed under an absolute bound; signs/zeros in side
    /// channels (point-wise relative mode).
    Log = 1,
}

/// The SZ-style compressor.  Stateless and cheap to construct; the error
/// bound is supplied per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor;

impl SzCompressor {
    /// Creates a compressor.
    pub fn new() -> Self {
        SzCompressor
    }

    /// Core absolute-error-bound compression of a pre-transformed stream.
    ///
    /// The stream is cut into [`PAR_BLOCK`]-element blocks that are
    /// predicted, quantized and Huffman-coded independently (and therefore
    /// in parallel), then concatenated in block order behind a length
    /// table:
    ///
    /// ```text
    /// [u64 nblocks][u64 len × nblocks][block bytes …]
    /// ```
    fn compress_abs(values: &[f64], abs_eb: f64, out: &mut Vec<u8>) {
        let n = values.len();
        parblock::encode_blocks(out, n.div_ceil(PAR_BLOCK), |b| {
            let start = b * PAR_BLOCK;
            let end = ((b + 1) * PAR_BLOCK).min(n);
            Self::encode_block_abs(&values[start..end], abs_eb)
        });
    }

    /// Prediction + linear-scaling quantization + Huffman coding of one
    /// block.  The predictor state starts from zero, so the block is
    /// decodable in isolation.
    fn encode_block_abs(values: &[f64], abs_eb: f64) -> Vec<u8> {
        let n = values.len();
        let two_eb = 2.0 * abs_eb;
        let mut out = Vec::with_capacity(n / 2 + 32);
        let mut quant_codes: Vec<u32> = Vec::with_capacity(n);
        let mut unpredictable: Vec<f64> = Vec::new();
        // Reconstructed values drive prediction so the decompressor can
        // mirror the exact same state.
        let mut recon_prev = 0.0f64;
        let mut recon_prev2 = 0.0f64;
        for (i, &x) in values.iter().enumerate() {
            // Choose predictor: order-1 Lorenzo (previous value) for i == 1,
            // 2-point linear extrapolation beyond.
            let pred = match i {
                0 => 0.0,
                1 => recon_prev,
                _ => 2.0 * recon_prev - recon_prev2,
            };
            let diff = x - pred;
            let bin = (diff / two_eb).round();
            let reconstructed = pred + bin * two_eb;
            // The quantization guarantees |x - reconstructed| <= eb except
            // when floating-point cancellation in `pred + bin*two_eb`
            // misbehaves for huge bins; treat those and out-of-range bins as
            // unpredictable.
            let in_range = bin.abs() < QUANT_RADIUS as f64;
            let accurate = (x - reconstructed).abs() <= abs_eb;
            if in_range && accurate {
                // Reserve code 0 for "unpredictable".
                let code = (bin as i64 + QUANT_RADIUS) as u32 + 1;
                quant_codes.push(code);
                recon_prev2 = recon_prev;
                recon_prev = reconstructed;
            } else {
                quant_codes.push(0);
                unpredictable.push(x);
                recon_prev2 = recon_prev;
                recon_prev = x;
            }
        }

        // Block layout: [huffman block][n_unpred u64][unpredictable f64...]
        let huff = huffman::encode_block(&quant_codes);
        bytes::put_u64(&mut out, huff.len() as u64);
        out.extend_from_slice(&huff);
        bytes::put_u64(&mut out, unpredictable.len() as u64);
        for v in &unpredictable {
            bytes::put_f64(&mut out, *v);
        }
        out
    }

    /// Inverse of [`SzCompressor::compress_abs`]: reads the block length
    /// table, then decodes the independent blocks in parallel and
    /// concatenates them in block order.
    fn decompress_abs(buf: &[u8], pos: &mut usize, n: usize, abs_eb: f64) -> Result<Vec<f64>> {
        parblock::decode_blocks(buf, pos, n.div_ceil(PAR_BLOCK), n, "SZ", |b, block| {
            let block_n = (((b + 1) * PAR_BLOCK).min(n)) - b * PAR_BLOCK;
            Self::decode_block_abs(block, block_n, abs_eb)
        })
    }

    /// Inverse of [`SzCompressor::encode_block_abs`].
    fn decode_block_abs(block: &[u8], n: usize, abs_eb: f64) -> Result<Vec<f64>> {
        let pos = &mut 0usize;
        let buf = block;
        let two_eb = 2.0 * abs_eb;
        let huff_len = bytes::get_u64(buf, pos)? as usize;
        let huff_slice = bytes::get_slice(buf, pos, huff_len)?;
        let mut hpos = 0usize;
        let quant_codes = huffman::decode_block(huff_slice, &mut hpos)?;
        if quant_codes.len() != n {
            return Err(CompressError::Corrupt(format!(
                "expected {n} quantization codes, found {}",
                quant_codes.len()
            )));
        }
        let n_unpred = bytes::get_u64(buf, pos)? as usize;
        let mut unpredictable = Vec::with_capacity(n_unpred);
        for _ in 0..n_unpred {
            unpredictable.push(bytes::get_f64(buf, pos)?);
        }

        let mut out = Vec::with_capacity(n);
        let mut recon_prev = 0.0f64;
        let mut recon_prev2 = 0.0f64;
        let mut unpred_iter = unpredictable.into_iter();
        for (i, &code) in quant_codes.iter().enumerate() {
            let value = if code == 0 {
                unpred_iter.next().ok_or_else(|| {
                    CompressError::Corrupt("missing unpredictable value".into())
                })?
            } else {
                let bin = (code as i64 - 1 - QUANT_RADIUS) as f64;
                let pred = match i {
                    0 => 0.0,
                    1 => recon_prev,
                    _ => 2.0 * recon_prev - recon_prev2,
                };
                pred + bin * two_eb
            };
            recon_prev2 = recon_prev;
            recon_prev = value;
            out.push(value);
        }
        Ok(out)
    }
}

impl LossyCompressor for SzCompressor {
    fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }

        let mut out = Vec::with_capacity(data.len() / 2 + 64);
        out.push(CODEC_ID);
        out.push(VERSION);
        bytes::put_u64(&mut out, data.len() as u64);

        match bound {
            ErrorBound::Abs(abs) => {
                out.push(Transform::Identity as u8);
                bytes::put_f64(&mut out, abs);
                Self::compress_abs(data, abs, &mut out);
            }
            ErrorBound::ValueRangeRel(rel) => {
                let (min, max) = min_max(data);
                let range = (max - min).abs();
                // Degenerate constant data: any positive bound works.
                let abs = if range > 0.0 { rel * range } else { rel.max(f64::MIN_POSITIVE) };
                out.push(Transform::Identity as u8);
                bytes::put_f64(&mut out, abs);
                Self::compress_abs(data, abs, &mut out);
            }
            ErrorBound::PointwiseRel(rel) => {
                out.push(Transform::Log as u8);
                // Bound in log space guaranteeing |x'/x - 1| <= rel:
                // use ln(1+rel) and note exp(-d) >= 1-rel for d = ln(1+rel).
                let log_eb = rel.ln_1p();
                if !(log_eb.is_finite() && log_eb > 0.0) {
                    return Err(CompressError::InvalidBound(rel));
                }
                bytes::put_f64(&mut out, rel);

                // Sign bits + zero flags side channel, then log magnitudes.
                let mut signs = BitWriter::new();
                let mut zeros = BitWriter::new();
                let mut logs: Vec<f64> = Vec::with_capacity(data.len());
                for &x in data {
                    zeros.write_bit(x == 0.0);
                    signs.write_bit(x.is_sign_negative());
                    if x != 0.0 {
                        logs.push(x.abs().ln());
                    }
                }
                let zero_bytes = zeros.into_bytes();
                let sign_bytes = signs.into_bytes();
                bytes::put_u64(&mut out, zero_bytes.len() as u64);
                out.extend_from_slice(&zero_bytes);
                bytes::put_u64(&mut out, sign_bytes.len() as u64);
                out.extend_from_slice(&sign_bytes);
                bytes::put_u64(&mut out, logs.len() as u64);
                Self::compress_abs(&logs, log_eb, &mut out);
            }
        }

        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let codec = *bytes::get_slice(buf, &mut pos, 1)?.first().unwrap();
        if codec != CODEC_ID {
            return Err(CompressError::WrongCodec {
                found: codec,
                expected: CODEC_ID,
            });
        }
        let version = *bytes::get_slice(buf, &mut pos, 1)?.first().unwrap();
        if version != VERSION {
            return Err(CompressError::Corrupt(format!(
                "unsupported SZ stream version {version}"
            )));
        }
        let n = bytes::get_u64(buf, &mut pos)? as usize;
        if n != compressed.n_elements {
            return Err(CompressError::Corrupt(format!(
                "element count mismatch: header {n}, metadata {}",
                compressed.n_elements
            )));
        }
        let transform = *bytes::get_slice(buf, &mut pos, 1)?.first().unwrap();
        let eb = bytes::get_f64(buf, &mut pos)?;

        match transform {
            t if t == Transform::Identity as u8 => {
                Self::decompress_abs(buf, &mut pos, n, eb)
            }
            t if t == Transform::Log as u8 => {
                // The side channels are decoded straight from the borrowed
                // stream slices — no intermediate copies.
                let zero_len = bytes::get_u64(buf, &mut pos)? as usize;
                let zero_bytes = bytes::get_slice(buf, &mut pos, zero_len)?;
                let sign_len = bytes::get_u64(buf, &mut pos)? as usize;
                let sign_bytes = bytes::get_slice(buf, &mut pos, sign_len)?;
                let n_logs = bytes::get_u64(buf, &mut pos)? as usize;
                let log_eb = eb.ln_1p();
                let logs = Self::decompress_abs(buf, &mut pos, n_logs, log_eb)?;

                let mut zero_reader = BitReader::new(zero_bytes);
                let mut sign_reader = BitReader::new(sign_bytes);
                let mut log_iter = logs.into_iter();
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let is_zero = zero_reader.read_bit()?;
                    let is_neg = sign_reader.read_bit()?;
                    if is_zero {
                        out.push(if is_neg { -0.0 } else { 0.0 });
                    } else {
                        let mag = log_iter
                            .next()
                            .ok_or_else(|| {
                                CompressError::Corrupt("missing log magnitude".into())
                            })?
                            .exp();
                        out.push(if is_neg { -mag } else { mag });
                    }
                }
                Ok(out)
            }
            other => Err(CompressError::Corrupt(format!(
                "unknown transform tag {other}"
            ))),
        }
    }

    fn name(&self) -> &'static str {
        "sz"
    }
}

fn min_max(data: &[f64]) -> (f64, f64) {
    if data.len() >= PAR_BLOCK {
        // Pool-parallel above one block so the range pre-pass of the
        // value-range-relative mode doesn't serialise the compressor
        // (min/max per chunk, combined in chunk order — deterministic).
        data.par_iter()
            .fold(
                || (f64::INFINITY, f64::NEG_INFINITY),
                |(mn, mx), &v| (mn.min(v), mx.max(v)),
            )
            .reduce(
                || (f64::INFINITY, f64::NEG_INFINITY),
                |(amn, amx), (bmn, bmx)| (amn.min(bmn), amx.max(bmx)),
            )
    } else {
        data.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(mn, mx), &v| {
            (mn.min(v), mx.max(v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * t).sin() + 0.3 * (11.0 * t).cos() + 2.0
            })
            .collect()
    }

    fn check_bound(data: &[f64], restored: &[f64], bound: ErrorBound) {
        assert_eq!(data.len(), restored.len());
        let range = {
            let (mn, mx) = min_max(data);
            mx - mn
        };
        for (i, (&a, &b)) in data.iter().zip(restored.iter()).enumerate() {
            let allowed = bound.allowed_abs_error(a, range) * (1.0 + 1e-12) + 1e-300;
            assert!(
                (a - b).abs() <= allowed,
                "element {i}: |{a} - {b}| = {} > {allowed}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn abs_bound_honoured_on_smooth_data() {
        let data = smooth_signal(10_000);
        let sz = SzCompressor::new();
        for eb in [1e-2, 1e-4, 1e-6, 1e-10] {
            let bound = ErrorBound::Abs(eb);
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
        }
    }

    #[test]
    fn value_range_rel_bound_honoured() {
        let data = smooth_signal(5_000);
        let sz = SzCompressor::new();
        let bound = ErrorBound::ValueRangeRel(1e-4);
        let c = sz.compress(&data, bound).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, bound);
    }

    #[test]
    fn pointwise_rel_bound_honoured() {
        // Mix of magnitudes, zeros and negatives.
        let mut data = smooth_signal(3_000);
        for (i, v) in data.iter_mut().enumerate() {
            *v = (*v - 2.0) * 10f64.powi((i % 7) as i32 - 3);
            if i % 97 == 0 {
                *v = 0.0;
            }
            if i % 3 == 0 {
                *v = -*v;
            }
        }
        let sz = SzCompressor::new();
        for eb in [1e-2, 1e-4, 1e-6] {
            let bound = ErrorBound::PointwiseRel(eb);
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
        }
    }

    #[test]
    fn smooth_data_compresses_much_better_than_lossless() {
        let data = smooth_signal(100_000);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::ValueRangeRel(1e-4)).unwrap();
        // The paper reports 20–60x on solver vectors; smooth analytic data
        // should comfortably exceed 10x.
        assert!(
            c.ratio() > 10.0,
            "expected ratio > 10, got {:.2}",
            c.ratio()
        );
    }

    #[test]
    fn random_data_still_respects_bound() {
        // Worst case for prediction: white noise.
        let mut data = vec![0.0f64; 4096];
        let mut state = 0x12345678u64;
        for v in data.iter_mut() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            *v = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
                - 0.5;
        }
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-3);
        let c = sz.compress(&data, bound).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, bound);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let sz = SzCompressor::new();
        for data in [vec![], vec![1.5], vec![1.5, -2.5]] {
            let c = sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap();
            let r = sz.decompress(&c).unwrap();
            assert_eq!(r.len(), data.len());
            check_bound(&data, &r, ErrorBound::Abs(1e-6));
        }
    }

    #[test]
    fn constant_data() {
        let data = vec![3.25f64; 1000];
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(1e-8),
            ErrorBound::ValueRangeRel(1e-4),
            ErrorBound::PointwiseRel(1e-4),
        ] {
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
            assert!(c.ratio() > 10.0, "constant data should compress massively");
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let sz = SzCompressor::new();
        let data = [1.0, 2.0];
        assert!(sz.compress(&data, ErrorBound::Abs(0.0)).is_err());
        assert!(sz.compress(&data, ErrorBound::Abs(-1.0)).is_err());
        assert!(sz.compress(&data, ErrorBound::Abs(f64::NAN)).is_err());
        assert!(sz.compress(&data, ErrorBound::PointwiseRel(0.0)).is_err());
    }

    #[test]
    fn corrupt_streams_detected() {
        let sz = SzCompressor::new();
        let data = smooth_signal(256);
        let c = sz.compress(&data, ErrorBound::Abs(1e-5)).unwrap();

        // Wrong codec id.
        let mut wrong = c.clone();
        wrong.bytes[0] = 99;
        assert!(matches!(
            sz.decompress(&wrong),
            Err(CompressError::WrongCodec { .. })
        ));

        // Truncation.
        let mut trunc = c.clone();
        trunc.bytes.truncate(c.bytes.len() / 2);
        assert!(sz.decompress(&trunc).is_err());

        // Element-count mismatch.
        let mut mism = c;
        mism.n_elements += 1;
        assert!(sz.decompress(&mism).is_err());
    }

    #[test]
    fn name_is_sz() {
        assert_eq!(SzCompressor::new().name(), "sz");
    }
}
