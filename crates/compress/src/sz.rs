//! SZ-style prediction-based, error-bounded lossy compressor.
//!
//! This is a from-scratch re-implementation of the algorithmic core of the
//! SZ 1.4 compressor the paper uses (Di & Cappello, IPDPS'16; Tao et al.,
//! IPDPS'17) specialised to 1-D `f64` data — which is all the lossy
//! checkpointing scheme needs, because the dynamic variables of iterative
//! methods are 1-D vectors (§5.1 of the paper).
//!
//! Pipeline (compression):
//!
//! 1. **Prediction.** Each value is predicted from the *previously
//!    reconstructed* values with the better of a 1-step (Lorenzo) or 2-step
//!    linear extrapolation predictor.
//! 2. **Linear-scaling quantization.** The prediction error is quantized to
//!    an integer bin of width `2·eb`, guaranteeing `|x − x'| ≤ eb`.
//! 3. **Huffman coding** of the bin indices (they cluster tightly around the
//!    zero bin on smooth data, giving the 20–60× ratios in Table 3).
//! 4. **Unpredictable values** whose bin index would overflow the code range
//!    are stored verbatim (IEEE-754 bits) and flagged with the reserved bin 0.
//!
//! Prediction and quantization run as one fused, branch-light pass per
//! parallel block, writing into per-thread scratch buffers that persist
//! across blocks (no per-block `Vec` churn), and the entropy stage uses the
//! word-buffered bitstream and table-driven canonical Huffman codec.
//!
//! Point-wise relative bounds (`ErrorBound::PointwiseRel`) are honoured with
//! the standard SZ trick: compress `ln|x|` under an absolute bound
//! `ln(1 + eb)` with the signs and exact zeros stored in side channels;
//! value-range-relative bounds are mapped to an absolute bound
//! `eb·(max − min)`.
//!
//! ## Stream versions
//!
//! | version | layout                                                        |
//! |---------|---------------------------------------------------------------|
//! | 3       | block-split; per block `u64`-framed legacy Huffman blob + `u64` unpredictable count (decode-only) |
//! | 4       | block-split; per block v2 Huffman blob + varint unpredictable count (current) |
//! | 5       | v4 plus a per-variable [`DeltaMode`] byte before the block container: codes may be **temporal deltas** against the prior snapshot's codes, unpredictable values XOR-coded against the prior snapshot's bits (8 Huffman byte planes), and point-wise-relative zero/sign bitmaps either carried raw or inherited from the previous log link (see [`SzCompressor::compress_temporal_into`]) |
//!
//! Version-3 streams written by earlier releases decode bit-identically;
//! version 4 is what [`SzCompressor::compress`] emits; version 5 is what
//! the temporal (anchored-delta-chain) entry points emit.  A version-5
//! stream whose mode is [`DeltaMode::None`] is a self-contained **anchor**
//! and decodes through the stateless [`LossyCompressor::decompress`];
//! delta streams need their chain and decode through
//! [`SzCompressor::decompress_chain`].

use crate::bitstream::{bytes, BitReader, BitWriter};
use crate::delta::{self, DeltaMode};
use crate::{huffman, parblock};
use crate::{CompressError, Compressed, ErrorBound, LossyCompressor, Result};
use std::cell::RefCell;

/// Codec id stored in the stream header.
const CODEC_ID: u8 = 1;
/// Stream-format version written by the stateless compressor.
const VERSION: u8 = 4;
/// Stream-format version written by the temporal (delta-chain) entry
/// points; carries the per-variable [`DeltaMode`] header byte.
const TEMPORAL_VERSION: u8 = 5;
/// Oldest stream version the decompressor still reads.
const MIN_VERSION: u8 = 3;

/// Half the number of quantization bins on each side of the zero bin.
/// 65536 intervals matches SZ's default `max_quant_intervals`.
const QUANT_RADIUS: i64 = 32_768;

/// Elements per independently compressed block.  The predictor restarts at
/// each block boundary, so blocks can be quantized, Huffman-coded and
/// decoded in parallel — and since every block's stream is produced
/// independently and concatenated in block order, the encoded bytes are
/// identical at any thread count.  Large enough that the per-block Huffman
/// table and the predictor warm-up cost are noise (<0.1% of a block).
const PAR_BLOCK: usize = 65_536;

thread_local! {
    /// Per-thread quantization-code scratch, reused across blocks (the
    /// worker threads of the deterministic pool persist, so each thread
    /// allocates these once).
    static QUANT_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread unpredictable-value scratch.
    static UNPRED_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Per-thread dense code histogram, kept all-zero between blocks (the
    /// Huffman builder zeroes the entries it consumed).
    static HIST_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread temporal-delta symbol scratch.
    static DELTA_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread dense histogram for temporal-delta symbols (their range
    /// exceeds [`N_CODES`], so they get their own table), grown on demand
    /// and kept all-zero between blocks like [`HIST_SCRATCH`].
    static DELTA_HIST_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Number of distinct quantization codes (`0` = unpredictable, then the
/// `2·QUANT_RADIUS − 1` bins shifted by `QUANT_RADIUS + 1`).
const N_CODES: usize = 2 * QUANT_RADIUS as usize + 2;

/// Rounds a scaled value to its integer grid point with the `1.5·2^52`
/// magic-constant trick (round-to-nearest, ties to even) — two additions
/// instead of a libm `round` call, and auto-vectorizable.  Exact for
/// `|v| < 2^51`; larger magnitudes produce *some* deterministic value that
/// the quantizer's range check rejects, and the decoder computes the
/// identical function, so encoder and decoder grids always agree.
#[inline]
fn grid_round(v: f64) -> f64 {
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    (v + MAGIC) - MAGIC
}

/// Largest grid magnitude the quantizer accepts as predictable.  Below
/// this bound every add/sub in the predictor is exact integer f64
/// arithmetic (all intermediates stay under 2^53), so the decoder's
/// reconstruction provably reproduces the encoder's grid value bit for
/// bit — no per-element replay check is needed and the whole quantization
/// pass is branch-light straight-line float code.
const GRID_MAX: f64 = (1u64 << 50) as f64;

/// Internal mode tag for the value transform applied before quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transform {
    /// Values compressed directly under an absolute bound.
    Identity = 0,
    /// `ln|x|` compressed under an absolute bound; signs/zeros in side
    /// channels (point-wise relative mode).
    Log = 1,
}

/// The SZ-style compressor.  Stateless and cheap to construct; the error
/// bound is supplied per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SzCompressor;

impl SzCompressor {
    /// Creates a compressor.
    pub fn new() -> Self {
        SzCompressor
    }

    /// Fused prediction + linear-scaling quantization over one block,
    /// emitting bin codes into `quant`, out-of-range values into `unpred`
    /// (both cleared first) and symbol frequencies into `hist` (assumed
    /// all-zero on entry).  The predictor state starts from zero, so the
    /// block is decodable in isolation.
    ///
    /// The version-4 formulation works on the integer grid: every value is
    /// independently rounded to `r = round(x / 2eb)` and the bin codes are
    /// second differences of those integers.  Unlike the classic
    /// reconstruct-then-predict chain — which serialises one division, one
    /// libm rounding and two multiplies per element through a loop-carried
    /// FP dependency — each element's predictor inputs are independent
    /// roundings of its own *shifted value windows* (`x[i-1]`, `x[i-2]`),
    /// so the coding pass has no floating-point dependency chain and no
    /// materialised grid array: rounding a window element twice costs two
    /// vector ops, where the former grid scratch cost a full store+reload
    /// sweep of cache traffic per block.
    ///
    /// An element is coded (rather than stored verbatim) only if its
    /// window satisfies `|r| ≤ 2^50` and `|bin| < 2^15`, in which case
    /// every predictor add/sub below 2^53 is exact integer-f64 arithmetic
    /// and the decoder provably lands on the same grid point, and if the
    /// decoder's reconstruction `r · 2eb` (computed here with the same
    /// rounding) honours the bound.  NaN/∞ fail the comparisons and fall
    /// back to verbatim storage wholesale.
    /// Returns the inclusive `(min, max)` range of emitted codes (with
    /// `min > max` for the empty block), so the Huffman builder can scan
    /// only the live span of the 65 538-entry histogram.
    fn quantize_block(
        values: &[f64],
        abs_eb: f64,
        quant: &mut Vec<u32>,
        unpred: &mut Vec<f64>,
        hist: &mut [u32],
    ) -> (u32, u32) {
        let n = values.len();
        quant.clear();
        unpred.clear();
        quant.reserve(n);
        let two_eb = 2.0 * abs_eb;
        let inv = 1.0 / two_eb;

        // Coding pass (vectorizable): window codes.  The predictor inputs
        // `r1`/`r2` are the roundings of the two previous *values* (0.0
        // for the virtual elements before the block, matching the
        // order-0/1 warm-up predictors), recomputed per element from
        // shifted windows of `values` — `grid_round` is pure, so the
        // recomputed rounding is bit-identical to a stored one.  Every
        // element's code is then a pure branch-free expression of
        // `(x, r, r1, r2)` (the `if ok` compiles to a select; the
        // `f64 → u32` cast is saturating, hence defined even for the
        // not-taken lane), which the compiler turns into straight vector
        // code with no loop-carried state and no grid scratch traffic.
        let g = |x: f64| grid_round(x * inv);
        let shift = (QUANT_RADIUS + 1) as f64;
        let code_of = |x: f64, r: f64, r1: f64, r2: f64, pred: f64| -> u32 {
            let bin = r - pred;
            let ok = bin.abs() < QUANT_RADIUS as f64
                && r.abs() <= GRID_MAX
                && r1.abs() <= GRID_MAX
                && r2.abs() <= GRID_MAX
                && (x - r * two_eb).abs() <= abs_eb;
            // Code 0 is reserved for "unpredictable"; bins map to
            // 2..=2·QUANT_RADIUS.
            if ok {
                (bin + shift) as u32
            } else {
                0
            }
        };
        // Live-code range accumulators, fused into the coding pass as
        // eight independent integer lanes (u32 min/max is exact, so lane
        // order cannot change the result) — saves a full re-scan of the
        // code array.
        let mut lane_min = [u32::MAX; 8];
        let mut lane_max = [0u32; 8];
        if n >= 1 {
            let code = code_of(values[0], g(values[0]), 0.0, 0.0, 0.0);
            lane_min[0] = lane_min[0].min(code);
            lane_max[0] = lane_max[0].max(code);
            quant.push(code);
        }
        if n >= 2 {
            let r1 = g(values[0]);
            let code = code_of(values[1], g(values[1]), r1, 0.0, r1);
            lane_min[0] = lane_min[0].min(code);
            lane_max[0] = lane_max[0].max(code);
            quant.push(code);
        }
        if n >= 3 {
            // Chunk-of-8 coding with carried neighbour roundings: each
            // element is rounded exactly once per chunk and its predictor
            // inputs are the (pure, hence bit-identical) roundings of the
            // two previous elements, carried across the chunk boundary as
            // two scalars.  The 8-lane body fully unrolls; the carries are
            // value reuse, not an FP dependency chain — every `r[i]` is an
            // independent rounding of its own input.
            let mut c1 = g(values[1]);
            let mut c2 = g(values[0]);
            let mut chunks = values[2..].chunks_exact(8);
            for c in &mut chunks {
                let mut r = [0.0f64; 8];
                for i in 0..8 {
                    r[i] = g(c[i]);
                }
                let mut codes = [0u32; 8];
                for i in 0..8 {
                    let r1 = if i >= 1 { r[i - 1] } else { c1 };
                    let r2 = if i >= 2 {
                        r[i - 2]
                    } else if i == 1 {
                        c1
                    } else {
                        c2
                    };
                    codes[i] = code_of(c[i], r[i], r1, r2, 2.0 * r1 - r2);
                }
                for i in 0..8 {
                    lane_min[i] = lane_min[i].min(codes[i]);
                    lane_max[i] = lane_max[i].max(codes[i]);
                }
                quant.extend_from_slice(&codes);
                c1 = r[7];
                c2 = r[6];
            }
            for &x in chunks.remainder() {
                let r = g(x);
                let code = code_of(x, r, c1, c2, 2.0 * c1 - c2);
                lane_min[0] = lane_min[0].min(code);
                lane_max[0] = lane_max[0].max(code);
                quant.push(code);
                c2 = c1;
                c1 = r;
            }
        }

        let min_code = lane_min.into_iter().min().unwrap_or(u32::MAX);
        let max_code = lane_max.into_iter().max().unwrap_or(0);

        // Scatter pass: four interleaved sub-histograms over the live code
        // span break the store-to-load dependency that serialises runs of
        // equal codes (the common case for smooth fields, where one or two
        // bins dominate the block), then fold into the shared histogram.
        // The sub-histograms only span `[min_code, max_code]`, so the
        // scratch stays small for exactly the blocks where this pass is
        // hot.
        if min_code <= max_code {
            let base = min_code as usize;
            let span = (max_code - min_code) as usize + 1;
            let mut sub = vec![0u32; span * 4];
            let mut chunks = quant.chunks_exact(4);
            for c in &mut chunks {
                sub[(c[0] as usize - base) * 4] += 1;
                sub[(c[1] as usize - base) * 4 + 1] += 1;
                sub[(c[2] as usize - base) * 4 + 2] += 1;
                sub[(c[3] as usize - base) * 4 + 3] += 1;
            }
            for &code in chunks.remainder() {
                sub[(code as usize - base) * 4] += 1;
            }
            for (i, s) in sub.chunks_exact(4).enumerate() {
                hist[base + i] += s[0] + s[1] + s[2] + s[3];
            }
            // Verbatim collection only runs when code 0 was actually
            // emitted; fully predictable blocks skip the whole pass.
            if min_code == 0 {
                for (&code, &x) in quant.iter().zip(values) {
                    if code == 0 {
                        unpred.push(x);
                    }
                }
            }
        }
        (min_code, max_code)
    }

    /// Core absolute-error-bound compression of a pre-transformed stream.
    ///
    /// The stream is cut into [`PAR_BLOCK`]-element blocks that are
    /// predicted, quantized and Huffman-coded independently (and therefore
    /// in parallel), then concatenated in block order behind a length
    /// table:
    ///
    /// ```text
    /// [u64 nblocks][u64 len × nblocks][block bytes …]
    /// ```
    fn compress_abs(values: &[f64], abs_eb: f64, out: &mut Vec<u8>) {
        let n = values.len();
        parblock::encode_blocks(out, n.div_ceil(PAR_BLOCK), |b| {
            let start = b * PAR_BLOCK;
            let end = ((b + 1) * PAR_BLOCK).min(n);
            Self::encode_block_abs(&values[start..end], abs_eb)
        });
    }

    /// Quantization + entropy coding of one block in the version-4 layout:
    ///
    /// ```text
    /// [huffman v2 blob][varint n_unpred][f64 × n_unpred]
    /// ```
    fn encode_block_abs(values: &[f64], abs_eb: f64) -> Vec<u8> {
        QUANT_SCRATCH.with(|q| {
            UNPRED_SCRATCH.with(|u| {
                HIST_SCRATCH.with(|h| {
                    let quant = &mut q.borrow_mut();
                    let unpred = &mut u.borrow_mut();
                    let hist = &mut h.borrow_mut();
                    if hist.is_empty() {
                        hist.resize(N_CODES, 0);
                    }
                    let (lo, hi) = Self::quantize_block(values, abs_eb, quant, unpred, hist);
                    let mut out = Vec::with_capacity(values.len() / 2 + 32);
                    // The Huffman builder consumes the histogram and
                    // zeroes the entries it used, keeping the scratch
                    // all-zero for the next block; the live-code range
                    // from quantization confines its scan to the
                    // occupied span of the 65 538-entry table.
                    huffman::encode_block_from_hist_range(quant, hist, lo, hi, &mut out);
                    bytes::put_varint(&mut out, unpred.len() as u64);
                    for v in unpred.iter() {
                        bytes::put_f64(&mut out, *v);
                    }
                    out
                })
            })
        })
    }

    /// Inverse of [`SzCompressor::compress_abs`]: reads the block length
    /// table, then decodes the independent blocks in parallel and
    /// concatenates them in block order.  `version` selects the per-block
    /// layout (3 = legacy, 4 = current).
    fn decompress_abs(
        buf: &[u8],
        pos: &mut usize,
        n: usize,
        abs_eb: f64,
        version: u8,
    ) -> Result<Vec<f64>> {
        parblock::decode_blocks(buf, pos, n.div_ceil(PAR_BLOCK), n, "SZ", |b, block| {
            let block_n = (((b + 1) * PAR_BLOCK).min(n)) - b * PAR_BLOCK;
            Self::decode_block_abs(block, block_n, abs_eb, version)
        })
    }

    /// Inverse of [`SzCompressor::encode_block_abs`] (and of the legacy
    /// version-3 block encoder).
    fn decode_block_abs(block: &[u8], n: usize, abs_eb: f64, version: u8) -> Result<Vec<f64>> {
        QUANT_SCRATCH.with(|q| {
            let quant = &mut q.borrow_mut();
            let pos = &mut 0usize;
            let n_unpred = if version >= 4 {
                huffman::decode_block_into(block, pos, quant)?;
                bytes::get_varint(block, pos)? as usize
            } else {
                // v3 framed the Huffman blob with a redundant byte length.
                let huff_len = bytes::get_u64(block, pos)? as usize;
                let huff_slice = bytes::get_slice(block, pos, huff_len)?;
                let mut hpos = 0usize;
                huffman::decode_block_legacy_into(huff_slice, &mut hpos, quant)?;
                bytes::get_u64(block, pos)? as usize
            };
            if quant.len() != n {
                return Err(CompressError::Corrupt(format!(
                    "expected {n} quantization codes, found {}",
                    quant.len()
                )));
            }
            // The unpredictable values are read straight off the stream
            // slice; the length pre-check keeps corrupt counts from
            // over-allocating or wrapping.
            let unpred_len = n_unpred
                .checked_mul(8)
                .ok_or_else(|| CompressError::Corrupt("unpredictable count overflow".into()))?;
            let unpred_bytes = bytes::get_slice(block, pos, unpred_len)?;
            if version >= 4 {
                return Self::reconstruct_block_v4(quant, unpred_bytes, abs_eb);
            }

            // Legacy v3 reconstruct-then-predict chain, kept
            // bit-identical to the decoder that shipped with v3.
            let mut unpred_iter = unpred_bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")));
            let two_eb = 2.0 * abs_eb;
            let mut out = Vec::with_capacity(n);
            let mut prev = 0.0f64;
            let mut prev2 = 0.0f64;
            for (i, &code) in quant.iter().enumerate() {
                let value = if code == 0 {
                    unpred_iter.next().ok_or_else(|| {
                        CompressError::Corrupt("missing unpredictable value".into())
                    })?
                } else {
                    let bin = (i64::from(code) - 1 - QUANT_RADIUS) as f64;
                    let pred = if i >= 2 {
                        2.0 * prev - prev2
                    } else if i == 1 {
                        prev
                    } else {
                        0.0
                    };
                    pred + bin * two_eb
                };
                prev2 = prev;
                prev = value;
                out.push(value);
            }
            Ok(out)
        })
    }

    /// Grid-space value reconstruction of one version-4/5 block from its
    /// (fully un-delta'd) quantization codes and verbatim-value bytes —
    /// the exact loop the v4 decoder runs, factored out so the delta-chain
    /// decoder reconstructs the final link through the identical code path
    /// (bit-identical restarts by construction).
    fn reconstruct_block_v4(quant: &[u32], unpred_bytes: &[u8], abs_eb: f64) -> Result<Vec<f64>> {
        let mut unpred_iter = unpred_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")));
        Self::reconstruct_block_from(quant, &mut unpred_iter, abs_eb)
    }

    /// [`SzCompressor::reconstruct_block_v4`] over an arbitrary source of
    /// unpredictable values (the delta-chain decoder feeds the un-XORed
    /// tail it materialized instead of raw stream bytes).
    fn reconstruct_block_from(
        quant: &[u32],
        unpred_iter: &mut dyn Iterator<Item = f64>,
        abs_eb: f64,
    ) -> Result<Vec<f64>> {
        let two_eb = 2.0 * abs_eb;
        let inv = 1.0 / two_eb;
        let mut out = Vec::with_capacity(quant.len());
        let mut rp = 0.0f64;
        let mut rp2 = 0.0f64;
        for (i, &code) in quant.iter().enumerate() {
            let pred = if i >= 2 {
                2.0 * rp - rp2
            } else if i == 1 {
                rp
            } else {
                0.0
            };
            rp2 = rp;
            let value = if code == 0 {
                let x = unpred_iter
                    .next()
                    .ok_or_else(|| CompressError::Corrupt("missing unpredictable value".into()))?;
                rp = grid_round(x * inv);
                x
            } else {
                let bin = (i64::from(code) - 1 - QUANT_RADIUS) as f64;
                let r = pred + bin;
                rp = r;
                r * two_eb
            };
            out.push(value);
        }
        Ok(out)
    }

    /// Shared body of [`LossyCompressor::compress`] /
    /// [`LossyCompressor::compress_into`]: appends a complete stream to
    /// `out`.
    fn compress_to(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<()> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }

        out.reserve(data.len() / 2 + 64);
        out.push(CODEC_ID);
        out.push(VERSION);
        bytes::put_u64(out, data.len() as u64);

        match bound {
            ErrorBound::Abs(abs) => {
                out.push(Transform::Identity as u8);
                bytes::put_f64(out, abs);
                Self::compress_abs(data, abs, out);
            }
            ErrorBound::ValueRangeRel(rel) => {
                let (min, max) = min_max(data);
                let range = (max - min).abs();
                // Degenerate constant data: any positive bound works.
                let abs = if range > 0.0 {
                    rel * range
                } else {
                    rel.max(f64::MIN_POSITIVE)
                };
                out.push(Transform::Identity as u8);
                bytes::put_f64(out, abs);
                Self::compress_abs(data, abs, out);
            }
            ErrorBound::PointwiseRel(rel) => {
                out.push(Transform::Log as u8);
                // Bound in log space guaranteeing |x'/x - 1| <= rel:
                // use ln(1+rel) and note exp(-d) >= 1-rel for d = ln(1+rel).
                let log_eb = rel.ln_1p();
                if !(log_eb.is_finite() && log_eb > 0.0) {
                    return Err(CompressError::InvalidBound(rel));
                }
                bytes::put_f64(out, rel);

                // Sign bits + zero flags side channel, then log magnitudes.
                let mut signs = BitWriter::with_capacity(data.len() / 8 + 1);
                let mut zeros = BitWriter::with_capacity(data.len() / 8 + 1);
                let mut logs: Vec<f64> = Vec::with_capacity(data.len());
                for &x in data {
                    zeros.write_bit(x == 0.0);
                    signs.write_bit(x.is_sign_negative());
                    if x != 0.0 {
                        logs.push(x.abs().ln());
                    }
                }
                let zero_bytes = zeros.into_bytes();
                let sign_bytes = signs.into_bytes();
                bytes::put_u64(out, zero_bytes.len() as u64);
                out.extend_from_slice(&zero_bytes);
                bytes::put_u64(out, sign_bytes.len() as u64);
                out.extend_from_slice(&sign_bytes);
                bytes::put_u64(out, logs.len() as u64);
                Self::compress_abs(&logs, log_eb, out);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Temporal (anchored delta-chain) layer — stream version 5.
    // ------------------------------------------------------------------

    /// Parses the common stream prologue (any supported version).  For
    /// version-5 streams the per-variable [`DeltaMode`] byte follows the
    /// error bound; older versions are implicitly [`DeltaMode::None`].
    fn parse_header(buf: &[u8], pos: &mut usize) -> Result<StreamHeader> {
        let codec = bytes::get_slice(buf, pos, 1)?[0];
        if codec != CODEC_ID {
            return Err(CompressError::WrongCodec {
                found: codec,
                expected: CODEC_ID,
            });
        }
        let version = bytes::get_slice(buf, pos, 1)?[0];
        if !(MIN_VERSION..=TEMPORAL_VERSION).contains(&version) {
            return Err(CompressError::Corrupt(format!(
                "unsupported SZ stream version {version}"
            )));
        }
        let n = bytes::get_u64(buf, pos)? as usize;
        let transform = bytes::get_slice(buf, pos, 1)?[0];
        let eb = bytes::get_f64(buf, pos)?;
        let mode = if version >= TEMPORAL_VERSION {
            let tag = bytes::get_slice(buf, pos, 1)?[0];
            DeltaMode::from_u8(tag).ok_or_else(|| {
                CompressError::Corrupt(format!("unknown delta mode tag {tag}"))
            })?
        } else {
            DeltaMode::None
        };
        Ok(StreamHeader {
            version,
            n,
            transform,
            eb,
            mode,
        })
    }

    /// Reads the point-wise-relative side channels (`zero` / `sign`
    /// bitmaps and the log-magnitude count) off the stream.
    fn read_log_side_channels<'a>(
        buf: &'a [u8],
        pos: &mut usize,
    ) -> Result<(&'a [u8], &'a [u8], usize)> {
        let zero_len = bytes::get_u64(buf, pos)? as usize;
        let zero_bytes = bytes::get_slice(buf, pos, zero_len)?;
        let sign_len = bytes::get_u64(buf, pos)? as usize;
        let sign_bytes = bytes::get_slice(buf, pos, sign_len)?;
        let n_logs = bytes::get_u64(buf, pos)? as usize;
        Ok((zero_bytes, sign_bytes, n_logs))
    }

    /// Reads a delta stream's point-wise-relative side channels: each
    /// bitmap is either flagged as inherited from the previous log link
    /// of the chain or carried raw (`u8 flag`, then the raw section when
    /// the flag is 0).
    fn read_log_side_channels_delta(
        buf: &[u8],
        pos: &mut usize,
        idx: usize,
        prev: Option<&(Vec<u8>, Vec<u8>)>,
    ) -> Result<(Vec<u8>, Vec<u8>, usize)> {
        let read_bitmap = |pos: &mut usize,
                               which: &str,
                               prev_bytes: Option<&[u8]>|
         -> Result<Vec<u8>> {
            let flag = bytes::get_slice(buf, pos, 1)?[0];
            match flag {
                0 => {
                    let len = bytes::get_u64(buf, pos)? as usize;
                    Ok(bytes::get_slice(buf, pos, len)?.to_vec())
                }
                1 => prev_bytes.map(<[u8]>::to_vec).ok_or_else(|| {
                    CompressError::Corrupt(format!(
                        "chain link {idx}: inherits its {which} bitmap with no prior log link"
                    ))
                }),
                other => Err(CompressError::Corrupt(format!(
                    "chain link {idx}: unknown {which} bitmap flag {other}"
                ))),
            }
        };
        let zero = read_bitmap(pos, "zero", prev.map(|p| p.0.as_slice()))?;
        let sign = read_bitmap(pos, "sign", prev.map(|p| p.1.as_slice()))?;
        let n_logs = bytes::get_u64(buf, pos)? as usize;
        Ok((zero, sign, n_logs))
    }

    /// Reassembles point-wise-relative values from the decoded log
    /// magnitudes and the zero/sign bitmaps.
    fn expand_log(
        zero_bytes: &[u8],
        sign_bytes: &[u8],
        logs: Vec<f64>,
        n: usize,
    ) -> Result<Vec<f64>> {
        let mut zero_reader = BitReader::new(zero_bytes);
        let mut sign_reader = BitReader::new(sign_bytes);
        let mut log_iter = logs.into_iter();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let is_zero = zero_reader.read_bit()?;
            let is_neg = sign_reader.read_bit()?;
            if is_zero {
                out.push(if is_neg { -0.0 } else { 0.0 });
            } else {
                let mag = log_iter
                    .next()
                    .ok_or_else(|| CompressError::Corrupt("missing log magnitude".into()))?
                    .exp();
                out.push(if is_neg { -mag } else { mag });
            }
        }
        Ok(out)
    }

    /// Compresses one snapshot of a variable into a version-5 stream,
    /// encoding its quantization codes as temporal deltas against the
    /// prior snapshot's codes retained in `state` whenever that is both
    /// possible and smaller than direct coding.
    ///
    /// The candidate streams (direct, order-1, and — with two retained
    /// priors and `max_order == Order2` — order-2) are entropy-coded
    /// per block in one parallel pass over the data, and the smallest
    /// total wins; ties prefer the lower order, so an anchor is emitted
    /// whenever delta coding does not pay.  `force_anchor` pins the
    /// stream to [`DeltaMode::None`] regardless (the periodic anchors of
    /// a checkpoint chain).  The delta transform is lossless on the
    /// codes, so replaying the chain reconstructs values bit-identically
    /// to a direct decode of the same snapshot.
    ///
    /// `state` is always updated to hold this snapshot's codes (even
    /// when direct coding wins) and is never consulted when the shape or
    /// transform of the stream changed — such snapshots fall back to
    /// direct coding automatically.  Returns the mode actually written.
    ///
    /// # Errors
    /// Rejects non-finite or non-positive error bounds; the stream
    /// layout itself cannot fail to encode.
    pub fn compress_temporal_into(
        &self,
        data: &[f64],
        bound: ErrorBound,
        max_order: DeltaMode,
        force_anchor: bool,
        state: &mut SzTemporalState,
        out: &mut Vec<u8>,
    ) -> Result<DeltaMode> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }

        out.reserve(data.len() / 2 + 64);
        out.push(CODEC_ID);
        out.push(TEMPORAL_VERSION);
        bytes::put_u64(out, data.len() as u64);

        // The mode byte sits right after the error bound for every
        // transform; it is decided after the candidate encodings are
        // sized, so a placeholder is written now and patched below.
        let mode = match bound {
            ErrorBound::Abs(abs) => {
                out.push(Transform::Identity as u8);
                bytes::put_f64(out, abs);
                let mode_pos = out.len();
                out.push(DeltaMode::None as u8);
                let mode = Self::compress_abs_temporal(
                    data,
                    abs,
                    StateKey {
                        transform: Transform::Identity as u8,
                        n_codes: data.len(),
                    },
                    max_order,
                    force_anchor,
                    0,
                    0,
                    state,
                    out,
                );
                state.zeros1.clear();
                state.signs1.clear();
                out[mode_pos] = mode as u8;
                mode
            }
            ErrorBound::ValueRangeRel(rel) => {
                let (min, max) = min_max(data);
                let range = (max - min).abs();
                let abs = if range > 0.0 {
                    rel * range
                } else {
                    rel.max(f64::MIN_POSITIVE)
                };
                out.push(Transform::Identity as u8);
                bytes::put_f64(out, abs);
                let mode_pos = out.len();
                out.push(DeltaMode::None as u8);
                let mode = Self::compress_abs_temporal(
                    data,
                    abs,
                    StateKey {
                        transform: Transform::Identity as u8,
                        n_codes: data.len(),
                    },
                    max_order,
                    force_anchor,
                    0,
                    0,
                    state,
                    out,
                );
                state.zeros1.clear();
                state.signs1.clear();
                out[mode_pos] = mode as u8;
                mode
            }
            ErrorBound::PointwiseRel(rel) => {
                out.push(Transform::Log as u8);
                let log_eb = rel.ln_1p();
                if !(log_eb.is_finite() && log_eb > 0.0) {
                    return Err(CompressError::InvalidBound(rel));
                }
                bytes::put_f64(out, rel);
                let mode_pos = out.len();
                out.push(DeltaMode::None as u8);

                let mut signs = BitWriter::with_capacity(data.len() / 8 + 1);
                let mut zeros = BitWriter::with_capacity(data.len() / 8 + 1);
                let mut logs: Vec<f64> = Vec::with_capacity(data.len());
                for &x in data {
                    zeros.write_bit(x == 0.0);
                    signs.write_bit(x.is_sign_negative());
                    if x != 0.0 {
                        logs.push(x.abs().ln());
                    }
                }
                let zero_bytes = zeros.into_bytes();
                let sign_bytes = signs.into_bytes();

                // A delta stream inherits each bitmap from the prior link
                // when it is byte-identical (the common case: zero and
                // sign patterns of an iterative solve are stable), paying
                // one flag byte instead of the raw section.  The raw /
                // delta side-channel costs feed the mode decision, so a
                // stream whose bitmaps dominate can still pick delta.
                let same_zero = !force_anchor && state.zeros1 == zero_bytes;
                let same_sign = !force_anchor && state.signs1 == sign_bytes;
                let raw_zero = 8 + zero_bytes.len();
                let raw_sign = 8 + sign_bytes.len();
                let side_raw = raw_zero + raw_sign;
                let side_delta = (1 + if same_zero { 0 } else { raw_zero })
                    + (1 + if same_sign { 0 } else { raw_sign });

                // The side-channel layout depends on the winning mode,
                // which is only known after the blocks are sized — encode
                // the container into a scratch buffer first.
                //
                // The temporal delta applies to the log-magnitude
                // sub-stream; a changed zero pattern changes `n_codes`
                // and falls back to an anchor via the state key.
                let mut container = Vec::new();
                let mode = Self::compress_abs_temporal(
                    &logs,
                    log_eb,
                    StateKey {
                        transform: Transform::Log as u8,
                        n_codes: logs.len(),
                    },
                    max_order,
                    force_anchor,
                    side_raw,
                    side_delta,
                    state,
                    &mut container,
                );
                out[mode_pos] = mode as u8;
                if mode == DeltaMode::None {
                    bytes::put_u64(out, zero_bytes.len() as u64);
                    out.extend_from_slice(&zero_bytes);
                    bytes::put_u64(out, sign_bytes.len() as u64);
                    out.extend_from_slice(&sign_bytes);
                } else {
                    out.push(u8::from(same_zero));
                    if !same_zero {
                        bytes::put_u64(out, zero_bytes.len() as u64);
                        out.extend_from_slice(&zero_bytes);
                    }
                    out.push(u8::from(same_sign));
                    if !same_sign {
                        bytes::put_u64(out, sign_bytes.len() as u64);
                        out.extend_from_slice(&sign_bytes);
                    }
                }
                bytes::put_u64(out, logs.len() as u64);
                out.extend_from_slice(&container);
                state.zeros1 = zero_bytes;
                state.signs1 = sign_bytes;
                mode
            }
        };
        Ok(mode)
    }

    /// Temporal counterpart of [`SzCompressor::compress_abs`]: quantizes
    /// each block once, entropy-codes every available candidate (direct /
    /// order-1 / order-2) in the same parallel pass, writes the framed
    /// container of the stream-wide winning blocks, rotates this
    /// snapshot's codes into `state`, and returns the winning mode (the
    /// caller patches it into the header's mode byte).
    /// `side_raw` / `side_delta` are the byte costs of the stream's side
    /// channels under direct and delta coding respectively (the Log
    /// transform's bitmaps inherit from the prior link when unchanged, so
    /// a delta stream can be cheaper than its blocks alone suggest); the
    /// winner is picked on total stream bytes.
    #[allow(clippy::too_many_arguments)]
    fn compress_abs_temporal(
        values: &[f64],
        abs_eb: f64,
        key: StateKey,
        max_order: DeltaMode,
        force_anchor: bool,
        side_raw: usize,
        side_delta: usize,
        state: &mut SzTemporalState,
        out: &mut Vec<u8>,
    ) -> DeltaMode {
        let code_n = values.len();
        let nblocks = code_n.div_ceil(PAR_BLOCK);
        let shape_ok = state.key == Some(key) && state.codes1.len() == code_n;
        let mut prior1_ok = !force_anchor && max_order != DeltaMode::None && shape_ok;

        // The delta tail XORs each unpredictable value against the prior
        // snapshot's value at the same element position, so each block
        // needs its slice of the retained values: the offset is the number
        // of reserved (code 0) bins in the prior codes before the block.
        let mut unpred_offsets = Vec::new();
        if prior1_ok {
            unpred_offsets = Self::unpred_offsets(&state.codes1);
            // Defensive: a retained value per reserved bin, or no priors.
            prior1_ok = state.unpred1.len() == unpred_offsets[nblocks];
        }
        let prior2_ok = prior1_ok
            && max_order == DeltaMode::Order2
            && state.prev2_valid
            && state.codes2.len() == code_n;

        let blocks: Vec<TemporalBlock> = {
            let prev1 = prior1_ok.then_some(state.codes1.as_slice());
            let prev2 = prior2_ok.then_some(state.codes2.as_slice());
            let prev_unpred = prior1_ok.then_some(state.unpred1.as_slice());
            parblock::map_blocks(nblocks, |b| {
                let start = b * PAR_BLOCK;
                let end = ((b + 1) * PAR_BLOCK).min(code_n);
                Self::encode_block_temporal(
                    &values[start..end],
                    abs_eb,
                    prev1.map(|p| &p[start..end]),
                    prev2.map(|p| &p[start..end]),
                    prev_unpred.map(|u| &u[unpred_offsets[b]..unpred_offsets[b + 1]]),
                )
            })
        };

        // Stream-wide winner by total stream bytes (blocks plus the side
        // channels each outcome would carry); strict `<` prefers the
        // lower order (and hence an anchor) on ties.
        let direct_total: usize = blocks.iter().map(|t| t.direct.len()).sum();
        let mut best = (direct_total + side_raw, DeltaMode::None);
        if prior1_ok {
            let total = blocks
                .iter()
                .map(|t| t.delta1.as_ref().map_or(0, Vec::len))
                .sum::<usize>()
                + side_delta;
            if total < best.0 {
                best = (total, DeltaMode::Order1);
            }
        }
        if prior2_ok {
            let total = blocks
                .iter()
                .map(|t| t.delta2.as_ref().map_or(0, Vec::len))
                .sum::<usize>()
                + side_delta;
            if total < best.0 {
                best = (total, DeltaMode::Order2);
            }
        }
        let mode = best.1;

        // Rotate this snapshot's codes into the retained state: the old
        // `codes1` buffer becomes `codes2` (valid only if it belonged to
        // the same stream shape) and the freed buffer absorbs the new
        // codes — no steady-state reallocation.
        std::mem::swap(&mut state.codes1, &mut state.codes2);
        state.prev2_valid = shape_ok;
        state.codes1.clear();
        state.codes1.reserve(code_n);
        state.unpred1.clear();
        let mut chosen = Vec::with_capacity(nblocks);
        for t in blocks {
            state.codes1.extend_from_slice(&t.codes);
            state.unpred1.extend_from_slice(&t.unpred);
            chosen.push(match mode {
                DeltaMode::None => t.direct,
                DeltaMode::Order1 => t.delta1.expect("order-1 candidate exists"),
                DeltaMode::Order2 => t.delta2.expect("order-2 candidate exists"),
            });
        }
        state.key = Some(key);
        parblock::write_container(out, &chosen);
        mode
    }

    /// Quantizes one block and entropy-codes every candidate encoding of
    /// it.  The direct candidate carries the verbatim-value tail; the
    /// delta candidates carry the temporally XOR-coded tail (their values
    /// decode bit-identically through the chain replay).
    fn encode_block_temporal(
        values: &[f64],
        abs_eb: f64,
        prev1: Option<&[u32]>,
        prev2: Option<&[u32]>,
        prev_unpred: Option<&[f64]>,
    ) -> TemporalBlock {
        QUANT_SCRATCH.with(|q| {
            UNPRED_SCRATCH.with(|u| {
                HIST_SCRATCH.with(|h| {
                    let quant = &mut q.borrow_mut();
                    let unpred = &mut u.borrow_mut();
                    let hist = &mut h.borrow_mut();
                    if hist.is_empty() {
                        hist.resize(N_CODES, 0);
                    }
                    let (lo, hi) = Self::quantize_block(values, abs_eb, quant, unpred, hist);
                    let mut direct = Vec::with_capacity(values.len() / 2 + 32);
                    huffman::encode_block_from_hist_range(quant, hist, lo, hi, &mut direct);
                    Self::append_unpred(&mut direct, unpred);
                    let delta1 = prev1.map(|p1| {
                        Self::encode_delta_block(
                            quant,
                            p1,
                            None,
                            unpred,
                            prev_unpred.expect("order-1 prior carries its values"),
                        )
                    });
                    let delta2 = prev2.map(|p2| {
                        Self::encode_delta_block(
                            quant,
                            prev1.expect("order-2 prior implies order-1 prior"),
                            Some(p2),
                            unpred,
                            prev_unpred.expect("order-2 prior carries its values"),
                        )
                    });
                    TemporalBlock {
                        codes: quant.clone(),
                        unpred: unpred.clone(),
                        direct,
                        delta1,
                        delta2,
                    }
                })
            })
        })
    }

    /// Entropy-codes one block's temporal-delta candidate: zigzag delta
    /// symbols against the prior snapshot('s extrapolation), their own
    /// histogram + Huffman table, then the XOR-coded unpredictable tail.
    fn encode_delta_block(
        codes: &[u32],
        prev1: &[u32],
        prev2: Option<&[u32]>,
        unpred: &[f64],
        prev_unpred: &[f64],
    ) -> Vec<u8> {
        DELTA_SCRATCH.with(|d| {
            DELTA_HIST_SCRATCH.with(|h| {
                let syms = &mut d.borrow_mut();
                let hist = &mut h.borrow_mut();
                let (lo, hi) = match prev2 {
                    None => delta::encode_order1(codes, prev1, syms),
                    Some(p2) => delta::encode_order2(codes, prev1, p2, syms),
                };
                if lo <= hi {
                    let need = hi as usize + 1;
                    if hist.len() < need {
                        hist.resize(need, 0);
                    }
                    scatter_hist(syms, lo, hi, hist);
                }
                let mut out = Vec::with_capacity(codes.len() / 8 + 32);
                huffman::encode_block_from_hist_range(syms, hist, lo, hi, &mut out);
                Self::append_unpred_delta(&mut out, codes, prev1, unpred, prev_unpred);
                out
            })
        })
    }

    /// Appends the verbatim-value tail (`varint n_unpred` + raw f64s)
    /// used by anchor streams and the direct block candidate.
    fn append_unpred(out: &mut Vec<u8>, unpred: &[f64]) {
        bytes::put_varint(out, unpred.len() as u64);
        for &v in unpred {
            bytes::put_f64(out, v);
        }
    }

    /// Appends the temporally delta-coded unpredictable tail of a delta
    /// block: `varint n_unpred`, then eight Huffman blobs — byte plane
    /// `j` holds byte `j` of every value's XOR against the prior
    /// snapshot's value at the same element position (`0.0` where that
    /// position was predictable before).  Near-converged snapshots zero
    /// the high planes, which entropy-code to almost nothing, while the
    /// pairing stays exactly invertible from the replayed prior link.
    fn append_unpred_delta(
        out: &mut Vec<u8>,
        codes: &[u32],
        prev_codes: &[u32],
        unpred: &[f64],
        prev_unpred: &[f64],
    ) {
        bytes::put_varint(out, unpred.len() as u64);
        if unpred.is_empty() {
            return;
        }
        let mut xors = Vec::with_capacity(unpred.len());
        let mut cur = 0usize;
        let mut prev = 0usize;
        for (p, &c) in codes.iter().enumerate() {
            let prev_zero = prev_codes[p] == 0;
            if c == 0 {
                let base = if prev_zero { prev_unpred[prev] } else { 0.0 };
                xors.push(unpred[cur].to_bits() ^ base.to_bits());
                cur += 1;
            }
            prev += usize::from(prev_zero);
        }
        debug_assert_eq!(cur, unpred.len(), "one reserved bin per unpredictable value");
        let mut plane = Vec::with_capacity(xors.len());
        for j in 0..8 {
            plane.clear();
            plane.extend(xors.iter().map(|x| ((x >> (8 * j)) & 0xff) as u32));
            huffman::encode_block_into(&plane, out);
        }
    }

    /// Inverse of [`SzCompressor::append_unpred_delta`]: reads the eight
    /// XOR byte planes and reconstructs the block's unpredictable values
    /// from the prior snapshot's codes and values.
    fn read_unpred_delta(
        block: &[u8],
        pos: &mut usize,
        codes: &[u32],
        prev_codes: &[u32],
        prev_unpred: &[f64],
    ) -> Result<Vec<f64>> {
        let n_unpred = bytes::get_varint(block, pos)? as usize;
        let reserved = codes.iter().filter(|&&c| c == 0).count();
        if n_unpred != reserved {
            return Err(CompressError::Corrupt(format!(
                "delta tail declares {n_unpred} unpredictable values, codes reserve {reserved}"
            )));
        }
        let mut xors = vec![0u64; n_unpred];
        if n_unpred > 0 {
            let mut plane = Vec::with_capacity(n_unpred);
            for j in 0..8 {
                huffman::decode_block_into(block, pos, &mut plane)?;
                if plane.len() != n_unpred {
                    return Err(CompressError::Corrupt(format!(
                        "delta tail byte plane {j} holds {} values, expected {n_unpred}",
                        plane.len()
                    )));
                }
                for (x, &b) in xors.iter_mut().zip(plane.iter()) {
                    if b > 0xff {
                        return Err(CompressError::Corrupt(format!(
                            "delta tail byte plane {j} symbol {b} out of range"
                        )));
                    }
                    *x |= u64::from(b) << (8 * j);
                }
            }
        }
        let mut values = Vec::with_capacity(n_unpred);
        let mut cur = 0usize;
        let mut prev = 0usize;
        for (p, &c) in codes.iter().enumerate() {
            let prev_zero = prev_codes[p] == 0;
            if c == 0 {
                let base = if prev_zero { prev_unpred[prev] } else { 0.0 };
                values.push(f64::from_bits(base.to_bits() ^ xors[cur]));
                cur += 1;
            }
            prev += usize::from(prev_zero);
        }
        Ok(values)
    }

    /// Decodes a delta chain back to the final snapshot's values.
    ///
    /// `links` is the chain in temporal order: an **anchor** stream
    /// first ([`DeltaMode::None`]), then each dependent delta stream up
    /// to the target snapshot.  Intermediate links replay their
    /// quantization codes and unpredictable values (plus, for
    /// log-transformed streams, their zero/sign bitmaps, which later
    /// links may inherit) without reconstructing grid values; the final
    /// link is reconstructed through the exact v4 decode path, so the
    /// result is bit-identical to a direct decode of that snapshot.
    ///
    /// # Errors
    /// Rejects empty chains, chains not starting at an anchor, order-2
    /// links without two prior links, version/shape mismatches between
    /// consecutive links, and any per-link corruption the stateless
    /// decoder would reject.
    pub fn decompress_chain(&self, links: &[Compressed]) -> Result<Vec<f64>> {
        let last = links
            .last()
            .ok_or_else(|| CompressError::Corrupt("empty checkpoint chain".into()))?;
        if links.len() == 1 {
            return self.decompress(last);
        }

        let mut prev1: Vec<u32> = Vec::new();
        let mut prev2: Vec<u32> = Vec::new();
        // The previous link's unpredictable values (one per reserved bin
        // in `prev1`): the base the next delta link's XOR tail codes
        // against.
        let mut prev_unpred: Vec<f64> = Vec::new();
        // The previous log link's zero/sign bitmaps, which a delta link
        // may inherit instead of carrying its own.
        let mut prev_side: Option<(Vec<u8>, Vec<u8>)> = None;
        let mut result = None;
        for (idx, link) in links.iter().enumerate() {
            let buf = &link.bytes;
            let mut pos = 0usize;
            let h = Self::parse_header(buf, &mut pos)?;
            if h.n != link.n_elements {
                return Err(CompressError::Corrupt(format!(
                    "chain link {idx}: element count mismatch: header {}, metadata {}",
                    h.n, link.n_elements
                )));
            }
            if h.version < 4 {
                return Err(CompressError::Corrupt(format!(
                    "chain link {idx}: version-{} streams cannot appear in a delta chain",
                    h.version
                )));
            }
            if idx == 0 && h.mode != DeltaMode::None {
                return Err(CompressError::Corrupt(
                    "delta chain must start at an anchor".into(),
                ));
            }
            if h.mode == DeltaMode::Order2 && idx < 2 {
                return Err(CompressError::Corrupt(format!(
                    "chain link {idx}: order-2 delta without two prior links"
                )));
            }
            let final_link = idx + 1 == links.len();

            match h.transform {
                t if t == Transform::Identity as u8 => {
                    prev_side = None;
                    Self::check_chain_shape(idx, h.mode, h.n, &prev1, &prev2)?;
                    if final_link {
                        result = Some(Self::decode_final_abs(
                            buf,
                            &mut pos,
                            h.n,
                            h.eb,
                            h.mode,
                            &prev1,
                            &prev2,
                            &prev_unpred,
                        )?);
                    } else {
                        let (codes, unpred) = Self::decode_codes(
                            buf,
                            &mut pos,
                            h.n,
                            h.mode,
                            &prev1,
                            &prev2,
                            &prev_unpred,
                        )?;
                        std::mem::swap(&mut prev1, &mut prev2);
                        prev1 = codes;
                        prev_unpred = unpred;
                    }
                }
                t if t == Transform::Log as u8 => {
                    let (zero_bytes, sign_bytes, n_logs) = if h.mode == DeltaMode::None {
                        let (z, s, n) = Self::read_log_side_channels(buf, &mut pos)?;
                        (z.to_vec(), s.to_vec(), n)
                    } else {
                        Self::read_log_side_channels_delta(
                            buf,
                            &mut pos,
                            idx,
                            prev_side.as_ref(),
                        )?
                    };
                    let log_eb = h.eb.ln_1p();
                    Self::check_chain_shape(idx, h.mode, n_logs, &prev1, &prev2)?;
                    if final_link {
                        let logs = Self::decode_final_abs(
                            buf,
                            &mut pos,
                            n_logs,
                            log_eb,
                            h.mode,
                            &prev1,
                            &prev2,
                            &prev_unpred,
                        )?;
                        result = Some(Self::expand_log(&zero_bytes, &sign_bytes, logs, h.n)?);
                    } else {
                        let (codes, unpred) = Self::decode_codes(
                            buf,
                            &mut pos,
                            n_logs,
                            h.mode,
                            &prev1,
                            &prev2,
                            &prev_unpred,
                        )?;
                        std::mem::swap(&mut prev1, &mut prev2);
                        prev1 = codes;
                        prev_unpred = unpred;
                    }
                    prev_side = Some((zero_bytes, sign_bytes));
                }
                other => {
                    return Err(CompressError::Corrupt(format!(
                        "unknown transform tag {other}"
                    )))
                }
            }
        }
        Ok(result.expect("non-empty chain produced a final link"))
    }

    /// Validates that the retained prior-code buffers match the shape a
    /// delta link expects (anchors need no priors).
    fn check_chain_shape(
        idx: usize,
        mode: DeltaMode,
        code_n: usize,
        prev1: &[u32],
        prev2: &[u32],
    ) -> Result<()> {
        if mode.prior_snapshots() >= 1 && prev1.len() != code_n {
            return Err(CompressError::Corrupt(format!(
                "chain link {idx}: delta stream over {code_n} codes, prior has {}",
                prev1.len()
            )));
        }
        if mode.prior_snapshots() >= 2 && prev2.len() != code_n {
            return Err(CompressError::Corrupt(format!(
                "chain link {idx}: order-2 stream over {code_n} codes, second prior has {}",
                prev2.len()
            )));
        }
        Ok(())
    }

    /// Replays one intermediate chain link to its quantization codes and
    /// unpredictable values (Huffman decode + un-delta; the values are
    /// materialized because the next link's XOR tail codes against them).
    #[allow(clippy::too_many_arguments)]
    fn decode_codes(
        buf: &[u8],
        pos: &mut usize,
        code_n: usize,
        mode: DeltaMode,
        prev1: &[u32],
        prev2: &[u32],
        prev_unpred: &[f64],
    ) -> Result<(Vec<u32>, Vec<f64>)> {
        let offsets = (mode != DeltaMode::None).then(|| Self::unpred_offsets(prev1));
        parblock::decode_blocks2(buf, pos, code_n.div_ceil(PAR_BLOCK), code_n, "SZ", |b, block| {
            let start = b * PAR_BLOCK;
            let block_n = (((b + 1) * PAR_BLOCK).min(code_n)) - start;
            QUANT_SCRATCH.with(|q| {
                let syms = &mut q.borrow_mut();
                let bpos = &mut 0usize;
                huffman::decode_block_into(block, bpos, syms)?;
                if syms.len() != block_n {
                    return Err(CompressError::Corrupt(format!(
                        "expected {block_n} quantization codes, found {}",
                        syms.len()
                    )));
                }
                let mut codes = Vec::with_capacity(block_n);
                match mode {
                    DeltaMode::None => codes.extend_from_slice(syms),
                    DeltaMode::Order1 => {
                        delta::decode_order1(syms, &prev1[start..start + block_n], &mut codes)
                    }
                    DeltaMode::Order2 => delta::decode_order2(
                        syms,
                        &prev1[start..start + block_n],
                        &prev2[start..start + block_n],
                        &mut codes,
                    ),
                }
                let unpred = match &offsets {
                    None => Self::read_unpred_verbatim(block, bpos)?,
                    Some(offs) => Self::read_unpred_delta(
                        block,
                        bpos,
                        &codes,
                        &prev1[start..start + block_n],
                        &prev_unpred[offs[b]..offs[b + 1]],
                    )?,
                };
                Ok((codes, unpred))
            })
        })
    }

    /// Decodes the final chain link to values: Huffman symbols, un-delta
    /// to the snapshot's own v4 codes, un-XOR of the delta tail, then the
    /// shared grid-space reconstruction.
    #[allow(clippy::too_many_arguments)]
    fn decode_final_abs(
        buf: &[u8],
        pos: &mut usize,
        n: usize,
        abs_eb: f64,
        mode: DeltaMode,
        prev1: &[u32],
        prev2: &[u32],
        prev_unpred: &[f64],
    ) -> Result<Vec<f64>> {
        let offsets = (mode != DeltaMode::None).then(|| Self::unpred_offsets(prev1));
        parblock::decode_blocks(buf, pos, n.div_ceil(PAR_BLOCK), n, "SZ", |b, block| {
            let start = b * PAR_BLOCK;
            let block_n = (((b + 1) * PAR_BLOCK).min(n)) - start;
            QUANT_SCRATCH.with(|q| {
                let syms = &mut q.borrow_mut();
                let bpos = &mut 0usize;
                huffman::decode_block_into(block, bpos, syms)?;
                if syms.len() != block_n {
                    return Err(CompressError::Corrupt(format!(
                        "expected {block_n} quantization codes, found {}",
                        syms.len()
                    )));
                }
                let mut codes = Vec::with_capacity(block_n);
                match mode {
                    DeltaMode::None => codes.extend_from_slice(syms),
                    DeltaMode::Order1 => {
                        delta::decode_order1(syms, &prev1[start..start + block_n], &mut codes)
                    }
                    DeltaMode::Order2 => delta::decode_order2(
                        syms,
                        &prev1[start..start + block_n],
                        &prev2[start..start + block_n],
                        &mut codes,
                    ),
                }
                match &offsets {
                    None => {
                        let n_unpred = bytes::get_varint(block, bpos)? as usize;
                        let unpred_len = n_unpred.checked_mul(8).ok_or_else(|| {
                            CompressError::Corrupt("unpredictable count overflow".into())
                        })?;
                        let unpred_bytes = bytes::get_slice(block, bpos, unpred_len)?;
                        Self::reconstruct_block_v4(&codes, unpred_bytes, abs_eb)
                    }
                    Some(offs) => {
                        let unpred = Self::read_unpred_delta(
                            block,
                            bpos,
                            &codes,
                            &prev1[start..start + block_n],
                            &prev_unpred[offs[b]..offs[b + 1]],
                        )?;
                        let mut it = unpred.iter().copied();
                        Self::reconstruct_block_from(&codes, &mut it, abs_eb)
                    }
                }
            })
        })
    }

    /// Reads a block's verbatim-value tail into owned values
    /// (bounds-checked).
    fn read_unpred_verbatim(block: &[u8], pos: &mut usize) -> Result<Vec<f64>> {
        let n_unpred = bytes::get_varint(block, pos)? as usize;
        let len = n_unpred
            .checked_mul(8)
            .ok_or_else(|| CompressError::Corrupt("unpredictable count overflow".into()))?;
        let unpred_bytes = bytes::get_slice(block, pos, len)?;
        Ok(unpred_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Per-block offsets into a snapshot's unpredictable values: entry
    /// `b` counts the reserved (code 0) bins before block `b`; the final
    /// entry is the total.
    fn unpred_offsets(codes: &[u32]) -> Vec<usize> {
        let nblocks = codes.len().div_ceil(PAR_BLOCK);
        let mut offs = Vec::with_capacity(nblocks + 1);
        offs.push(0usize);
        let mut zeros = 0usize;
        for (i, &c) in codes.iter().enumerate() {
            zeros += usize::from(c == 0);
            if (i + 1) % PAR_BLOCK == 0 {
                offs.push(zeros);
            }
        }
        if offs.len() < nblocks + 1 {
            offs.push(zeros);
        }
        offs
    }
}

/// Parsed common stream prologue.
struct StreamHeader {
    version: u8,
    n: usize,
    transform: u8,
    eb: f64,
    mode: DeltaMode,
}

/// Identity of the coded sub-stream a retained code buffer belongs to; a
/// snapshot whose key differs (shape or transform changed) cannot be
/// delta-coded against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StateKey {
    transform: u8,
    n_codes: usize,
}

/// One block's candidate encodings plus its raw codes and unpredictable
/// values (for the state rotation).
struct TemporalBlock {
    codes: Vec<u32>,
    unpred: Vec<f64>,
    direct: Vec<u8>,
    delta1: Option<Vec<u8>>,
    delta2: Option<Vec<u8>>,
}

/// Retained prior-snapshot quantization codes for one variable, enabling
/// temporal delta coding of the next snapshot.  `codes1` is the newest
/// prior; `codes2` the one before it (order-2 extrapolation), valid only
/// while `prev2_valid` and the shapes agree.  `unpred1` holds the newest
/// prior's unpredictable values (one per reserved bin in `codes1`) — the
/// base the next delta stream's XOR tail codes against — and `zeros1` /
/// `signs1` its point-wise-relative bitmaps, which the next delta stream
/// inherits when unchanged.  Reset (or drop) the state whenever the
/// chain breaks — an evicted base, a failed commit, a recovery — and the
/// next snapshot is forced to anchor.
#[derive(Debug, Clone, Default)]
pub struct SzTemporalState {
    key: Option<StateKey>,
    prev2_valid: bool,
    codes1: Vec<u32>,
    codes2: Vec<u32>,
    unpred1: Vec<f64>,
    zeros1: Vec<u8>,
    signs1: Vec<u8>,
}

impl SzTemporalState {
    /// Creates an empty state (no priors: the first snapshot anchors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all retained prior-snapshot codes; the next temporal
    /// compression emits an anchor.
    pub fn reset(&mut self) {
        self.key = None;
        self.prev2_valid = false;
        self.codes1.clear();
        self.codes2.clear();
        self.unpred1.clear();
        self.zeros1.clear();
        self.signs1.clear();
    }

    /// True if a prior snapshot's codes are retained (the next
    /// shape-compatible snapshot may delta-code).
    pub fn has_prior(&self) -> bool {
        self.key.is_some()
    }
}

/// Reads the [`DeltaMode`] of an SZ stream from its header without
/// decoding the payload (pre-v5 streams report [`DeltaMode::None`]).
pub fn stream_delta_mode(stream: &[u8]) -> Result<DeltaMode> {
    let mut pos = 0usize;
    SzCompressor::parse_header(stream, &mut pos).map(|h| h.mode)
}

/// Four-way interleaved histogram scatter over the live symbol span
/// `[lo, hi]` — the same store-dependency-breaking pattern as the
/// quantizer's fused scatter pass, reused for the delta symbols (runs of
/// zero deltas are the common case on converging solver snapshots).
fn scatter_hist(syms: &[u32], lo: u32, hi: u32, hist: &mut [u32]) {
    let base = lo as usize;
    let span = (hi - lo) as usize + 1;
    let mut sub = vec![0u32; span * 4];
    let mut chunks = syms.chunks_exact(4);
    for c in &mut chunks {
        sub[(c[0] as usize - base) * 4] += 1;
        sub[(c[1] as usize - base) * 4 + 1] += 1;
        sub[(c[2] as usize - base) * 4 + 2] += 1;
        sub[(c[3] as usize - base) * 4 + 3] += 1;
    }
    for &s in chunks.remainder() {
        sub[(s as usize - base) * 4] += 1;
    }
    for (i, s) in sub.chunks_exact(4).enumerate() {
        hist[base + i] += s[0] + s[1] + s[2] + s[3];
    }
}

impl LossyCompressor for SzCompressor {
    fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let mut out = Vec::new();
        self.compress_to(data, bound, &mut out)?;
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn compress_into(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<usize> {
        self.compress_to(data, bound, out)?;
        Ok(data.len())
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let h = SzCompressor::parse_header(buf, &mut pos)?;
        if h.mode != DeltaMode::None {
            return Err(CompressError::Corrupt(format!(
                "version-5 {:?} delta stream needs its chain; decode via decompress_chain",
                h.mode
            )));
        }
        if h.n != compressed.n_elements {
            return Err(CompressError::Corrupt(format!(
                "element count mismatch: header {}, metadata {}",
                h.n, compressed.n_elements
            )));
        }

        match h.transform {
            t if t == Transform::Identity as u8 => {
                SzCompressor::decompress_abs(buf, &mut pos, h.n, h.eb, h.version)
            }
            t if t == Transform::Log as u8 => {
                // The side channels are decoded straight from the borrowed
                // stream slices — no intermediate copies.
                let (zero_bytes, sign_bytes, n_logs) =
                    SzCompressor::read_log_side_channels(buf, &mut pos)?;
                let log_eb = h.eb.ln_1p();
                let logs = SzCompressor::decompress_abs(buf, &mut pos, n_logs, log_eb, h.version)?;
                SzCompressor::expand_log(zero_bytes, sign_bytes, logs, h.n)
            }
            other => Err(CompressError::Corrupt(format!(
                "unknown transform tag {other}"
            ))),
        }
    }

    fn name(&self) -> &'static str {
        "sz"
    }
}

/// Legacy stream writers kept so the backwards-compatibility tests can
/// fabricate version-3 streams exactly as earlier releases wrote them.
#[doc(hidden)]
pub mod legacy {
    use super::*;

    /// The v3 reconstruct-then-predict quantizer, byte-identical to the
    /// encoder that shipped with stream version 3.
    fn quantize_block_v3(values: &[f64], abs_eb: f64, quant: &mut Vec<u32>, unpred: &mut Vec<f64>) {
        let two_eb = 2.0 * abs_eb;
        let mut prev = 0.0f64;
        let mut prev2 = 0.0f64;
        for (i, &x) in values.iter().enumerate() {
            let pred = match i {
                0 => 0.0,
                1 => prev,
                _ => 2.0 * prev - prev2,
            };
            let diff = x - pred;
            let bin = (diff / two_eb).round();
            let reconstructed = pred + bin * two_eb;
            let in_range = bin.abs() < (QUANT_RADIUS as f64);
            let accurate = (x - reconstructed).abs() <= abs_eb;
            if in_range && accurate {
                quant.push((bin as i64 + QUANT_RADIUS) as u32 + 1);
                prev2 = prev;
                prev = reconstructed;
            } else {
                quant.push(0);
                unpred.push(x);
                prev2 = prev;
                prev = x;
            }
        }
    }

    /// Version-3 equivalent of [`SzCompressor::encode_block_abs`].
    fn encode_block_abs_v3(values: &[f64], abs_eb: f64) -> Vec<u8> {
        let mut quant = Vec::new();
        let mut unpred = Vec::new();
        quantize_block_v3(values, abs_eb, &mut quant, &mut unpred);
        let mut out = Vec::with_capacity(values.len() / 2 + 32);
        let huff = huffman::encode_block_legacy(&quant);
        bytes::put_u64(&mut out, huff.len() as u64);
        out.extend_from_slice(&huff);
        bytes::put_u64(&mut out, unpred.len() as u64);
        for v in &unpred {
            bytes::put_f64(&mut out, *v);
        }
        out
    }

    fn compress_abs_v3(values: &[f64], abs_eb: f64, out: &mut Vec<u8>) {
        let n = values.len();
        parblock::encode_blocks(out, n.div_ceil(PAR_BLOCK), |b| {
            let start = b * PAR_BLOCK;
            let end = ((b + 1) * PAR_BLOCK).min(n);
            encode_block_abs_v3(&values[start..end], abs_eb)
        });
    }

    /// Compresses `data` into a version-3 stream, byte-identical to what
    /// the previous release's `SzCompressor::compress` produced.
    pub fn compress_v3(data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }
        let mut out = Vec::new();
        out.push(CODEC_ID);
        out.push(3u8);
        bytes::put_u64(&mut out, data.len() as u64);
        match bound {
            ErrorBound::Abs(abs) => {
                out.push(Transform::Identity as u8);
                bytes::put_f64(&mut out, abs);
                compress_abs_v3(data, abs, &mut out);
            }
            ErrorBound::ValueRangeRel(rel) => {
                let (min, max) = min_max(data);
                let range = (max - min).abs();
                let abs = if range > 0.0 {
                    rel * range
                } else {
                    rel.max(f64::MIN_POSITIVE)
                };
                out.push(Transform::Identity as u8);
                bytes::put_f64(&mut out, abs);
                compress_abs_v3(data, abs, &mut out);
            }
            ErrorBound::PointwiseRel(rel) => {
                out.push(Transform::Log as u8);
                let log_eb = rel.ln_1p();
                if !(log_eb.is_finite() && log_eb > 0.0) {
                    return Err(CompressError::InvalidBound(rel));
                }
                bytes::put_f64(&mut out, rel);
                let mut signs = BitWriter::new();
                let mut zeros = BitWriter::new();
                let mut logs: Vec<f64> = Vec::with_capacity(data.len());
                for &x in data {
                    zeros.write_bit(x == 0.0);
                    signs.write_bit(x.is_sign_negative());
                    if x != 0.0 {
                        logs.push(x.abs().ln());
                    }
                }
                let zero_bytes = zeros.into_bytes();
                let sign_bytes = signs.into_bytes();
                bytes::put_u64(&mut out, zero_bytes.len() as u64);
                out.extend_from_slice(&zero_bytes);
                bytes::put_u64(&mut out, sign_bytes.len() as u64);
                out.extend_from_slice(&sign_bytes);
                bytes::put_u64(&mut out, logs.len() as u64);
                compress_abs_v3(&logs, log_eb, &mut out);
            }
        }
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }
}

/// 8-lane min/max over one slice.  A single `(min, max)` accumulator pair
/// serialises the whole scan behind the 3–4-cycle latency of `minsd`/
/// `maxsd`; eight independent lane accumulators let the compiler issue
/// packed compares at full width instead.  `f64::min`/`f64::max` are
/// commutative and associative over any multiset (NaNs are absorbed, and a
/// `-0.0`-vs-`+0.0` tie is numerically indistinguishable downstream where
/// only `max − min` is used), so the lane-order reduction returns the same
/// range as a sequential fold.
fn min_max_lanes(data: &[f64]) -> (f64, f64) {
    let mut mn = [f64::INFINITY; 8];
    let mut mx = [f64::NEG_INFINITY; 8];
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        for i in 0..8 {
            mn[i] = mn[i].min(c[i]);
            mx[i] = mx[i].max(c[i]);
        }
    }
    for &v in chunks.remainder() {
        mn[0] = mn[0].min(v);
        mx[0] = mx[0].max(v);
    }
    (
        mn.iter().copied().fold(f64::INFINITY, f64::min),
        mx.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    )
}

fn min_max(data: &[f64]) -> (f64, f64) {
    if data.len() >= PAR_BLOCK {
        // Pool-parallel above one block so the range pre-pass of the
        // value-range-relative mode doesn't serialise the compressor
        // (lane-parallel min/max per chunk, combined in chunk order —
        // deterministic at any thread count).
        rayon::run_chunks(data.len(), rayon::DEFAULT_MIN_CHUNK, |s, e| {
            min_max_lanes(&data[s..e])
        })
        .into_iter()
        .fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(amn, amx), (bmn, bmx)| (amn.min(bmn), amx.max(bmx)),
        )
    } else {
        min_max_lanes(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * t).sin() + 0.3 * (11.0 * t).cos() + 2.0
            })
            .collect()
    }

    fn check_bound(data: &[f64], restored: &[f64], bound: ErrorBound) {
        assert_eq!(data.len(), restored.len());
        let range = {
            let (mn, mx) = min_max(data);
            mx - mn
        };
        for (i, (&a, &b)) in data.iter().zip(restored.iter()).enumerate() {
            let allowed = bound.allowed_abs_error(a, range) * (1.0 + 1e-12) + 1e-300;
            assert!(
                (a - b).abs() <= allowed,
                "element {i}: |{a} - {b}| = {} > {allowed}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn abs_bound_honoured_on_smooth_data() {
        let data = smooth_signal(10_000);
        let sz = SzCompressor::new();
        for eb in [1e-2, 1e-4, 1e-6, 1e-10] {
            let bound = ErrorBound::Abs(eb);
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
        }
    }

    #[test]
    fn value_range_rel_bound_honoured() {
        let data = smooth_signal(5_000);
        let sz = SzCompressor::new();
        let bound = ErrorBound::ValueRangeRel(1e-4);
        let c = sz.compress(&data, bound).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, bound);
    }

    #[test]
    fn pointwise_rel_bound_honoured() {
        // Mix of magnitudes, zeros and negatives.
        let mut data = smooth_signal(3_000);
        for (i, v) in data.iter_mut().enumerate() {
            *v = (*v - 2.0) * 10f64.powi((i % 7) as i32 - 3);
            if i % 97 == 0 {
                *v = 0.0;
            }
            if i % 3 == 0 {
                *v = -*v;
            }
        }
        let sz = SzCompressor::new();
        for eb in [1e-2, 1e-4, 1e-6] {
            let bound = ErrorBound::PointwiseRel(eb);
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
        }
    }

    #[test]
    fn smooth_data_compresses_much_better_than_lossless() {
        let data = smooth_signal(100_000);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::ValueRangeRel(1e-4)).unwrap();
        // The paper reports 20–60x on solver vectors; smooth analytic data
        // should comfortably exceed 10x.
        assert!(
            c.ratio() > 10.0,
            "expected ratio > 10, got {:.2}",
            c.ratio()
        );
    }

    #[test]
    fn random_data_still_respects_bound() {
        // Worst case for prediction: white noise.
        let mut data = vec![0.0f64; 4096];
        let mut state = 0x12345678u64;
        for v in data.iter_mut() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            *v = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
                - 0.5;
        }
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-3);
        let c = sz.compress(&data, bound).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, bound);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let sz = SzCompressor::new();
        for data in [vec![], vec![1.5], vec![1.5, -2.5]] {
            let c = sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap();
            let r = sz.decompress(&c).unwrap();
            assert_eq!(r.len(), data.len());
            check_bound(&data, &r, ErrorBound::Abs(1e-6));
        }
    }

    #[test]
    fn constant_data() {
        let data = vec![3.25f64; 1000];
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(1e-8),
            ErrorBound::ValueRangeRel(1e-4),
            ErrorBound::PointwiseRel(1e-4),
        ] {
            let c = sz.compress(&data, bound).unwrap();
            let r = sz.decompress(&c).unwrap();
            check_bound(&data, &r, bound);
            assert!(c.ratio() > 10.0, "constant data should compress massively");
        }
    }

    #[test]
    fn compress_into_appends_identical_stream() {
        let data = smooth_signal(4_000);
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let c = sz.compress(&data, bound).unwrap();

        let mut buf = vec![0xEE, 0xFF];
        let n = sz.compress_into(&data, bound, &mut buf).unwrap();
        assert_eq!(n, data.len());
        assert_eq!(&buf[..2], &[0xEE, 0xFF]);
        assert_eq!(&buf[2..], c.bytes.as_slice());
    }

    #[test]
    fn v3_streams_still_decode() {
        let mut data = smooth_signal(3_000);
        for (i, v) in data.iter_mut().enumerate() {
            if i % 113 == 0 {
                *v = 0.0;
            }
            if i % 7 == 0 {
                *v = -*v;
            }
        }
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(1e-6),
            ErrorBound::ValueRangeRel(1e-5),
            ErrorBound::PointwiseRel(1e-4),
        ] {
            let v3 = legacy::compress_v3(&data, bound).unwrap();
            assert_eq!(v3.bytes[1], 3, "legacy writer must emit version 3");
            let from_v3 = sz.decompress(&v3).unwrap();
            check_bound(&data, &from_v3, bound);

            // The current writer emits v4, which honours the same bound
            // (the v4 grid-space reconstruction is a different — equally
            // valid — point inside the bound, so only the contract is
            // compared, not the bits).
            let v4 = sz.compress(&data, bound).unwrap();
            assert_eq!(v4.bytes[1], 4);
            let from_v4 = sz.decompress(&v4).unwrap();
            check_bound(&data, &from_v4, bound);
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let sz = SzCompressor::new();
        let data = [1.0, 2.0];
        assert!(sz.compress(&data, ErrorBound::Abs(0.0)).is_err());
        assert!(sz.compress(&data, ErrorBound::Abs(-1.0)).is_err());
        assert!(sz.compress(&data, ErrorBound::Abs(f64::NAN)).is_err());
        assert!(sz.compress(&data, ErrorBound::PointwiseRel(0.0)).is_err());
    }

    #[test]
    fn corrupt_streams_detected() {
        let sz = SzCompressor::new();
        let data = smooth_signal(256);
        let c = sz.compress(&data, ErrorBound::Abs(1e-5)).unwrap();

        // Wrong codec id.
        let mut wrong = c.clone();
        wrong.bytes[0] = 99;
        assert!(matches!(
            sz.decompress(&wrong),
            Err(CompressError::WrongCodec { .. })
        ));

        // Unknown version.
        let mut vers = c.clone();
        vers.bytes[1] = 99;
        assert!(sz.decompress(&vers).is_err());

        // Truncation.
        let mut trunc = c.clone();
        trunc.bytes.truncate(c.bytes.len() / 2);
        assert!(sz.decompress(&trunc).is_err());

        // Element-count mismatch.
        let mut mism = c;
        mism.n_elements += 1;
        assert!(sz.decompress(&mism).is_err());
    }

    #[test]
    fn name_is_sz() {
        assert_eq!(SzCompressor::new().name(), "sz");
    }

    /// Correlated snapshot sequence: a *rough* persistent base field (so
    /// spatial prediction is mediocre and the direct codes carry real
    /// entropy) plus a slowly drifting smooth perturbation — the regime
    /// where temporal deltas pay, like successive solver iterates whose
    /// error field persists between checkpoints.
    fn snapshots(n: usize, count: usize) -> Vec<Vec<f64>> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rough = vec![0.0f64; n];
        for v in rough.iter_mut() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            *v = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        }
        let base = smooth_signal(n);
        (0..count)
            .map(|k| {
                let a = 1e-4 * (k as f64 + 1.0);
                base.iter()
                    .zip(rough.iter())
                    .enumerate()
                    .map(|(i, (&v, &r))| {
                        let t = i as f64 / n as f64;
                        v + 1e-2 * r + a * (5.0 * std::f64::consts::PI * t).cos()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn temporal_anchor_decodes_like_v4() {
        let data = smooth_signal(10_000);
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let mut state = SzTemporalState::new();
        let mut bytes = Vec::new();
        let mode = sz
            .compress_temporal_into(&data, bound, DeltaMode::Order1, true, &mut state, &mut bytes)
            .unwrap();
        assert_eq!(mode, DeltaMode::None, "forced anchor must be direct");
        assert_eq!(bytes[1], 5, "temporal streams carry version 5");
        assert_eq!(stream_delta_mode(&bytes).unwrap(), DeltaMode::None);
        let anchor = Compressed {
            bytes,
            n_elements: data.len(),
        };
        // A v5 anchor is self-contained and decodes bit-identically to
        // the plain v4 stream of the same data.
        let via_v5 = sz.decompress(&anchor).unwrap();
        let via_v4 = sz.decompress(&sz.compress(&data, bound).unwrap()).unwrap();
        assert_eq!(via_v5, via_v4);
    }

    #[test]
    fn delta_chain_replay_is_bit_identical_to_direct_decode() {
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(1e-6),
            ErrorBound::ValueRangeRel(1e-5),
            ErrorBound::PointwiseRel(1e-4),
        ] {
            for max_order in [DeltaMode::Order1, DeltaMode::Order2] {
                let snaps = snapshots(9_000, 4);
                let mut state = SzTemporalState::new();
                let mut chain: Vec<Compressed> = Vec::new();
                for (k, snap) in snaps.iter().enumerate() {
                    let mut bytes = Vec::new();
                    let mode = sz
                        .compress_temporal_into(
                            snap, bound, max_order, k == 0, &mut state, &mut bytes,
                        )
                        .unwrap();
                    if k == 0 {
                        assert_eq!(mode, DeltaMode::None);
                    }
                    chain.push(Compressed {
                        bytes,
                        n_elements: snap.len(),
                    });

                    // Chain replay must reconstruct snapshot k's values
                    // bit-identically to a direct (stateless) decode of
                    // the same snapshot.
                    let replayed = sz.decompress_chain(&chain).unwrap();
                    let direct = sz.decompress(&sz.compress(snap, bound).unwrap()).unwrap();
                    assert_eq!(
                        replayed, direct,
                        "bound {bound:?}, max_order {max_order:?}, link {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn correlated_snapshots_choose_delta_and_shrink() {
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let snaps = snapshots(50_000, 2);
        let mut state = SzTemporalState::new();
        let mut anchor = Vec::new();
        sz.compress_temporal_into(
            &snaps[0],
            bound,
            DeltaMode::Order1,
            true,
            &mut state,
            &mut anchor,
        )
        .unwrap();
        let mut delta_bytes = Vec::new();
        let mode = sz
            .compress_temporal_into(
                &snaps[1],
                bound,
                DeltaMode::Order1,
                false,
                &mut state,
                &mut delta_bytes,
            )
            .unwrap();
        assert_eq!(mode, DeltaMode::Order1, "correlated snapshots should delta");
        assert_eq!(stream_delta_mode(&delta_bytes).unwrap(), DeltaMode::Order1);
        let direct = sz.compress(&snaps[1], bound).unwrap();
        assert!(
            delta_bytes.len() < direct.bytes.len(),
            "delta stream ({}) must be smaller than direct ({})",
            delta_bytes.len(),
            direct.bytes.len()
        );
    }

    #[test]
    fn shape_change_and_reset_force_anchors() {
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let mut state = SzTemporalState::new();
        let a = smooth_signal(4_000);
        let b = smooth_signal(5_000);
        let mut out = Vec::new();
        sz.compress_temporal_into(&a, bound, DeltaMode::Order1, false, &mut state, &mut out)
            .unwrap();
        assert!(state.has_prior());
        // Different element count: the state key mismatches, so the next
        // stream anchors even though a prior is retained.
        out.clear();
        let mode = sz
            .compress_temporal_into(&b, bound, DeltaMode::Order1, false, &mut state, &mut out)
            .unwrap();
        assert_eq!(mode, DeltaMode::None);
        // Reset drops the prior outright.
        state.reset();
        assert!(!state.has_prior());
        out.clear();
        let mode = sz
            .compress_temporal_into(&b, bound, DeltaMode::Order1, false, &mut state, &mut out)
            .unwrap();
        assert_eq!(mode, DeltaMode::None);
    }

    #[test]
    fn stateless_decompress_rejects_delta_streams() {
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        let snaps = snapshots(6_000, 2);
        let mut state = SzTemporalState::new();
        let mut chain = Vec::new();
        for (k, snap) in snaps.iter().enumerate() {
            let mut bytes = Vec::new();
            sz.compress_temporal_into(snap, bound, DeltaMode::Order1, k == 0, &mut state, &mut bytes)
                .unwrap();
            chain.push(Compressed {
                bytes,
                n_elements: snap.len(),
            });
        }
        assert_eq!(stream_delta_mode(&chain[1].bytes).unwrap(), DeltaMode::Order1);
        assert!(
            sz.decompress(&chain[1]).is_err(),
            "a delta stream must not decode without its chain"
        );
        // And a chain that does not start at an anchor is rejected.
        assert!(sz.decompress_chain(&chain[1..]).is_err());
        assert!(sz.decompress_chain(&[]).is_err());
    }

    #[test]
    fn empty_and_tiny_temporal_streams() {
        let sz = SzCompressor::new();
        let bound = ErrorBound::Abs(1e-6);
        for data in [vec![], vec![1.5], vec![1.5, -2.5]] {
            let mut state = SzTemporalState::new();
            let mut chain = Vec::new();
            for k in 0..3 {
                let mut bytes = Vec::new();
                sz.compress_temporal_into(
                    &data,
                    bound,
                    DeltaMode::Order2,
                    k == 0,
                    &mut state,
                    &mut bytes,
                )
                .unwrap();
                chain.push(Compressed {
                    bytes,
                    n_elements: data.len(),
                });
            }
            let replayed = sz.decompress_chain(&chain).unwrap();
            let direct = sz.decompress(&sz.compress(&data, bound).unwrap()).unwrap();
            assert_eq!(replayed, direct);
        }
    }
}
