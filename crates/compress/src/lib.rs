//! # lcr-compress
//!
//! Floating-point compressors for the lossy-checkpointing reproduction of
//! *"Improving Performance of Iterative Methods by Lossy Checkpointing"*
//! (Tao et al., HPDC 2018).
//!
//! The paper compresses the solver's dynamic variables (1-D `f64` vectors)
//! with the SZ error-bounded lossy compressor before writing checkpoints,
//! and compares against Gzip lossless compression and uncompressed
//! checkpoints.  This crate re-implements that compressor stack from
//! scratch:
//!
//! * [`sz`] — an SZ-style prediction-based, error-bounded lossy compressor:
//!   Lorenzo/linear prediction + linear-scaling quantization + Huffman
//!   coding of the quantization bins, with unpredictable values stored
//!   verbatim.  Supports absolute, point-wise-relative (the paper's
//!   definition) and value-range-relative error bounds.
//! * [`zfp`] — a ZFP-style transform-based lossy compressor (1-D blocks,
//!   fixed-point block conversion, orthogonal lifting transform, bit-plane
//!   truncation) used for the compressor-choice ablation.
//! * [`lossless`] — lossless floating-point codecs standing in for Gzip:
//!   an FPC-style XOR/leading-zero codec and an LZSS byte codec, plus a
//!   combined pipeline.
//! * [`delta`] — temporal delta codec for SZ quantization-code streams:
//!   checkpoint *k*'s codes coded as order-1/order-2 deltas against
//!   checkpoint *k−1*'s, powering the anchored delta-chain checkpoint
//!   streams (SZ stream version 5).
//! * [`huffman`] / [`bitstream`] — the entropy-coding substrate shared by
//!   the lossy compressors.
//!
//! Every lossy compressor in this crate upholds the **error-bound
//! contract** (checked by property tests): for each element `x_i` of the
//! input and `x'_i` of the decompressed output,
//!
//! * `Abs(eb)`:            `|x_i − x'_i| ≤ eb`
//! * `PointwiseRel(eb)`:   `|x_i − x'_i| ≤ eb · |x_i|`
//! * `ValueRangeRel(eb)`:  `|x_i − x'_i| ≤ eb · (max(x) − min(x))`
//!
//! which is precisely the property Theorems 2 and 3 of the paper rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod delta;
pub mod huffman;
pub mod lossless;
mod parblock;
pub mod sz;
pub mod zfp;

use serde::{Deserialize, Serialize};

/// Error-bound mode for lossy compression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorBound {
    /// Absolute bound: `|x − x'| ≤ eb`.
    Abs(f64),
    /// Point-wise relative bound: `|x − x'| ≤ eb·|x|` (the paper's
    /// definition of "relative error bound", §4.4.1).
    PointwiseRel(f64),
    /// Value-range relative bound: `|x − x'| ≤ eb·(max−min)` (SZ's classic
    /// "REL" mode).
    ValueRangeRel(f64),
}

impl ErrorBound {
    /// The numeric bound parameter regardless of mode.
    pub fn value(&self) -> f64 {
        match *self {
            ErrorBound::Abs(e) | ErrorBound::PointwiseRel(e) | ErrorBound::ValueRangeRel(e) => e,
        }
    }

    /// Returns the maximum allowed absolute deviation for element `x` given
    /// the whole-array value range.  Used to *verify* the contract.
    pub fn allowed_abs_error(&self, x: f64, value_range: f64) -> f64 {
        match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::PointwiseRel(e) => e * x.abs(),
            ErrorBound::ValueRangeRel(e) => e * value_range,
        }
    }
}

/// Outcome of one compression call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compressed {
    /// The encoded byte stream (self-describing; feed back to `decompress`).
    pub bytes: Vec<u8>,
    /// Number of `f64` elements in the original input.
    pub n_elements: usize,
}

impl Compressed {
    /// Size of the compressed representation in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Size of the original data in bytes.
    pub fn original_bytes(&self) -> usize {
        self.n_elements * std::mem::size_of::<f64>()
    }

    /// Compression ratio (original / compressed); returns 0 for empty
    /// streams so the value is always finite.
    pub fn ratio(&self) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        self.original_bytes() as f64 / self.bytes.len() as f64
    }
}

/// Errors produced by the compressors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The compressed stream is truncated or corrupt.
    Corrupt(String),
    /// The requested error bound is not usable (non-positive or NaN).
    InvalidBound(f64),
    /// The stream was produced by a different codec.
    WrongCodec {
        /// Codec id found in the header.
        found: u8,
        /// Codec id expected by the decoder.
        expected: u8,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Corrupt(msg) => write!(f, "corrupt compressed stream: {msg}"),
            CompressError::InvalidBound(eb) => write!(f, "invalid error bound: {eb}"),
            CompressError::WrongCodec { found, expected } => {
                write!(f, "wrong codec id: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Result alias for compressor operations.
pub type Result<T> = std::result::Result<T, CompressError>;

/// A lossy floating-point compressor with an error-bound guarantee.
pub trait LossyCompressor: Send + Sync {
    /// Compresses `data` honouring `bound`.
    ///
    /// # Errors
    /// Returns [`CompressError::InvalidBound`] for non-positive or NaN
    /// bounds.
    fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<Compressed>;

    /// Compresses `data` honouring `bound`, appending the encoded stream to
    /// `out` and returning the element count — the zero-copy path the
    /// checkpoint layer uses to encode straight into a reusable checkpoint
    /// buffer.  The SZ and ZFP codecs write directly into `out`; the
    /// default implementation falls back to [`LossyCompressor::compress`]
    /// plus one copy.
    ///
    /// # Errors
    /// Returns [`CompressError::InvalidBound`] for non-positive or NaN
    /// bounds.
    fn compress_into(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<usize> {
        let compressed = self.compress(data, bound)?;
        out.extend_from_slice(&compressed.bytes);
        Ok(compressed.n_elements)
    }

    /// Decompresses a stream produced by [`LossyCompressor::compress`].
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] or [`CompressError::WrongCodec`]
    /// for invalid streams.
    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>>;

    /// Short human-readable name ("sz", "zfp").
    fn name(&self) -> &'static str;
}

/// A lossless byte/floating-point compressor.
pub trait LosslessCompressor: Send + Sync {
    /// Compresses `data` exactly.
    ///
    /// # Errors
    /// Currently infallible for in-memory inputs but kept fallible for
    /// symmetry with the lossy trait.
    fn compress(&self, data: &[f64]) -> Result<Compressed>;

    /// Compresses `data` exactly, appending the encoded stream to `out`
    /// and returning the element count (see
    /// [`LossyCompressor::compress_into`]).
    ///
    /// # Errors
    /// Propagates [`LosslessCompressor::compress`] errors.
    fn compress_into(&self, data: &[f64], out: &mut Vec<u8>) -> Result<usize> {
        let compressed = self.compress(data)?;
        out.extend_from_slice(&compressed.bytes);
        Ok(compressed.n_elements)
    }

    /// Decompresses, recovering the input bit-exactly.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] for invalid streams.
    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>>;

    /// Short human-readable name ("fpc", "lzss", "fpc+lzss").
    fn name(&self) -> &'static str;
}

/// Statistics describing one compression run; used by the experiment
/// harness to fill Table 3 and the checkpoint-time figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Original size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Compression ratio (original / compressed).
    pub ratio: f64,
    /// Maximum point-wise absolute error introduced (0 for lossless).
    pub max_abs_error: f64,
    /// Wall-clock seconds spent compressing.
    pub compress_seconds: f64,
    /// Wall-clock seconds spent decompressing (if measured).
    pub decompress_seconds: f64,
}

impl CompressionStats {
    /// Computes statistics by compressing and immediately decompressing.
    ///
    /// # Errors
    /// Propagates compressor errors.
    pub fn measure_lossy(
        codec: &dyn LossyCompressor,
        data: &[f64],
        bound: ErrorBound,
    ) -> Result<(Self, Compressed)> {
        // lcr-analyze: allow(wall-clock): measurement helper; timings are reported, never steer compression
        let t0 = std::time::Instant::now();
        let compressed = codec.compress(data, bound)?;
        let compress_seconds = t0.elapsed().as_secs_f64();
        // lcr-analyze: allow(wall-clock): measurement helper, as above.
        let t1 = std::time::Instant::now();
        let restored = codec.decompress(&compressed)?;
        let decompress_seconds = t1.elapsed().as_secs_f64();
        let max_abs_error = data
            .iter()
            .zip(restored.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        Ok((
            CompressionStats {
                original_bytes: compressed.original_bytes(),
                compressed_bytes: compressed.compressed_bytes(),
                ratio: compressed.ratio(),
                max_abs_error,
                compress_seconds,
                decompress_seconds,
            },
            compressed,
        ))
    }

    /// Computes statistics for a lossless codec.
    ///
    /// # Errors
    /// Propagates compressor errors.
    pub fn measure_lossless(
        codec: &dyn LosslessCompressor,
        data: &[f64],
    ) -> Result<(Self, Compressed)> {
        // lcr-analyze: allow(wall-clock): measurement helper; timings are reported, never steer compression
        let t0 = std::time::Instant::now();
        let compressed = codec.compress(data)?;
        let compress_seconds = t0.elapsed().as_secs_f64();
        // lcr-analyze: allow(wall-clock): measurement helper, as above.
        let t1 = std::time::Instant::now();
        let restored = codec.decompress(&compressed)?;
        let decompress_seconds = t1.elapsed().as_secs_f64();
        debug_assert_eq!(restored.len(), data.len());
        Ok((
            CompressionStats {
                original_bytes: compressed.original_bytes(),
                compressed_bytes: compressed.compressed_bytes(),
                ratio: compressed.ratio(),
                max_abs_error: 0.0,
                compress_seconds,
                decompress_seconds,
            },
            compressed,
        ))
    }
}

pub use delta::DeltaMode;
pub use lossless::{FpcCodec, LosslessPipeline, LzssCodec};
pub use sz::{stream_delta_mode, SzCompressor, SzTemporalState};
pub use zfp::ZfpCompressor;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bound_value_and_allowance() {
        let abs = ErrorBound::Abs(1e-3);
        assert_eq!(abs.value(), 1e-3);
        assert_eq!(abs.allowed_abs_error(100.0, 50.0), 1e-3);

        let rel = ErrorBound::PointwiseRel(1e-2);
        assert_eq!(rel.allowed_abs_error(-4.0, 50.0), 4.0e-2);

        let vr = ErrorBound::ValueRangeRel(1e-2);
        assert_eq!(vr.allowed_abs_error(-4.0, 50.0), 0.5);
    }

    #[test]
    fn compressed_ratio() {
        let c = Compressed {
            bytes: vec![0u8; 100],
            n_elements: 100,
        };
        assert_eq!(c.original_bytes(), 800);
        assert_eq!(c.compressed_bytes(), 100);
        assert!((c.ratio() - 8.0).abs() < 1e-12);

        let empty = Compressed {
            bytes: vec![],
            n_elements: 0,
        };
        assert_eq!(empty.ratio(), 0.0);
    }

    #[test]
    fn error_display() {
        assert!(CompressError::Corrupt("x".into()).to_string().contains('x'));
        assert!(CompressError::InvalidBound(-1.0).to_string().contains("-1"));
        assert!(CompressError::WrongCodec {
            found: 2,
            expected: 1
        }
        .to_string()
        .contains('2'));
    }
}
