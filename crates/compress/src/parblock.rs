//! Shared block-split container used by the parallel codecs.
//!
//! Both the SZ and ZFP streams cut their payload into independently coded
//! blocks so that encoding and decoding parallelise; the on-wire framing is
//! identical for both and lives here so it cannot diverge:
//!
//! ```text
//! [u64 nblocks][u64 len × nblocks][block bytes …]
//! ```
//!
//! Blocks are produced/consumed through the deterministic rayon shim and
//! concatenated in block order, so the container bytes (and the decoded
//! values) are bit-identical at any thread count.

use crate::bitstream::bytes;
use crate::{CompressError, Result};
use rayon::prelude::*;

/// Encodes `nblocks` independent blocks with `encode(block_index)` in
/// parallel and appends the framed container to `out`.
pub(crate) fn encode_blocks<F>(out: &mut Vec<u8>, nblocks: usize, encode: F)
where
    F: Fn(usize) -> Vec<u8> + Sync,
{
    bytes::put_u64(out, nblocks as u64);
    let encoded: Vec<Vec<u8>> = (0..nblocks)
        .into_par_iter()
        .with_min_len(1)
        .map(encode)
        .collect();
    for block in &encoded {
        bytes::put_u64(out, block.len() as u64);
    }
    for block in &encoded {
        out.extend_from_slice(block);
    }
}

/// Reads a framed container of exactly `expected_blocks` blocks from
/// `buf[*pos..]`, decodes the blocks in parallel with
/// `decode(block_index, block_bytes)`, and concatenates the results in
/// block order.
///
/// # Errors
/// Propagates truncation errors from the framing reads, reports a block
/// count mismatch (tagged with `label`), and forwards the first decode
/// error in block order.
pub(crate) fn decode_blocks<F>(
    buf: &[u8],
    pos: &mut usize,
    expected_blocks: usize,
    total_len: usize,
    label: &str,
    decode: F,
) -> Result<Vec<f64>>
where
    F: Fn(usize, &[u8]) -> Result<Vec<f64>> + Sync,
{
    let nblocks = bytes::get_u64(buf, pos)? as usize;
    if nblocks != expected_blocks {
        return Err(CompressError::Corrupt(format!(
            "expected {expected_blocks} {label} blocks, found {nblocks}"
        )));
    }
    let mut lens = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        lens.push(bytes::get_u64(buf, pos)? as usize);
    }
    let mut blocks = Vec::with_capacity(nblocks);
    for &len in &lens {
        blocks.push(bytes::get_slice(buf, pos, len)?);
    }
    let decoded: Vec<Result<Vec<f64>>> = (0..nblocks)
        .into_par_iter()
        .with_min_len(1)
        .map(|b| decode(b, blocks[b]))
        .collect();
    let mut out = Vec::with_capacity(total_len);
    for block in decoded {
        out.extend(block?);
    }
    Ok(out)
}
