//! Shared block-split container used by the parallel codecs.
//!
//! Both the SZ and ZFP streams cut their payload into independently coded
//! blocks so that encoding and decoding parallelise; the on-wire framing is
//! identical for both and lives here so it cannot diverge:
//!
//! ```text
//! [u64 nblocks][u64 len × nblocks][block bytes …]
//! ```
//!
//! Blocks are produced/consumed through the deterministic rayon shim and
//! concatenated in block order, so the container bytes (and the decoded
//! values) are bit-identical at any thread count.

use crate::bitstream::bytes;
use crate::{CompressError, Result};
use rayon::prelude::*;

/// Runs `f(block_index)` for every block in parallel through the
/// deterministic pool and returns the results in block order.
pub(crate) fn map_blocks<T, F>(nblocks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..nblocks).into_par_iter().with_min_len(1).map(f).collect()
}

/// Appends the framed container (`[u64 nblocks][u64 len × nblocks]
/// [block bytes …]`) for pre-encoded blocks to `out`.
pub(crate) fn write_container(out: &mut Vec<u8>, blocks: &[Vec<u8>]) {
    bytes::put_u64(out, blocks.len() as u64);
    for block in blocks {
        bytes::put_u64(out, block.len() as u64);
    }
    for block in blocks {
        out.extend_from_slice(block);
    }
}

/// Encodes `nblocks` independent blocks with `encode(block_index)` in
/// parallel and appends the framed container to `out`.
pub(crate) fn encode_blocks<F>(out: &mut Vec<u8>, nblocks: usize, encode: F)
where
    F: Fn(usize) -> Vec<u8> + Sync,
{
    let encoded = map_blocks(nblocks, encode);
    write_container(out, &encoded);
}

/// Reads a framed container of exactly `expected_blocks` blocks from
/// `buf[*pos..]`, decodes the blocks in parallel with
/// `decode(block_index, block_bytes)`, and concatenates the results in
/// block order.
///
/// # Errors
/// Propagates truncation errors from the framing reads, reports a block
/// count mismatch (tagged with `label`), and forwards the first decode
/// error in block order.
pub(crate) fn decode_blocks<T, F>(
    buf: &[u8],
    pos: &mut usize,
    expected_blocks: usize,
    total_len: usize,
    label: &str,
    decode: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, &[u8]) -> Result<Vec<T>> + Sync,
{
    let blocks = read_container(buf, pos, expected_blocks, label)?;
    let decoded: Vec<Result<Vec<T>>> = (0..blocks.len())
        .into_par_iter()
        .with_min_len(1)
        .map(|b| decode(b, blocks[b]))
        .collect();
    let mut out = Vec::with_capacity(total_len);
    for block in decoded {
        out.extend(block?);
    }
    Ok(out)
}

/// [`decode_blocks`] for decoders that produce two parallel streams per
/// block (e.g. quantization codes plus the unpredictable values their
/// reserved bins refer to); both are concatenated in block order.
///
/// # Errors
/// Same failure modes as [`decode_blocks`].
pub(crate) fn decode_blocks2<A, B, F>(
    buf: &[u8],
    pos: &mut usize,
    expected_blocks: usize,
    total_a: usize,
    label: &str,
    decode: F,
) -> Result<(Vec<A>, Vec<B>)>
where
    A: Send,
    B: Send,
    F: Fn(usize, &[u8]) -> Result<(Vec<A>, Vec<B>)> + Sync,
{
    let blocks = read_container(buf, pos, expected_blocks, label)?;
    let decoded: Vec<Result<(Vec<A>, Vec<B>)>> = (0..blocks.len())
        .into_par_iter()
        .with_min_len(1)
        .map(|b| decode(b, blocks[b]))
        .collect();
    let mut out_a = Vec::with_capacity(total_a);
    let mut out_b = Vec::new();
    for block in decoded {
        let (a, b) = block?;
        out_a.extend(a);
        out_b.extend(b);
    }
    Ok((out_a, out_b))
}

/// Reads the container framing and returns the per-block byte slices.
fn read_container<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    expected_blocks: usize,
    label: &str,
) -> Result<Vec<&'a [u8]>> {
    let nblocks = bytes::get_u64(buf, pos)? as usize;
    if nblocks != expected_blocks {
        return Err(CompressError::Corrupt(format!(
            "expected {expected_blocks} {label} blocks, found {nblocks}"
        )));
    }
    let mut lens = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        lens.push(bytes::get_u64(buf, pos)? as usize);
    }
    let mut blocks = Vec::with_capacity(nblocks);
    for &len in &lens {
        blocks.push(bytes::get_slice(buf, pos, len)?);
    }
    Ok(blocks)
}
