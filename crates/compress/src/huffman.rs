//! Canonical Huffman coding of quantization-bin symbols.
//!
//! SZ's speed and ratio come from the fact that after prediction and
//! linear-scaling quantization almost all symbols fall into a handful of
//! bins around zero; Huffman coding then shrinks them to a few bits each.
//! This module implements a length-limited canonical Huffman encoder and a
//! table-driven decoder over `u32` symbols, built for word-at-a-time
//! throughput:
//!
//! * **Encoding** looks codes up in a flat dense vector indexed by
//!   `symbol − min_symbol` (the SZ quantization-code common case; a sorted
//!   slice with binary search backs arbitrary sparse alphabets) — no
//!   `HashMap` in the hot loop — and emits them through the word-buffered
//!   [`BitWriter`].
//! * **Decoding** resolves every code of ≤ [`TABLE_BITS`] bits with a
//!   single table probe ([`BitReader::peek_bits`] + lookup + consume) and
//!   falls back to the canonical first-code/offset method only for the
//!   rare longer codes.
//! * **Frequencies** are counted into a dense `Vec` histogram whenever the
//!   symbol span is small, which it always is for SZ quantization codes.
//!
//! Two serialised formats exist: the legacy v1 blob (`u64` count, explicit
//! `(u32 symbol, u8 length)` table) that SZ stream version 3 used, still
//! fully decodable via [`decode_block_legacy`], and the v2 blob (varint
//! count, length-grouped delta-coded table) written by [`encode_block`].

use crate::bitstream::{bytes, BitReader, BitWriter};
use crate::{CompressError, Result};
// lcr-analyze: allow(hash-collection): accumulation-only use; every iteration site sorts by symbol first
use std::collections::HashMap;

/// Maximum code length accepted when deserialising a table.  Legacy v1
/// tables were written with lengths up to 48, so the decoder keeps
/// supporting the full range.
const MAX_CODE_LEN: u8 = 48;

/// Maximum code length the builder emits.  Codes are length-limited to
/// this depth (Kraft-preserving rebalance) so decoder tables stay small.
const BUILD_MAX_LEN: u8 = 32;

/// Bits resolved per decode-table probe; codes no longer than this decode
/// with a single peek + lookup.
const TABLE_BITS: u8 = 12;

/// Symbol spans up to this size use dense (vector-indexed) code lookup and
/// histogram counting.  65 538 distinct SZ quantization codes fit well
/// below it.
const DENSE_SPAN_MAX: usize = 1 << 17;

/// Symbol → code-book-entry lookup used by the encoder.
#[derive(Debug, Clone)]
enum EncodeIndex {
    /// `slots[sym - min_sym]` is `entry + 1` (0 = absent).
    Dense { min_sym: u32, slots: Vec<u32> },
    /// `(symbol, entry)` sorted by symbol, binary-searched.
    Sparse(Vec<(u32, u32)>),
}

/// A canonical Huffman code book built from symbol frequencies.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// `(symbol, code length)` sorted canonically by (length, symbol).
    lengths: Vec<(u32, u8)>,
    /// `code << 8 | len` per entry, parallel to `lengths` — one load per
    /// symbol in the encode hot loop.
    packed: Vec<u64>,
    /// Longest code length in the book.
    max_len: u8,
    /// `counts[l]`: number of codes of length `l`.
    counts: Vec<u32>,
    /// Canonical first code of each length.
    first_code: Vec<u64>,
    /// Entry index of the first code of each length.
    first_index: Vec<u32>,
    /// Encoder-side symbol lookup.
    encode_index: EncodeIndex,
}

impl HuffmanCode {
    /// Builds a code book from the frequency of each symbol.  Symbols with
    /// zero frequency receive no code.
    ///
    /// # Panics
    /// Panics if `frequencies` is empty or all zero (the callers always
    /// encode at least one symbol).
    // lcr-analyze: allow(hash-collection): pairs are sorted by symbol before use, so hash order never reaches the code book
    pub fn from_frequencies(frequencies: &HashMap<u32, u64>) -> Self {
        let mut present: Vec<(u32, u64)> = frequencies
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&s, &c)| (s, c))
            .collect();
        present.sort_unstable();
        Self::from_sorted_frequencies(&present)
    }

    /// Builds a code book from `(symbol, count)` pairs sorted by symbol
    /// with every count positive.
    ///
    /// # Panics
    /// Panics if `present` is empty.
    fn from_sorted_frequencies(present: &[(u32, u64)]) -> Self {
        assert!(
            !present.is_empty(),
            "Huffman code requires at least one symbol"
        );

        // Special case: a single distinct symbol gets a 1-bit code.
        if present.len() == 1 {
            return Self::assemble(vec![(present[0].0, 1)]);
        }

        // Standard Huffman tree construction over an index-based min-heap
        // (no per-node boxing).  Ties break on node id so construction is
        // deterministic for any thread count.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = present.len();
        // children[k] for internal nodes (ids n..2n-1).
        let mut children: Vec<(u32, u32)> = Vec::with_capacity(n - 1);
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = present
            .iter()
            .enumerate()
            .map(|(id, &(_, w))| Reverse((w, id as u32)))
            .collect();
        while heap.len() > 1 {
            let Reverse((wa, a)) = heap.pop().expect("heap non-empty");
            let Reverse((wb, b)) = heap.pop().expect("heap non-empty");
            let id = (n + children.len()) as u32;
            children.push((a, b));
            heap.push(Reverse((wa + wb, id)));
        }
        let Reverse((_, root)) = heap.pop().expect("non-empty tree");

        // Depth of every leaf by iterative traversal.
        let mut depths = vec![0u8; n];
        let mut stack: Vec<(u32, u8)> = vec![(root, 0)];
        let mut max_depth = 0u8;
        while let Some((node, depth)) = stack.pop() {
            if (node as usize) < n {
                let d = depth.max(1);
                depths[node as usize] = d;
                max_depth = max_depth.max(d);
            } else {
                let (a, b) = children[node as usize - n];
                // Depth saturates at 255 to stay well-defined even for
                // pathological weight distributions; the length limiter
                // below rebalances anything deeper than BUILD_MAX_LEN.
                let d = depth.saturating_add(1);
                stack.push((a, d));
                stack.push((b, d));
            }
        }

        let lengths: Vec<(u32, u8)> = if max_depth > BUILD_MAX_LEN {
            Self::limit_lengths(present, &depths)
        } else {
            present
                .iter()
                .zip(depths.iter())
                .map(|(&(sym, _), &d)| (sym, d))
                .collect()
        };
        let mut lengths = lengths;
        lengths.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        Self::assemble(lengths)
    }

    /// Length-limits a too-deep code to [`BUILD_MAX_LEN`] bits: clamp the
    /// overlong lengths, restore the Kraft inequality by splitting shorter
    /// codes (the classic zlib rebalance), then hand the shortest lengths
    /// to the most frequent symbols.
    fn limit_lengths(present: &[(u32, u64)], depths: &[u8]) -> Vec<(u32, u8)> {
        let max = BUILD_MAX_LEN as usize;
        let mut bl_count = vec![0u64; max + 2];
        for &d in depths {
            bl_count[(d as usize).min(max)] += 1;
        }
        // Kraft sum in units of 2^-BUILD_MAX_LEN.
        let kraft = |bl: &[u64]| -> u128 {
            (1..=max).map(|l| (bl[l] as u128) << (max - l)).sum()
        };
        while kraft(&bl_count) > 1u128 << max {
            // Split one code of the deepest non-max length into two and
            // retire one max-length slot.
            let mut bits = max - 1;
            while bl_count[bits] == 0 {
                bits -= 1;
            }
            bl_count[bits] -= 1;
            bl_count[bits + 1] += 2;
            bl_count[max] -= 1;
        }
        // Most frequent symbols take the shortest lengths; ties break on
        // symbol value for determinism.
        let mut by_freq: Vec<(u32, u64)> = present.to_vec();
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = Vec::with_capacity(by_freq.len());
        let mut len = 1usize;
        for (sym, _) in by_freq {
            while bl_count[len] == 0 {
                len += 1;
            }
            bl_count[len] -= 1;
            out.push((sym, len as u8));
        }
        out
    }

    /// Builds the canonical code from canonically sorted `(symbol, length)`
    /// pairs assumed valid (Kraft-satisfying, no duplicate symbols).
    fn assemble(lengths: Vec<(u32, u8)>) -> Self {
        let max_len = lengths.last().map(|&(_, l)| l).unwrap_or(0);
        let mut counts = vec![0u32; max_len as usize + 1];
        for &(_, l) in &lengths {
            counts[l as usize] += 1;
        }
        let mut first_code = vec![0u64; max_len as usize + 1];
        let mut first_index = vec![0u32; max_len as usize + 1];
        let mut packed = Vec::with_capacity(lengths.len());
        let mut code = 0u64;
        let mut index = 0u32;
        for l in 1..=max_len as usize {
            code <<= 1;
            first_code[l] = code;
            first_index[l] = index;
            code += u64::from(counts[l]);
            index += counts[l];
        }
        let mut next = first_code.clone();
        for &(_, l) in &lengths {
            packed.push((next[l as usize] << 8) | u64::from(l));
            next[l as usize] += 1;
        }

        let encode_index = Self::build_encode_index(&lengths);
        HuffmanCode {
            lengths,
            packed,
            max_len,
            counts,
            first_code,
            first_index,
            encode_index,
        }
    }

    fn build_encode_index(lengths: &[(u32, u8)]) -> EncodeIndex {
        let min_sym = lengths.iter().map(|&(s, _)| s).min().unwrap_or(0);
        let max_sym = lengths.iter().map(|&(s, _)| s).max().unwrap_or(0);
        let span = (max_sym - min_sym) as usize + 1;
        if span <= DENSE_SPAN_MAX {
            let mut slots = vec![0u32; span];
            for (entry, &(sym, _)) in lengths.iter().enumerate() {
                slots[(sym - min_sym) as usize] = entry as u32 + 1;
            }
            EncodeIndex::Dense { min_sym, slots }
        } else {
            let mut by_symbol: Vec<(u32, u32)> = lengths
                .iter()
                .enumerate()
                .map(|(entry, &(sym, _))| (sym, entry as u32))
                .collect();
            by_symbol.sort_unstable_by_key(|&(sym, _)| sym);
            EncodeIndex::Sparse(by_symbol)
        }
    }

    /// Validates `(symbol, length)` pairs read from an untrusted stream and
    /// builds the canonical code.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] for out-of-range lengths,
    /// duplicate symbols, or a Kraft-violating length multiset (which would
    /// make canonical code assignment ambiguous).
    fn from_lengths_checked(mut lengths: Vec<(u32, u8)>) -> Result<Self> {
        if lengths.is_empty() {
            return Err(CompressError::Corrupt("empty Huffman table".into()));
        }
        let mut kraft = 0u128;
        for &(_, len) in &lengths {
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CompressError::Corrupt(format!(
                    "invalid code length {len}"
                )));
            }
            kraft += 1u128 << (MAX_CODE_LEN - len);
        }
        if kraft > 1u128 << MAX_CODE_LEN {
            return Err(CompressError::Corrupt(
                "Huffman table violates the Kraft inequality".into(),
            ));
        }
        let mut symbols: Vec<u32> = lengths.iter().map(|&(s, _)| s).collect();
        symbols.sort_unstable();
        if symbols.windows(2).any(|w| w[0] == w[1]) {
            return Err(CompressError::Corrupt(
                "duplicate symbol in Huffman table".into(),
            ));
        }
        lengths.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        Ok(Self::assemble(lengths))
    }

    /// Number of distinct symbols in the code book.
    pub fn n_symbols(&self) -> usize {
        self.lengths.len()
    }

    /// Encodes `symbols` into `writer`.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if a symbol is absent from the
    /// code book (never happens when the book is built from the same data).
    pub fn encode(&self, symbols: &[u32], writer: &mut BitWriter) -> Result<()> {
        match &self.encode_index {
            EncodeIndex::Dense { min_sym, slots } => {
                // The hot path: one slot load + one packed-code load per
                // symbol, concatenated into a **local accumulator** that
                // spills through the writer only when it cannot take the
                // next code.  MSB-first concatenation is associative, so
                // flushing `acc_bits` accumulated bits in one
                // `write_bits` call produces the identical byte stream as
                // symbol-at-a-time writes while amortising the writer's
                // shift/flush bookkeeping over dozens of symbols (low-
                // entropy SZ code streams average ~1–2 bits per symbol).
                // Safe whenever every code fits 32 bits (flush keeps
                // `acc_bits ≤ 56`, the writer's fast-path limit), which
                // locally built books guarantee (`BUILD_MAX_LEN = 32`);
                // deserialized books may carry longer codes and take the
                // one-at-a-time path.
                let min_sym = *min_sym;
                let lookup = |s: u32| -> Result<u64> {
                    // Symbols below `min_sym` wrap to a huge index and fall
                    // out of `slots` bounds, taking the error path.
                    let slot = slots
                        .get(s.wrapping_sub(min_sym) as usize)
                        .copied()
                        .unwrap_or(0);
                    if slot == 0 {
                        return Err(Self::missing_symbol(s));
                    }
                    Ok(self.packed[(slot - 1) as usize])
                };
                if self.max_len <= 32 {
                    // Flatten slot -> packed into one table so the per-
                    // symbol lookup is a single load (a zero entry means
                    // the symbol is absent: present codes always have a
                    // non-zero length byte).  The table covers only the
                    // book's symbol range, so building it is cheap next
                    // to the symbol scan it accelerates.
                    let lut: Vec<u64> = slots
                        .iter()
                        .map(|&slot| {
                            if slot == 0 {
                                0
                            } else {
                                self.packed[(slot - 1) as usize]
                            }
                        })
                        .collect();
                    let mut acc: u64 = 0;
                    let mut acc_bits: u32 = 0;
                    for &s in symbols {
                        let pc = lut
                            .get(s.wrapping_sub(min_sym) as usize)
                            .copied()
                            .unwrap_or(0);
                        if pc == 0 {
                            return Err(Self::missing_symbol(s));
                        }
                        let len = (pc & 0xFF) as u32;
                        if acc_bits + len > 56 {
                            writer.write_bits(acc, acc_bits as u8);
                            acc = 0;
                            acc_bits = 0;
                        }
                        acc = (acc << len) | (pc >> 8);
                        acc_bits += len;
                    }
                    if acc_bits > 0 {
                        writer.write_bits(acc, acc_bits as u8);
                    }
                } else {
                    for &s in symbols {
                        let pc = lookup(s)?;
                        writer.write_bits(pc >> 8, (pc & 0xFF) as u8);
                    }
                }
            }
            EncodeIndex::Sparse(by_symbol) => {
                for &s in symbols {
                    let entry = by_symbol
                        .binary_search_by_key(&s, |&(sym, _)| sym)
                        .map_err(|_| Self::missing_symbol(s))?;
                    let pc = self.packed[by_symbol[entry].1 as usize];
                    writer.write_bits(pc >> 8, (pc & 0xFF) as u8);
                }
            }
        }
        Ok(())
    }

    fn missing_symbol(s: u32) -> CompressError {
        CompressError::Corrupt(format!("symbol {s} missing from Huffman code book"))
    }

    /// Decodes `count` symbols from `reader`.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the stream ends early or
    /// contains an invalid code.
    pub fn decode(&self, reader: &mut BitReader<'_>, count: usize) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        self.decode_into(reader, count, &mut out)?;
        Ok(out)
    }

    /// Decodes `count` symbols from `reader`, appending to `out` (which is
    /// cleared first) so callers can reuse one scratch buffer per thread.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the stream ends early or
    /// contains an invalid code.
    pub fn decode_into(
        &self,
        reader: &mut BitReader<'_>,
        count: usize,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        out.clear();
        if count == 0 {
            return Ok(());
        }
        // Never trust `count` blindly: every symbol consumes at least one
        // bit, so a count beyond the remaining bits is corrupt — checked
        // before the reserve so corrupt counts cannot trigger huge
        // allocations.
        if count > reader.available_bits() {
            return Err(CompressError::Corrupt(
                "symbol count exceeds bit stream length".into(),
            ));
        }
        out.reserve(count);

        // Multi-bit lookup table: one probe resolves any code of <= `tb`
        // bits to (entry << 8 | len); 0 marks longer codes (and invalid
        // prefixes), handled by the canonical first-code/offset fallback.
        // Entry indices are packed into 24 bits; the (purely theoretical)
        // >16M-symbol book falls back to the first-code search throughout.
        let use_lut = self.lengths.len() < (1 << 24);
        let tb = TABLE_BITS.min(self.max_len);
        let mut lut = vec![0u32; if use_lut { 1usize << tb } else { 0 }];
        if use_lut {
            for (entry, (&(_, len), &pc)) in
                self.lengths.iter().zip(self.packed.iter()).enumerate()
            {
                if len <= tb {
                    let base = ((pc >> 8) << (tb - len)) as usize;
                    let packed = ((entry as u32) << 8) | u32::from(len);
                    for slot in &mut lut[base..base + (1usize << (tb - len))] {
                        *slot = packed;
                    }
                }
            }
        }

        for _ in 0..count {
            if use_lut {
                let probe = reader.peek_bits(tb) as usize;
                let packed = lut[probe];
                if packed != 0 {
                    // `peek_bits` zero-pads past the end of the stream, so
                    // the consume is what detects truncation.
                    reader.consume((packed & 0xFF) as u8)?;
                    out.push(self.lengths[(packed >> 8) as usize].0);
                    continue;
                }
            }
            // Long (or table-excluded) code: canonical first-code search.
            let mut l = if use_lut { tb + 1 } else { 1 };
            loop {
                if l > self.max_len {
                    return Err(CompressError::Corrupt("invalid Huffman code".into()));
                }
                let li = l as usize;
                if self.counts[li] > 0 {
                    let code = reader.peek_bits(l);
                    let offset = code.wrapping_sub(self.first_code[li]);
                    if code >= self.first_code[li] && offset < u64::from(self.counts[li]) {
                        reader.consume(l)?;
                        out.push(
                            self.lengths[self.first_index[li] as usize + offset as usize].0,
                        );
                        break;
                    }
                }
                l += 1;
            }
        }
        Ok(())
    }

    /// Serialises the code book in the legacy v1 format (`u32` count, then
    /// explicit `(u32 symbol, u8 length)` pairs), as SZ stream version 3
    /// blobs embed it.
    pub fn write_table(&self, buf: &mut Vec<u8>) {
        bytes::put_u32(buf, self.lengths.len() as u32);
        for &(sym, len) in &self.lengths {
            bytes::put_u32(buf, sym);
            buf.push(len);
        }
    }

    /// Reads a legacy v1 code book previously serialised by
    /// [`HuffmanCode::write_table`].
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the table is truncated or
    /// internally inconsistent.
    pub fn read_table(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let n = bytes::get_u32(buf, pos)? as usize;
        // Each entry takes 5 bytes, bounding `n` by the remaining stream —
        // checked before the reserve so corrupt counts cannot OOM.
        if n > buf.len().saturating_sub(*pos) / 5 {
            return Err(CompressError::Corrupt(
                "Huffman table count exceeds stream length".into(),
            ));
        }
        let mut lengths = Vec::with_capacity(n);
        for _ in 0..n {
            let sym = bytes::get_u32(buf, pos)?;
            let len = bytes::get_slice(buf, pos, 1)?[0];
            lengths.push((sym, len));
        }
        Self::from_lengths_checked(lengths)
    }

    /// Serialises the code book in the compact v2 format: max length, one
    /// varint code count per length, then the symbols in canonical order
    /// (absolute varint for the first symbol of each length group,
    /// delta−1 varints after — symbols ascend within a group).
    pub fn write_table_v2(&self, buf: &mut Vec<u8>) {
        buf.push(self.max_len);
        for l in 1..=self.max_len as usize {
            bytes::put_varint(buf, u64::from(self.counts[l]));
        }
        let mut prev: Option<(u8, u32)> = None;
        for &(sym, len) in &self.lengths {
            match prev {
                Some((plen, psym)) if plen == len => {
                    bytes::put_varint(buf, u64::from(sym - psym - 1));
                }
                _ => bytes::put_varint(buf, u64::from(sym)),
            }
            prev = Some((len, sym));
        }
    }

    /// Reads a v2 code book previously serialised by
    /// [`HuffmanCode::write_table_v2`].
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the table is truncated or
    /// internally inconsistent.
    pub fn read_table_v2(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let max_len = bytes::get_slice(buf, pos, 1)?[0];
        if max_len == 0 || max_len > MAX_CODE_LEN {
            return Err(CompressError::Corrupt(format!(
                "invalid maximum code length {max_len}"
            )));
        }
        let mut counts = vec![0u64; max_len as usize + 1];
        let mut total = 0u64;
        for c in counts.iter_mut().skip(1) {
            *c = bytes::get_varint(buf, pos)?;
            total = total
                .checked_add(*c)
                .ok_or_else(|| CompressError::Corrupt("Huffman table count overflow".into()))?;
        }
        // Every symbol takes at least one varint byte.
        if total > buf.len().saturating_sub(*pos) as u64 {
            return Err(CompressError::Corrupt(
                "Huffman table count exceeds stream length".into(),
            ));
        }
        let mut lengths = Vec::with_capacity(total as usize);
        for (len, &count) in counts.iter().enumerate().skip(1) {
            let mut prev: Option<u32> = None;
            for _ in 0..count {
                let raw = bytes::get_varint(buf, pos)?;
                let wide = match prev {
                    None => Some(raw),
                    Some(p) => u64::from(p)
                        .checked_add(1)
                        .and_then(|v| v.checked_add(raw)),
                };
                let sym = wide
                    .map(u32::try_from)
                    .ok_or_else(|| CompressError::Corrupt("symbol overflow in table".into()))?
                    .map_err(|_| CompressError::Corrupt("symbol overflow in table".into()))?;
                lengths.push((sym, len as u8));
                prev = Some(sym);
            }
        }
        Self::from_lengths_checked(lengths)
    }
}

/// Counts symbol frequencies and builds a code book: a dense `Vec`
/// histogram when the symbol span is small (the SZ quantization-code common
/// case), a `HashMap` otherwise.
fn code_for(symbols: &[u32]) -> HuffmanCode {
    let (mut min, mut max) = (u32::MAX, 0u32);
    for &s in symbols {
        min = min.min(s);
        max = max.max(s);
    }
    let span = (max - min) as usize + 1;
    if span <= DENSE_SPAN_MAX {
        let mut hist = vec![0u64; span];
        for &s in symbols {
            hist[(s - min) as usize] += 1;
        }
        let present: Vec<(u32, u64)> = hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (min + i as u32, c))
            .collect();
        HuffmanCode::from_sorted_frequencies(&present)
    } else {
        // BTreeMap so the (symbol, count) pairs come out already sorted
        // by symbol — deterministic without a post-sort.
        let mut freq = std::collections::BTreeMap::new();
        for &s in symbols {
            *freq.entry(s).or_insert(0u64) += 1;
        }
        let present: Vec<(u32, u64)> = freq
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .collect();
        HuffmanCode::from_sorted_frequencies(&present)
    }
}

/// Huffman-encodes a symbol stream into a self-contained v2 byte blob
/// (varint count, compact table, varint bit-stream length, bits), appended
/// to `out`.
pub fn encode_block_into(symbols: &[u32], out: &mut Vec<u8>) {
    bytes::put_varint(out, symbols.len() as u64);
    if symbols.is_empty() {
        return;
    }
    encode_with_code(symbols, code_for(symbols), out);
}

/// [`encode_block_into`] for callers that already counted frequencies into
/// a dense histogram (symbol `i` occurred `hist[i]` times) — the SZ
/// quantizer fuses the counting into its quantization pass.  Consumes the
/// histogram: every non-zero entry is zeroed, so a reused scratch
/// histogram comes back all-zero.  The blob format is identical to
/// [`encode_block_into`]'s.
pub fn encode_block_from_hist(symbols: &[u32], hist: &mut [u32], out: &mut Vec<u8>) {
    let hi = hist.len().saturating_sub(1) as u32;
    encode_block_from_hist_range(symbols, hist, 0, hi, out);
}

/// [`encode_block_from_hist`] for callers that also tracked the inclusive
/// `lo..=hi` range of symbols they emitted: only that span of the
/// histogram is scanned (and zeroed), turning the per-block cost from
/// O(histogram len) into O(live span) — the SZ quantizer's 65 538-entry
/// scratch histogram typically has a live span of a few dozen codes.
/// `lo > hi` declares the stream empty.  The blob bytes are identical to
/// [`encode_block_from_hist`]'s: entries outside a truthful range have
/// zero counts and would be skipped anyway.
pub fn encode_block_from_hist_range(
    symbols: &[u32],
    hist: &mut [u32],
    lo: u32,
    hi: u32,
    out: &mut Vec<u8>,
) {
    bytes::put_varint(out, symbols.len() as u64);
    if symbols.is_empty() {
        return;
    }
    let hi = (hi as usize).min(hist.len().saturating_sub(1));
    let mut present: Vec<(u32, u64)> = Vec::new();
    if lo as usize <= hi {
        for (off, count) in hist[lo as usize..=hi].iter_mut().enumerate() {
            if *count > 0 {
                present.push((lo + off as u32, u64::from(*count)));
                *count = 0;
            }
        }
    }
    encode_with_code(symbols, HuffmanCode::from_sorted_frequencies(&present), out);
}

/// Shared tail of the block encoders: table + bit stream.
fn encode_with_code(symbols: &[u32], code: HuffmanCode, out: &mut Vec<u8>) {
    code.write_table_v2(out);
    let mut writer = BitWriter::with_capacity(symbols.len() / 2);
    code.encode(symbols, &mut writer)
        .expect("all symbols are in the book");
    let bits = writer.into_bytes();
    bytes::put_varint(out, bits.len() as u64);
    out.extend_from_slice(&bits);
}

/// Convenience: Huffman-encodes a symbol stream into a self-contained v2
/// byte blob (table + bit stream).
pub fn encode_block(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_block_into(symbols, &mut out);
    out
}

/// Decodes a v2 blob produced by [`encode_block`], appending the symbols to
/// `out` (cleared first).
///
/// # Errors
/// Returns [`CompressError::Corrupt`] for malformed blobs.
pub fn decode_block_into(buf: &[u8], pos: &mut usize, out: &mut Vec<u32>) -> Result<()> {
    out.clear();
    let count = bytes::get_varint(buf, pos)? as usize;
    if count == 0 {
        return Ok(());
    }
    let code = HuffmanCode::read_table_v2(buf, pos)?;
    let nbytes = bytes::get_varint(buf, pos)? as usize;
    let bits = bytes::get_slice(buf, pos, nbytes)?;
    let mut reader = BitReader::new(bits);
    code.decode_into(&mut reader, count, out)
}

/// Decodes a v2 blob produced by [`encode_block`].
///
/// # Errors
/// Returns [`CompressError::Corrupt`] for malformed blobs.
pub fn decode_block(buf: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    decode_block_into(buf, pos, &mut out)?;
    Ok(out)
}

/// Encodes a symbol stream in the legacy v1 blob format (`u64` count,
/// explicit table, `u64` byte length).  Only used to fabricate SZ v3
/// streams for backwards-compatibility tests.
#[doc(hidden)]
pub fn encode_block_legacy(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    bytes::put_u64(&mut out, symbols.len() as u64);
    if symbols.is_empty() {
        return out;
    }
    let code = code_for(symbols);
    code.write_table(&mut out);
    let mut writer = BitWriter::new();
    code.encode(symbols, &mut writer)
        .expect("all symbols are in the book");
    let bits = writer.into_bytes();
    bytes::put_u64(&mut out, bits.len() as u64);
    out.extend_from_slice(&bits);
    out
}

/// Decodes a legacy v1 blob (as embedded in SZ version-3 streams),
/// appending the symbols to `out` (cleared first).
///
/// # Errors
/// Returns [`CompressError::Corrupt`] for malformed blobs.
pub fn decode_block_legacy_into(
    buf: &[u8],
    pos: &mut usize,
    out: &mut Vec<u32>,
) -> Result<()> {
    out.clear();
    let count = bytes::get_u64(buf, pos)? as usize;
    if count == 0 {
        return Ok(());
    }
    let code = HuffmanCode::read_table(buf, pos)?;
    let nbytes = bytes::get_u64(buf, pos)? as usize;
    let bits = bytes::get_slice(buf, pos, nbytes)?;
    let mut reader = BitReader::new(bits);
    code.decode_into(&mut reader, count, out)
}

/// Decodes a legacy v1 blob (as embedded in SZ version-3 streams).
///
/// # Errors
/// Returns [`CompressError::Corrupt`] for malformed blobs.
pub fn decode_block_legacy(buf: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    decode_block_legacy_into(buf, pos, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let blob = encode_block(symbols);
        let mut pos = 0;
        let back = decode_block(&blob, &mut pos).unwrap();
        assert_eq!(back, symbols);
        assert_eq!(pos, blob.len());

        let legacy = encode_block_legacy(symbols);
        let mut pos = 0;
        let back = decode_block_legacy(&legacy, &mut pos).unwrap();
        assert_eq!(back, symbols);
        assert_eq!(pos, legacy.len());
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_repeated() {
        roundtrip(&[7u32; 100]);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[1, 2, 1, 1, 2, 1, 1, 1]);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 95% of symbols identical — typical of SZ quantization bins on a
        // smooth vector.
        let mut symbols = vec![1000u32; 9500];
        symbols.extend((0..500).map(|i| 990 + (i % 21) as u32));
        let blob = encode_block(&symbols);
        // 10k symbols compressed well below 2 bytes each.
        assert!(blob.len() < 10_000);
        roundtrip(&symbols);
    }

    #[test]
    fn uniform_distribution_roundtrips() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 257).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn wide_symbol_values() {
        // Spans the full u32 range, exercising the sparse encode index.
        let symbols = vec![0u32, u32::MAX, 5, u32::MAX, 0, 123456789];
        roundtrip(&symbols);
    }

    #[test]
    fn long_codes_take_the_table_fallback() {
        // An exponential frequency distribution forces code lengths past
        // TABLE_BITS, exercising the first-code/offset fallback path.
        let mut symbols = Vec::new();
        for s in 0..24u32 {
            let reps = 1usize << (24 - s).min(16);
            symbols.extend(std::iter::repeat_n(s, reps));
        }
        roundtrip(&symbols);
    }

    #[test]
    fn pathological_depths_are_length_limited() {
        // Fibonacci weights build the deepest possible Huffman tree; with
        // ~50 symbols the unlimited tree would exceed BUILD_MAX_LEN.
        let mut freq = HashMap::new();
        let (mut a, mut b) = (1u64, 1u64);
        for s in 0..50u32 {
            freq.insert(s, a);
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        let code = HuffmanCode::from_frequencies(&freq);
        assert!(code.max_len <= BUILD_MAX_LEN);
        assert_eq!(code.n_symbols(), 50);

        // And the limited code still round-trips.
        let symbols: Vec<u32> = (0..50u32).flat_map(|s| std::iter::repeat_n(s, 3)).collect();
        let mut w = BitWriter::new();
        code.encode(&symbols, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(code.decode(&mut r, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn deterministic_encoding() {
        let symbols: Vec<u32> = (0..1000u32).map(|i| (i * i) % 37).collect();
        assert_eq!(encode_block(&symbols), encode_block(&symbols));
    }

    #[test]
    fn corrupt_blobs_detected() {
        let blob = encode_block(&[1, 2, 3, 4, 5, 1, 1, 1]);
        for cut in 0..blob.len() {
            let mut pos = 0;
            let res = decode_block(&blob[..cut], &mut pos);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
        let legacy = encode_block_legacy(&[1, 2, 3, 4, 5, 1, 1, 1]);
        for cut in [4usize, 9, legacy.len() - 1] {
            let mut pos = 0;
            assert!(decode_block_legacy(&legacy[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn corrupt_counts_do_not_overallocate() {
        // A blob whose count field claims 2^60 symbols must fail fast
        // (before any proportional allocation), not OOM.
        let mut blob = Vec::new();
        bytes::put_varint(&mut blob, 1u64 << 60);
        blob.extend_from_slice(&[1, 1, 0, 1, 0xAA]);
        let mut pos = 0;
        assert!(decode_block(&blob, &mut pos).is_err());

        let mut legacy = Vec::new();
        bytes::put_u64(&mut legacy, 1u64 << 60);
        legacy.extend_from_slice(&[0xFF; 16]);
        let mut pos = 0;
        assert!(decode_block_legacy(&legacy, &mut pos).is_err());
    }

    #[test]
    fn overflowing_v2_count_fields_rejected() {
        // counts[1] = u64::MAX, counts[2] = 1: the total must not wrap
        // past the stream-length guard (or panic in debug builds).
        let mut buf = vec![2u8];
        bytes::put_varint(&mut buf, u64::MAX);
        bytes::put_varint(&mut buf, 1);
        buf.extend_from_slice(&[0u8; 8]);
        let mut pos = 0;
        assert!(HuffmanCode::read_table_v2(&buf, &mut pos).is_err());
    }

    #[test]
    fn kraft_violating_table_rejected() {
        // Three 1-bit codes cannot coexist.
        let mut buf = Vec::new();
        bytes::put_u32(&mut buf, 3);
        for sym in 0..3u32 {
            bytes::put_u32(&mut buf, sym);
            buf.push(1);
        }
        let mut pos = 0;
        assert!(HuffmanCode::read_table(&buf, &mut pos).is_err());
    }

    #[test]
    fn duplicate_symbol_table_rejected() {
        let mut buf = Vec::new();
        bytes::put_u32(&mut buf, 2);
        for _ in 0..2 {
            bytes::put_u32(&mut buf, 7);
            buf.push(1);
        }
        let mut pos = 0;
        assert!(HuffmanCode::read_table(&buf, &mut pos).is_err());
    }

    #[test]
    fn table_roundtrip() {
        let mut freq = HashMap::new();
        freq.insert(10u32, 5u64);
        freq.insert(20u32, 1u64);
        freq.insert(30u32, 1u64);
        let code = HuffmanCode::from_frequencies(&freq);
        assert_eq!(code.n_symbols(), 3);
        let mut buf = Vec::new();
        code.write_table(&mut buf);
        let mut pos = 0;
        let code2 = HuffmanCode::read_table(&buf, &mut pos).unwrap();
        assert_eq!(code2.n_symbols(), 3);

        let mut buf2 = Vec::new();
        code.write_table_v2(&mut buf2);
        assert!(buf2.len() < buf.len(), "v2 table should be more compact");
        let mut pos2 = 0;
        let code3 = HuffmanCode::read_table_v2(&buf2, &mut pos2).unwrap();
        assert_eq!(pos2, buf2.len());
        assert_eq!(code3.n_symbols(), 3);

        let mut w = BitWriter::new();
        code.encode(&[10, 20, 30, 10], &mut w).unwrap();
        let bytes = w.into_bytes();
        for other in [&code2, &code3] {
            let mut r = BitReader::new(&bytes);
            assert_eq!(other.decode(&mut r, 4).unwrap(), vec![10, 20, 30, 10]);
        }
    }

    #[test]
    fn missing_symbol_rejected_on_encode() {
        let mut freq = HashMap::new();
        freq.insert(1u32, 10u64);
        freq.insert(2u32, 10u64);
        let code = HuffmanCode::from_frequencies(&freq);
        let mut w = BitWriter::new();
        assert!(code.encode(&[3], &mut w).is_err());
        assert!(code.encode(&[0], &mut w).is_err());
    }
}
