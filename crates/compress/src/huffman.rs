//! Canonical Huffman coding of quantization-bin symbols.
//!
//! SZ's speed and ratio come from the fact that after prediction and
//! linear-scaling quantization almost all symbols fall into a handful of
//! bins around zero; Huffman coding then shrinks them to a few bits each.
//! This module implements a canonical Huffman encoder/decoder over `u32`
//! symbols with a compact serialised code-length table.

use crate::bitstream::{bytes, BitReader, BitWriter};
use crate::{CompressError, Result};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Maximum admissible code length.  With the bin counts seen in practice the
/// tree never gets this deep; the limit just bounds the decoder tables.
const MAX_CODE_LEN: u8 = 48;

/// A canonical Huffman code book built from symbol frequencies.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// `(symbol, code length)` sorted canonically.
    lengths: Vec<(u32, u8)>,
    /// symbol → (code bits, length)
    encode_map: HashMap<u32, (u64, u8)>,
}

impl HuffmanCode {
    /// Builds a code book from the frequency of each symbol.  Symbols with
    /// zero frequency receive no code.
    ///
    /// # Panics
    /// Panics if `frequencies` is empty or all zero (the callers always
    /// encode at least one symbol).
    pub fn from_frequencies(frequencies: &HashMap<u32, u64>) -> Self {
        let present: Vec<(u32, u64)> = frequencies
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&s, &c)| (s, c))
            .collect();
        assert!(
            !present.is_empty(),
            "Huffman code requires at least one symbol"
        );

        // Special case: a single distinct symbol gets a 1-bit code.
        if present.len() == 1 {
            let sym = present[0].0;
            let mut encode_map = HashMap::new();
            encode_map.insert(sym, (0u64, 1u8));
            return HuffmanCode {
                lengths: vec![(sym, 1)],
                encode_map,
            };
        }

        // Standard Huffman tree construction over a min-heap.
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            // Tie-break on id so construction is deterministic.
            id: u64,
            kind: NodeKind,
        }
        #[derive(PartialEq, Eq)]
        enum NodeKind {
            Leaf(u32),
            Internal(Box<Node>, Box<Node>),
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for min-heap.
                other
                    .weight
                    .cmp(&self.weight)
                    .then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut sorted = present.clone();
        sorted.sort_unstable();
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        let mut next_id = 0u64;
        for (sym, count) in &sorted {
            heap.push(Node {
                weight: *count,
                id: next_id,
                kind: NodeKind::Leaf(*sym),
            });
            next_id += 1;
        }
        while heap.len() > 1 {
            let a = heap.pop().expect("heap non-empty");
            let b = heap.pop().expect("heap non-empty");
            heap.push(Node {
                weight: a.weight + b.weight,
                id: next_id,
                kind: NodeKind::Internal(Box::new(a), Box::new(b)),
            });
            next_id += 1;
        }
        let root = heap.pop().expect("non-empty tree");

        // Collect code lengths by walking the tree iteratively.
        let mut lengths: Vec<(u32, u8)> = Vec::new();
        let mut stack = vec![(&root, 0u8)];
        while let Some((node, depth)) = stack.pop() {
            match &node.kind {
                NodeKind::Leaf(sym) => lengths.push((*sym, depth.max(1))),
                NodeKind::Internal(a, b) => {
                    let d = (depth + 1).min(MAX_CODE_LEN);
                    stack.push((a, d));
                    stack.push((b, d));
                }
            }
        }

        Self::from_lengths(lengths)
    }

    /// Builds the canonical code from `(symbol, length)` pairs.
    fn from_lengths(mut lengths: Vec<(u32, u8)>) -> Self {
        // Canonical order: by length, then by symbol value.
        lengths.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut encode_map = HashMap::with_capacity(lengths.len());
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &(sym, len) in &lengths {
            code <<= len - prev_len;
            encode_map.insert(sym, (code, len));
            code += 1;
            prev_len = len;
        }
        HuffmanCode {
            lengths,
            encode_map,
        }
    }

    /// Number of distinct symbols in the code book.
    pub fn n_symbols(&self) -> usize {
        self.lengths.len()
    }

    /// Encodes `symbols` into `writer`.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if a symbol is absent from the
    /// code book (never happens when the book is built from the same data).
    pub fn encode(&self, symbols: &[u32], writer: &mut BitWriter) -> Result<()> {
        for &s in symbols {
            let &(code, len) = self.encode_map.get(&s).ok_or_else(|| {
                CompressError::Corrupt(format!("symbol {s} missing from Huffman code book"))
            })?;
            writer.write_bits(code, len);
        }
        Ok(())
    }

    /// Decodes `count` symbols from `reader`.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the stream ends early or
    /// contains an invalid code.
    pub fn decode(&self, reader: &mut BitReader<'_>, count: usize) -> Result<Vec<u32>> {
        // Build per-length first-code / symbol tables for canonical decode.
        let max_len = self.lengths.last().map(|&(_, l)| l).unwrap_or(0);
        let mut first_code = vec![0u64; (max_len + 2) as usize];
        let mut first_index = vec![0usize; (max_len + 2) as usize];
        let mut counts = vec![0usize; (max_len + 2) as usize];
        for &(_, l) in &self.lengths {
            counts[l as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l as usize] = code;
            first_index[l as usize] = index;
            code += counts[l as usize] as u64;
            index += counts[l as usize];
        }

        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut code = 0u64;
            let mut len = 0u8;
            loop {
                code = (code << 1) | u64::from(self.read_checked(reader)?);
                len += 1;
                if len > max_len {
                    return Err(CompressError::Corrupt("invalid Huffman code".into()));
                }
                let l = len as usize;
                if counts[l] > 0 {
                    let offset = code.wrapping_sub(first_code[l]);
                    if code >= first_code[l] && (offset as usize) < counts[l] {
                        out.push(self.lengths[first_index[l] + offset as usize].0);
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    fn read_checked(&self, reader: &mut BitReader<'_>) -> Result<bool> {
        reader.read_bit()
    }

    /// Serialises the code book (symbol + length pairs) into `buf`.
    pub fn write_table(&self, buf: &mut Vec<u8>) {
        bytes::put_u32(buf, self.lengths.len() as u32);
        for &(sym, len) in &self.lengths {
            bytes::put_u32(buf, sym);
            buf.push(len);
        }
    }

    /// Reads a code book previously serialised by [`HuffmanCode::write_table`].
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the table is truncated.
    pub fn read_table(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let n = bytes::get_u32(buf, pos)? as usize;
        let mut lengths = Vec::with_capacity(n);
        for _ in 0..n {
            let sym = bytes::get_u32(buf, pos)?;
            let len = *bytes::get_slice(buf, pos, 1)?
                .first()
                .ok_or_else(|| CompressError::Corrupt("truncated table".into()))?;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CompressError::Corrupt(format!(
                    "invalid code length {len}"
                )));
            }
            lengths.push((sym, len));
        }
        if lengths.is_empty() {
            return Err(CompressError::Corrupt("empty Huffman table".into()));
        }
        Ok(Self::from_lengths(lengths))
    }
}

/// Convenience: Huffman-encodes a symbol stream into a self-contained byte
/// blob (table + bit stream).
pub fn encode_block(symbols: &[u32]) -> Vec<u8> {
    let mut freq = HashMap::new();
    for &s in symbols {
        *freq.entry(s).or_insert(0u64) += 1;
    }
    let mut out = Vec::new();
    bytes::put_u64(&mut out, symbols.len() as u64);
    if symbols.is_empty() {
        return out;
    }
    let code = HuffmanCode::from_frequencies(&freq);
    code.write_table(&mut out);
    let mut writer = BitWriter::new();
    code.encode(symbols, &mut writer)
        .expect("all symbols are in the book");
    let bits = writer.into_bytes();
    bytes::put_u64(&mut out, bits.len() as u64);
    out.extend_from_slice(&bits);
    out
}

/// Decodes a blob produced by [`encode_block`].
///
/// # Errors
/// Returns [`CompressError::Corrupt`] for malformed blobs.
pub fn decode_block(buf: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let count = bytes::get_u64(buf, pos)? as usize;
    if count == 0 {
        return Ok(Vec::new());
    }
    let code = HuffmanCode::read_table(buf, pos)?;
    let nbytes = bytes::get_u64(buf, pos)? as usize;
    let bits = bytes::get_slice(buf, pos, nbytes)?;
    let mut reader = BitReader::new(bits);
    code.decode(&mut reader, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let blob = encode_block(symbols);
        let mut pos = 0;
        let back = decode_block(&blob, &mut pos).unwrap();
        assert_eq!(back, symbols);
        assert_eq!(pos, blob.len());
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_repeated() {
        roundtrip(&[7u32; 100]);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[1, 2, 1, 1, 2, 1, 1, 1]);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 95% of symbols identical — typical of SZ quantization bins on a
        // smooth vector.
        let mut symbols = vec![1000u32; 9500];
        symbols.extend((0..500).map(|i| 990 + (i % 21) as u32));
        let blob = encode_block(&symbols);
        // 10k symbols compressed well below 2 bytes each.
        assert!(blob.len() < 10_000);
        roundtrip(&symbols);
    }

    #[test]
    fn uniform_distribution_roundtrips() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 257).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn wide_symbol_values() {
        let symbols = vec![0u32, u32::MAX, 5, u32::MAX, 0, 123456789];
        roundtrip(&symbols);
    }

    #[test]
    fn deterministic_encoding() {
        let symbols: Vec<u32> = (0..1000u32).map(|i| (i * i) % 37).collect();
        assert_eq!(encode_block(&symbols), encode_block(&symbols));
    }

    #[test]
    fn corrupt_blobs_detected() {
        let blob = encode_block(&[1, 2, 3, 4, 5, 1, 1, 1]);
        // Truncated table / stream.
        for cut in [4usize, 9, blob.len() - 1] {
            let mut pos = 0;
            let res = decode_block(&blob[..cut], &mut pos);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn table_roundtrip() {
        let mut freq = HashMap::new();
        freq.insert(10u32, 5u64);
        freq.insert(20u32, 1u64);
        freq.insert(30u32, 1u64);
        let code = HuffmanCode::from_frequencies(&freq);
        assert_eq!(code.n_symbols(), 3);
        let mut buf = Vec::new();
        code.write_table(&mut buf);
        let mut pos = 0;
        let code2 = HuffmanCode::read_table(&buf, &mut pos).unwrap();
        assert_eq!(code2.n_symbols(), 3);

        let mut w = BitWriter::new();
        code.encode(&[10, 20, 30, 10], &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(code2.decode(&mut r, 4).unwrap(), vec![10, 20, 30, 10]);
    }

    #[test]
    fn missing_symbol_rejected_on_encode() {
        let mut freq = HashMap::new();
        freq.insert(1u32, 10u64);
        freq.insert(2u32, 10u64);
        let code = HuffmanCode::from_frequencies(&freq);
        let mut w = BitWriter::new();
        assert!(code.encode(&[3], &mut w).is_err());
    }
}
