//! Temporal delta codec for SZ quantization-code streams.
//!
//! Successive checkpoints of an iterative solver are highly correlated, so
//! checkpoint *k*'s quantization codes are close to checkpoint *k−1*'s.
//! This module turns a code array into **temporal deltas** against the
//! prior snapshot's codes — order 1 predicts `c_k[i]` from `c_{k−1}[i]`,
//! order 2 extrapolates linearly from the two prior snapshots — and maps
//! the signed differences to compact unsigned symbols with the zigzag
//! encoding, ready for the same histogram + canonical-Huffman stage the
//! direct codes go through.  The transform is **lossless on the codes**:
//! un-delta-ing reproduces the exact v4 code array, so a delta chain
//! replay reconstructs values bit-identically to a direct decode.
//!
//! The kernels follow the `lcr_sparse::simd` style: chunk-of-8 `[u32; 8]`
//! blocks the compiler auto-vectorizes (no intrinsics, no `unsafe` — this
//! crate forbids it), eight independent min/max lane accumulators for the
//! symbol range, and a [`scalar`] submodule with plain one-element loops
//! that the equivalence tests pin the vectorized paths against.
//!
//! Symbol ranges (codes are `0..=65_537`): order-1 deltas lie in
//! `±65_537`, so zigzag symbols stay below `2^18`; order-2 deltas lie in
//! `±131_074`, below `2^19`.  Both fit the dense-histogram Huffman stage
//! with a modest scratch table.

/// Number of lanes in the chunked kernels (matches `lcr_sparse::simd`).
pub const LANES: usize = 8;

/// Temporal encoding mode of one SZ stream, recorded per variable in the
/// version-5 stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaMode {
    /// Direct codes — a self-contained **anchor** stream.
    #[default]
    None = 0,
    /// Order-1 temporal deltas against the previous snapshot's codes.
    Order1 = 1,
    /// Order-2 temporal deltas against a linear extrapolation of the two
    /// previous snapshots' codes.
    Order2 = 2,
}

impl DeltaMode {
    /// Parses the stream-header byte.
    pub fn from_u8(tag: u8) -> Option<DeltaMode> {
        match tag {
            0 => Some(DeltaMode::None),
            1 => Some(DeltaMode::Order1),
            2 => Some(DeltaMode::Order2),
            _ => None,
        }
    }

    /// Number of prior snapshots the mode needs to decode.
    pub fn prior_snapshots(self) -> usize {
        match self {
            DeltaMode::None => 0,
            DeltaMode::Order1 => 1,
            DeltaMode::Order2 => 2,
        }
    }
}

/// Maps a signed delta to an unsigned symbol: `0, −1, 1, −2, 2, …` become
/// `0, 1, 2, 3, 4, …`, so small-magnitude deltas get small symbols.
/// Exact for `|d| < 2^31`, far beyond the code-delta range.
#[inline]
pub fn zigzag(d: i64) -> u32 {
    ((d << 1) ^ (d >> 63)) as u32
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(z: u32) -> i64 {
    (i64::from(z >> 1)) ^ -i64::from(z & 1)
}

/// Order-1 temporal delta: `out[i] = zigzag(curr[i] − prev[i])`, appended
/// to `out` (cleared first).  Returns the inclusive `(min, max)` range of
/// the emitted symbols (`min > max` for empty input) so the Huffman
/// builder can scan only the live histogram span.
///
/// # Panics
/// Panics if the lengths differ.
pub fn encode_order1(curr: &[u32], prev: &[u32], out: &mut Vec<u32>) -> (u32, u32) {
    assert_eq!(curr.len(), prev.len(), "delta::encode_order1: length mismatch");
    out.clear();
    out.reserve(curr.len());
    let mut lane_min = [u32::MAX; LANES];
    let mut lane_max = [0u32; LANES];
    let mut blocks = curr.chunks_exact(LANES).zip(prev.chunks_exact(LANES));
    for (vc, vp) in &mut blocks {
        let mut syms = [0u32; LANES];
        for j in 0..LANES {
            syms[j] = zigzag(i64::from(vc[j]) - i64::from(vp[j]));
        }
        for j in 0..LANES {
            lane_min[j] = lane_min[j].min(syms[j]);
            lane_max[j] = lane_max[j].max(syms[j]);
        }
        out.extend_from_slice(&syms);
    }
    let tc = curr.chunks_exact(LANES).remainder();
    let tp = prev.chunks_exact(LANES).remainder();
    for j in 0..tc.len() {
        let sym = zigzag(i64::from(tc[j]) - i64::from(tp[j]));
        lane_min[j] = lane_min[j].min(sym);
        lane_max[j] = lane_max[j].max(sym);
        out.push(sym);
    }
    (
        lane_min.into_iter().min().unwrap_or(u32::MAX),
        lane_max.into_iter().max().unwrap_or(0),
    )
}

/// Inverse of [`encode_order1`]: `out[i] = prev[i] + unzigzag(syms[i])`,
/// appended to `out` (cleared first).  Lossless for symbols produced by
/// the encoder; corrupt symbols wrap deterministically (the stream-level
/// CRC and element-count checks are the integrity layer).
///
/// # Panics
/// Panics if the lengths differ.
pub fn decode_order1(syms: &[u32], prev: &[u32], out: &mut Vec<u32>) {
    assert_eq!(syms.len(), prev.len(), "delta::decode_order1: length mismatch");
    out.clear();
    out.reserve(syms.len());
    let mut blocks = syms.chunks_exact(LANES).zip(prev.chunks_exact(LANES));
    for (vs, vp) in &mut blocks {
        let mut codes = [0u32; LANES];
        for j in 0..LANES {
            codes[j] = (i64::from(vp[j]) + unzigzag(vs[j])) as u32;
        }
        out.extend_from_slice(&codes);
    }
    let ts = syms.chunks_exact(LANES).remainder();
    let tp = prev.chunks_exact(LANES).remainder();
    for j in 0..ts.len() {
        out.push((i64::from(tp[j]) + unzigzag(ts[j])) as u32);
    }
}

/// Order-2 temporal delta against the linear extrapolation of the two
/// prior snapshots: `out[i] = zigzag(curr[i] − (2·prev1[i] − prev2[i]))`,
/// appended to `out` (cleared first).  `prev1` is the newer prior.
/// Returns the live `(min, max)` symbol range like [`encode_order1`].
///
/// # Panics
/// Panics if the lengths differ.
pub fn encode_order2(curr: &[u32], prev1: &[u32], prev2: &[u32], out: &mut Vec<u32>) -> (u32, u32) {
    assert_eq!(curr.len(), prev1.len(), "delta::encode_order2: length mismatch");
    assert_eq!(curr.len(), prev2.len(), "delta::encode_order2: length mismatch");
    out.clear();
    out.reserve(curr.len());
    let mut lane_min = [u32::MAX; LANES];
    let mut lane_max = [0u32; LANES];
    let mut blocks = curr
        .chunks_exact(LANES)
        .zip(prev1.chunks_exact(LANES).zip(prev2.chunks_exact(LANES)));
    for (vc, (v1, v2)) in &mut blocks {
        let mut syms = [0u32; LANES];
        for j in 0..LANES {
            let pred = 2 * i64::from(v1[j]) - i64::from(v2[j]);
            syms[j] = zigzag(i64::from(vc[j]) - pred);
        }
        for j in 0..LANES {
            lane_min[j] = lane_min[j].min(syms[j]);
            lane_max[j] = lane_max[j].max(syms[j]);
        }
        out.extend_from_slice(&syms);
    }
    let tc = curr.chunks_exact(LANES).remainder();
    let t1 = prev1.chunks_exact(LANES).remainder();
    let t2 = prev2.chunks_exact(LANES).remainder();
    for j in 0..tc.len() {
        let pred = 2 * i64::from(t1[j]) - i64::from(t2[j]);
        let sym = zigzag(i64::from(tc[j]) - pred);
        lane_min[j] = lane_min[j].min(sym);
        lane_max[j] = lane_max[j].max(sym);
        out.push(sym);
    }
    (
        lane_min.into_iter().min().unwrap_or(u32::MAX),
        lane_max.into_iter().max().unwrap_or(0),
    )
}

/// Inverse of [`encode_order2`]:
/// `out[i] = 2·prev1[i] − prev2[i] + unzigzag(syms[i])`, appended to `out`
/// (cleared first).
///
/// # Panics
/// Panics if the lengths differ.
pub fn decode_order2(syms: &[u32], prev1: &[u32], prev2: &[u32], out: &mut Vec<u32>) {
    assert_eq!(syms.len(), prev1.len(), "delta::decode_order2: length mismatch");
    assert_eq!(syms.len(), prev2.len(), "delta::decode_order2: length mismatch");
    out.clear();
    out.reserve(syms.len());
    let mut blocks = syms
        .chunks_exact(LANES)
        .zip(prev1.chunks_exact(LANES).zip(prev2.chunks_exact(LANES)));
    for (vs, (v1, v2)) in &mut blocks {
        let mut codes = [0u32; LANES];
        for j in 0..LANES {
            let pred = 2 * i64::from(v1[j]) - i64::from(v2[j]);
            codes[j] = (pred + unzigzag(vs[j])) as u32;
        }
        out.extend_from_slice(&codes);
    }
    let ts = syms.chunks_exact(LANES).remainder();
    let t1 = prev1.chunks_exact(LANES).remainder();
    let t2 = prev2.chunks_exact(LANES).remainder();
    for j in 0..ts.len() {
        let pred = 2 * i64::from(t1[j]) - i64::from(t2[j]);
        out.push((pred + unzigzag(ts[j])) as u32);
    }
}

/// Scalar reference implementations of the chunked kernels above: plain
/// one-element-at-a-time loops with no `[u32; 8]` blocks for the compiler
/// to vectorize.  The equivalence tests pin the chunked kernels against
/// these exactly (integer arithmetic, so "equivalent" means *equal*).
pub mod scalar {
    use super::{unzigzag, zigzag};

    /// Scalar mirror of [`super::encode_order1`].
    pub fn encode_order1(curr: &[u32], prev: &[u32], out: &mut Vec<u32>) -> (u32, u32) {
        assert_eq!(curr.len(), prev.len(), "delta::scalar::encode_order1: length mismatch");
        out.clear();
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for i in 0..curr.len() {
            let sym = zigzag(i64::from(curr[i]) - i64::from(prev[i]));
            lo = lo.min(sym);
            hi = hi.max(sym);
            out.push(sym);
        }
        (lo, hi)
    }

    /// Scalar mirror of [`super::decode_order1`].
    pub fn decode_order1(syms: &[u32], prev: &[u32], out: &mut Vec<u32>) {
        assert_eq!(syms.len(), prev.len(), "delta::scalar::decode_order1: length mismatch");
        out.clear();
        for i in 0..syms.len() {
            out.push((i64::from(prev[i]) + unzigzag(syms[i])) as u32);
        }
    }

    /// Scalar mirror of [`super::encode_order2`].
    pub fn encode_order2(
        curr: &[u32],
        prev1: &[u32],
        prev2: &[u32],
        out: &mut Vec<u32>,
    ) -> (u32, u32) {
        assert_eq!(curr.len(), prev1.len(), "delta::scalar::encode_order2: length mismatch");
        assert_eq!(curr.len(), prev2.len(), "delta::scalar::encode_order2: length mismatch");
        out.clear();
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for i in 0..curr.len() {
            let pred = 2 * i64::from(prev1[i]) - i64::from(prev2[i]);
            let sym = zigzag(i64::from(curr[i]) - pred);
            lo = lo.min(sym);
            hi = hi.max(sym);
            out.push(sym);
        }
        (lo, hi)
    }

    /// Scalar mirror of [`super::decode_order2`].
    pub fn decode_order2(syms: &[u32], prev1: &[u32], prev2: &[u32], out: &mut Vec<u32>) {
        assert_eq!(syms.len(), prev1.len(), "delta::scalar::decode_order2: length mismatch");
        assert_eq!(syms.len(), prev2.len(), "delta::scalar::decode_order2: length mismatch");
        out.clear();
        for i in 0..syms.len() {
            let pred = 2 * i64::from(prev1[i]) - i64::from(prev2[i]);
            out.push((pred + unzigzag(syms[i])) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SZ-like code arrays: values clustered around the zero bin
    /// (`32_769`), with occasional unpredictable markers (`0`).
    fn codes(n: usize, seed: u64) -> Vec<u32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let r = state.wrapping_mul(0x2545F4914F6CDD1D);
                match r % 97 {
                    0 => 0,                                  // unpredictable marker
                    1 => 65_537,                             // extreme bin
                    _ => (32_769 + (r >> 32) % 41 - 20) as u32, // near the zero bin
                }
            })
            .collect()
    }

    #[test]
    fn zigzag_roundtrips_and_orders_by_magnitude() {
        for d in [-131_074i64, -65_537, -2, -1, 0, 1, 2, 65_537, 131_074] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert!(zigzag(-65_537) < (1 << 18));
        assert!(zigzag(131_074) < (1 << 19));
    }

    #[test]
    fn order1_roundtrips_losslessly() {
        for n in (0..=2 * LANES).chain([129, 1000, 4097]) {
            let curr = codes(n, 1);
            let prev = codes(n, 2);
            let mut syms = Vec::new();
            let (lo, hi) = encode_order1(&curr, &prev, &mut syms);
            let mut back = Vec::new();
            decode_order1(&syms, &prev, &mut back);
            assert_eq!(back, curr, "n={n}");
            if n > 0 {
                assert!(syms.iter().all(|&s| (lo..=hi).contains(&s)));
            } else {
                assert!(lo > hi, "empty input reports an empty range");
            }
        }
    }

    #[test]
    fn order2_roundtrips_losslessly() {
        for n in (0..=2 * LANES).chain([129, 1000, 4097]) {
            let curr = codes(n, 3);
            let prev1 = codes(n, 4);
            let prev2 = codes(n, 5);
            let mut syms = Vec::new();
            let (lo, hi) = encode_order2(&curr, &prev1, &prev2, &mut syms);
            let mut back = Vec::new();
            decode_order2(&syms, &prev1, &prev2, &mut back);
            assert_eq!(back, curr, "n={n}");
            if n > 0 {
                assert!(syms.iter().all(|&s| (lo..=hi).contains(&s)));
            }
        }
    }

    #[test]
    fn chunked_kernels_match_scalar_mirrors_exactly() {
        for n in (0..=2 * LANES).chain([129, 1000, 4097]) {
            let curr = codes(n, 6);
            let prev1 = codes(n, 7);
            let prev2 = codes(n, 8);

            let (mut a, mut b) = (Vec::new(), Vec::new());
            assert_eq!(
                encode_order1(&curr, &prev1, &mut a),
                scalar::encode_order1(&curr, &prev1, &mut b)
            );
            assert_eq!(a, b);

            let (mut a2, mut b2) = (Vec::new(), Vec::new());
            assert_eq!(
                encode_order2(&curr, &prev1, &prev2, &mut a2),
                scalar::encode_order2(&curr, &prev1, &prev2, &mut b2)
            );
            assert_eq!(a2, b2);

            let (mut da, mut db) = (Vec::new(), Vec::new());
            decode_order1(&a, &prev1, &mut da);
            scalar::decode_order1(&b, &prev1, &mut db);
            assert_eq!(da, db);

            let (mut d2a, mut d2b) = (Vec::new(), Vec::new());
            decode_order2(&a2, &prev1, &prev2, &mut d2a);
            scalar::decode_order2(&b2, &prev1, &prev2, &mut d2b);
            assert_eq!(d2a, d2b);
        }
    }

    #[test]
    fn identical_snapshots_give_all_zero_symbols() {
        let curr = codes(1000, 9);
        let mut syms = Vec::new();
        let (lo, hi) = encode_order1(&curr, &curr, &mut syms);
        assert!(syms.iter().all(|&s| s == 0));
        assert_eq!((lo, hi), (0, 0));
    }

    #[test]
    fn mode_tags_roundtrip() {
        for mode in [DeltaMode::None, DeltaMode::Order1, DeltaMode::Order2] {
            assert_eq!(DeltaMode::from_u8(mode as u8), Some(mode));
        }
        assert_eq!(DeltaMode::from_u8(3), None);
        assert_eq!(DeltaMode::None.prior_snapshots(), 0);
        assert_eq!(DeltaMode::Order1.prior_snapshots(), 1);
        assert_eq!(DeltaMode::Order2.prior_snapshots(), 2);
    }
}
