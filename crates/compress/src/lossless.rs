//! Lossless floating-point codecs (the "Gzip" baseline of the paper).
//!
//! The paper's lossless-checkpointing baseline compresses checkpoint files
//! with Gzip and observes compression ratios of at most ≈6× (Table 3) —
//! far below the 20–60× of error-bounded lossy compression, because the
//! trailing mantissa bits of floating-point data are effectively random
//! (§2, "Scientific Data Compression").  This module provides:
//!
//! * [`FpcCodec`] — an FPC-style predictor codec: each double is XOR-ed
//!   with a predicted value (finite-context-hash predictors) and the XOR
//!   residual is stored with a leading-zero-byte count.  Fast, and captures
//!   most of the redundancy in smooth scientific data.
//! * [`LzssCodec`] — a general-purpose LZSS byte compressor with a 64 KiB
//!   window, standing in for DEFLATE's string matching.
//! * [`LosslessPipeline`] — FPC followed by LZSS on the residual bytes,
//!   which is the closest analogue of "gzip on a scientific dataset" and is
//!   the codec the lossless-checkpointing strategy uses by default.

use crate::bitstream::bytes;
use crate::{CompressError, Compressed, LosslessCompressor, Result};

/// Codec ids stored in stream headers.
const FPC_ID: u8 = 10;
const LZSS_ID: u8 = 11;
const PIPELINE_ID: u8 = 12;

// ---------------------------------------------------------------------------
// FPC-style codec
// ---------------------------------------------------------------------------

/// Size (log2) of the FCM/DFCM predictor tables.
const FPC_TABLE_BITS: usize = 16;

/// An FPC-style lossless compressor for `f64` streams (Burtscher &
/// Ratanaworabhan's FPC, simplified): two hash-based predictors (FCM and
/// DFCM), pick whichever XORs to more leading zero bytes, emit a 4-bit
/// header per value plus the non-zero residual bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpcCodec;

impl FpcCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        FpcCodec
    }
}

struct FpcPredictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl FpcPredictors {
    fn new() -> Self {
        FpcPredictors {
            fcm: vec![0u64; 1 << FPC_TABLE_BITS],
            dfcm: vec![0u64; 1 << FPC_TABLE_BITS],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Returns the two predictions for the next value.
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Updates predictor state with the true value.
    fn update(&mut self, actual: u64) {
        let mask = (1usize << FPC_TABLE_BITS) - 1;
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash = ((self.fcm_hash << 6) ^ (actual >> 48) as usize) & mask;
        let delta = actual.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40) as usize) & mask;
        self.last = actual;
    }
}

impl LosslessCompressor for FpcCodec {
    fn compress(&self, data: &[f64]) -> Result<Compressed> {
        let mut out = Vec::with_capacity(data.len() * 8 / 2 + 64);
        out.push(FPC_ID);
        bytes::put_u64(&mut out, data.len() as u64);

        let mut pred = FpcPredictors::new();
        // Header nibbles: bit3 = predictor used (0 fcm, 1 dfcm),
        // bits 0-2 = number of leading zero BYTES (0..=7) of the residual;
        // residual always stores (8 - lzb) bytes... except lzb==8 encoded as 7
        // with 1 stored byte of 0 to keep the nibble in 3 bits (FPC does the
        // same).
        let mut headers: Vec<u8> = Vec::with_capacity(data.len().div_ceil(2));
        let mut residuals: Vec<u8> = Vec::with_capacity(data.len() * 4);
        let mut nibble_pending: Option<u8> = None;
        for &v in data {
            let bits = v.to_bits();
            let (p_fcm, p_dfcm) = pred.predict();
            let x_fcm = bits ^ p_fcm;
            let x_dfcm = bits ^ p_dfcm;
            let (sel, resid) = if x_fcm.leading_zeros() >= x_dfcm.leading_zeros() {
                (0u8, x_fcm)
            } else {
                (1u8, x_dfcm)
            };
            pred.update(bits);
            let mut lzb = (resid.leading_zeros() / 8) as u8;
            if lzb > 7 {
                lzb = 7;
            }
            let nbytes = 8 - lzb as usize;
            let nibble = (sel << 3) | lzb;
            match nibble_pending.take() {
                None => nibble_pending = Some(nibble),
                Some(first) => headers.push((first << 4) | nibble),
            }
            residuals.extend_from_slice(&resid.to_be_bytes()[8 - nbytes..]);
        }
        if let Some(first) = nibble_pending {
            headers.push(first << 4);
        }

        bytes::put_u64(&mut out, headers.len() as u64);
        out.extend_from_slice(&headers);
        bytes::put_u64(&mut out, residuals.len() as u64);
        out.extend_from_slice(&residuals);
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let id = *bytes::get_slice(buf, &mut pos, 1)?.first().unwrap();
        if id != FPC_ID {
            return Err(CompressError::WrongCodec {
                found: id,
                expected: FPC_ID,
            });
        }
        let n = bytes::get_u64(buf, &mut pos)? as usize;
        let header_len = bytes::get_u64(buf, &mut pos)? as usize;
        let headers = bytes::get_slice(buf, &mut pos, header_len)?.to_vec();
        let resid_len = bytes::get_u64(buf, &mut pos)? as usize;
        let residuals = bytes::get_slice(buf, &mut pos, resid_len)?;

        let mut pred = FpcPredictors::new();
        let mut out = Vec::with_capacity(n);
        let mut rpos = 0usize;
        for i in 0..n {
            let byte = headers
                .get(i / 2)
                .ok_or_else(|| CompressError::Corrupt("missing FPC header".into()))?;
            let nibble = if i % 2 == 0 { byte >> 4 } else { byte & 0x0F };
            let sel = nibble >> 3;
            let lzb = (nibble & 0x7) as usize;
            let nbytes = 8 - lzb;
            if rpos + nbytes > residuals.len() {
                return Err(CompressError::Corrupt("truncated FPC residuals".into()));
            }
            let mut resid_bytes = [0u8; 8];
            resid_bytes[8 - nbytes..].copy_from_slice(&residuals[rpos..rpos + nbytes]);
            rpos += nbytes;
            let resid = u64::from_be_bytes(resid_bytes);
            let (p_fcm, p_dfcm) = pred.predict();
            let bits = resid ^ if sel == 0 { p_fcm } else { p_dfcm };
            pred.update(bits);
            out.push(f64::from_bits(bits));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "fpc"
    }
}

// ---------------------------------------------------------------------------
// LZSS codec
// ---------------------------------------------------------------------------

/// Sliding-window size for LZSS matches.
const LZSS_WINDOW: usize = 1 << 16;
/// Minimum match length worth encoding.
const LZSS_MIN_MATCH: usize = 4;
/// Maximum match length (fits in one byte after bias).
const LZSS_MAX_MATCH: usize = LZSS_MIN_MATCH + 254;

/// A byte-oriented LZSS compressor with a 64 KiB window and hash-chain
/// match finding; the general-purpose half of the "gzip-like" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LzssCodec;

impl LzssCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        LzssCodec
    }

    /// Compresses raw bytes.
    pub fn compress_bytes(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        bytes::put_u64(&mut out, input.len() as u64);

        const HASH_BITS: usize = 15;
        let hash = |a: u8, b: u8, c: u8| -> usize {
            ((a as usize) << 7 ^ (b as usize) << 3 ^ (c as usize)) & ((1 << HASH_BITS) - 1)
        };
        let mut head = vec![usize::MAX; 1 << HASH_BITS];
        let mut prev = vec![usize::MAX; input.len()];

        // Token stream: flag bytes each describing 8 items, followed by the
        // items (literal byte, or 2-byte offset + 1-byte length).
        let mut flags: Vec<u8> = Vec::new();
        let mut items: Vec<u8> = Vec::new();
        let mut flag_byte = 0u8;
        let mut flag_count = 0u8;
        let push_flag = |bit: bool, flags: &mut Vec<u8>, flag_byte: &mut u8, flag_count: &mut u8| {
            if bit {
                *flag_byte |= 1 << *flag_count;
            }
            *flag_count += 1;
            if *flag_count == 8 {
                flags.push(*flag_byte);
                *flag_byte = 0;
                *flag_count = 0;
            }
        };

        let mut i = 0usize;
        while i < input.len() {
            let mut best_len = 0usize;
            let mut best_off = 0usize;
            if i + LZSS_MIN_MATCH <= input.len() {
                let h = hash(input[i], input[i + 1], input[i + 2]);
                let mut cand = head[h];
                let mut chain = 0;
                while cand != usize::MAX && i - cand <= LZSS_WINDOW && chain < 32 {
                    let max_len = (input.len() - i).min(LZSS_MAX_MATCH);
                    let mut l = 0usize;
                    while l < max_len && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - cand;
                        if l == max_len {
                            break;
                        }
                    }
                    cand = prev[cand];
                    chain += 1;
                }
                // Insert current position into the chain.
                prev[i] = head[h];
                head[h] = i;
            }
            if best_len >= LZSS_MIN_MATCH {
                push_flag(true, &mut flags, &mut flag_byte, &mut flag_count);
                items.extend_from_slice(&(best_off as u16).to_le_bytes());
                items.push((best_len - LZSS_MIN_MATCH) as u8);
                // Insert skipped positions into the hash chains so later
                // matches can reference them.
                let end = (i + best_len).min(input.len());
                let mut j = i + 1;
                while j + LZSS_MIN_MATCH <= input.len() && j < end {
                    let h = hash(input[j], input[j + 1], input[j + 2]);
                    prev[j] = head[h];
                    head[h] = j;
                    j += 1;
                }
                i += best_len;
            } else {
                push_flag(false, &mut flags, &mut flag_byte, &mut flag_count);
                items.push(input[i]);
                i += 1;
            }
        }
        if flag_count > 0 {
            flags.push(flag_byte);
        }

        bytes::put_u64(&mut out, flags.len() as u64);
        out.extend_from_slice(&flags);
        bytes::put_u64(&mut out, items.len() as u64);
        out.extend_from_slice(&items);
        out
    }

    /// Decompresses bytes produced by [`LzssCodec::compress_bytes`].
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] for malformed streams.
    pub fn decompress_bytes(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut pos = 0usize;
        let n = bytes::get_u64(input, &mut pos)? as usize;
        let flags_len = bytes::get_u64(input, &mut pos)? as usize;
        let flags = bytes::get_slice(input, &mut pos, flags_len)?.to_vec();
        let items_len = bytes::get_u64(input, &mut pos)? as usize;
        let items = bytes::get_slice(input, &mut pos, items_len)?;

        let mut out = Vec::with_capacity(n);
        let mut item_pos = 0usize;
        let mut flag_index = 0usize;
        while out.len() < n {
            let flag_byte = *flags
                .get(flag_index / 8)
                .ok_or_else(|| CompressError::Corrupt("missing LZSS flags".into()))?;
            let is_match = (flag_byte >> (flag_index % 8)) & 1 == 1;
            flag_index += 1;
            if is_match {
                if item_pos + 3 > items.len() {
                    return Err(CompressError::Corrupt("truncated LZSS match".into()));
                }
                let off =
                    u16::from_le_bytes([items[item_pos], items[item_pos + 1]]) as usize;
                let len = items[item_pos + 2] as usize + LZSS_MIN_MATCH;
                item_pos += 3;
                if off == 0 || off > out.len() {
                    return Err(CompressError::Corrupt("invalid LZSS offset".into()));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                let b = *items
                    .get(item_pos)
                    .ok_or_else(|| CompressError::Corrupt("truncated LZSS literal".into()))?;
                item_pos += 1;
                out.push(b);
            }
        }
        if out.len() != n {
            return Err(CompressError::Corrupt("LZSS length mismatch".into()));
        }
        Ok(out)
    }
}

impl LosslessCompressor for LzssCodec {
    fn compress(&self, data: &[f64]) -> Result<Compressed> {
        let mut raw = Vec::with_capacity(data.len() * 8);
        for v in data {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let mut out = Vec::with_capacity(raw.len() / 2 + 16);
        out.push(LZSS_ID);
        bytes::put_u64(&mut out, data.len() as u64);
        let body = self.compress_bytes(&raw);
        out.extend_from_slice(&body);
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let id = *bytes::get_slice(buf, &mut pos, 1)?.first().unwrap();
        if id != LZSS_ID {
            return Err(CompressError::WrongCodec {
                found: id,
                expected: LZSS_ID,
            });
        }
        let n = bytes::get_u64(buf, &mut pos)? as usize;
        let raw = self.decompress_bytes(&buf[pos..])?;
        if raw.len() != n * 8 {
            return Err(CompressError::Corrupt("decoded length mismatch".into()));
        }
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    fn name(&self) -> &'static str {
        "lzss"
    }
}

// ---------------------------------------------------------------------------
// Pipeline: FPC residuals further compressed with LZSS
// ---------------------------------------------------------------------------

/// The default lossless checkpointing codec: FPC prediction followed by
/// LZSS on the FPC output, approximating what Gzip achieves on scientific
/// double-precision data.
#[derive(Debug, Clone, Copy, Default)]
pub struct LosslessPipeline;

impl LosslessPipeline {
    /// Creates the codec.
    pub fn new() -> Self {
        LosslessPipeline
    }
}

impl LosslessCompressor for LosslessPipeline {
    fn compress(&self, data: &[f64]) -> Result<Compressed> {
        let fpc = FpcCodec::new().compress(data)?;
        let lz = LzssCodec::new();
        let body = lz.compress_bytes(&fpc.bytes);
        let mut out = Vec::with_capacity(body.len() + 16);
        out.push(PIPELINE_ID);
        bytes::put_u64(&mut out, data.len() as u64);
        out.extend_from_slice(&body);
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let id = *bytes::get_slice(buf, &mut pos, 1)?.first().unwrap();
        if id != PIPELINE_ID {
            return Err(CompressError::WrongCodec {
                found: id,
                expected: PIPELINE_ID,
            });
        }
        let n = bytes::get_u64(buf, &mut pos)? as usize;
        let fpc_bytes = LzssCodec::new().decompress_bytes(&buf[pos..])?;
        let inner = Compressed {
            bytes: fpc_bytes,
            n_elements: n,
        };
        FpcCodec::new().decompress(&inner)
    }

    fn name(&self) -> &'static str {
        "fpc+lzss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * t).sin() * 5.0 + t
            })
            .collect()
    }

    fn noisy_signal(n: usize) -> Vec<f64> {
        let mut state = 0xABCDEFu64;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn roundtrip_exact(codec: &dyn LosslessCompressor, data: &[f64]) {
        let c = codec.compress(data).unwrap();
        let r = codec.decompress(&c).unwrap();
        assert_eq!(r.len(), data.len());
        for (a, b) in data.iter().zip(r.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "codec {}", codec.name());
        }
    }

    #[test]
    fn fpc_roundtrip_exact() {
        roundtrip_exact(&FpcCodec::new(), &smooth_signal(10_000));
        roundtrip_exact(&FpcCodec::new(), &noisy_signal(10_000));
        roundtrip_exact(&FpcCodec::new(), &[]);
        roundtrip_exact(&FpcCodec::new(), &[0.0, -0.0, f64::MAX, f64::MIN_POSITIVE]);
        roundtrip_exact(&FpcCodec::new(), &[f64::NAN]);
    }

    #[test]
    fn fpc_nan_preserved_bitwise() {
        let data = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let codec = FpcCodec::new();
        let c = codec.compress(&data).unwrap();
        let r = codec.decompress(&c).unwrap();
        assert!(r[0].is_nan());
        assert_eq!(r[1], f64::INFINITY);
        assert_eq!(r[2], f64::NEG_INFINITY);
    }

    #[test]
    fn lzss_bytes_roundtrip() {
        let lz = LzssCodec::new();
        for data in [
            b"".to_vec(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(5000).collect::<Vec<_>>(),
        ] {
            let c = lz.compress_bytes(&data);
            let r = lz.decompress_bytes(&c).unwrap();
            assert_eq!(r, data);
        }
    }

    #[test]
    fn lzss_compresses_repetitive_data() {
        let lz = LzssCodec::new();
        let data = vec![42u8; 100_000];
        let c = lz.compress_bytes(&data);
        assert!(c.len() < data.len() / 10);
    }

    #[test]
    fn lzss_f64_roundtrip() {
        roundtrip_exact(&LzssCodec::new(), &smooth_signal(5_000));
        roundtrip_exact(&LzssCodec::new(), &noisy_signal(2_000));
        roundtrip_exact(&LzssCodec::new(), &[]);
    }

    #[test]
    fn pipeline_roundtrip_and_ratio() {
        let codec = LosslessPipeline::new();
        roundtrip_exact(&codec, &smooth_signal(20_000));
        roundtrip_exact(&codec, &noisy_signal(5_000));

        // Repetitive / smooth scientific data should show a modest lossless
        // ratio (>1.2), while noise should stay near 1 — mirroring the
        // paper's observation that lossless compression tops out low.
        let smooth = smooth_signal(50_000);
        let c = codec.compress(&smooth).unwrap();
        assert!(c.ratio() > 1.2, "smooth ratio {:.3}", c.ratio());

        let noise = noisy_signal(50_000);
        let cn = codec.compress(&noise).unwrap();
        assert!(cn.ratio() < 1.5, "noise ratio {:.3}", cn.ratio());
    }

    #[test]
    fn lossless_ratio_below_lossy_on_smooth_data() {
        use crate::{ErrorBound, LossyCompressor, SzCompressor};
        let data = smooth_signal(50_000);
        let lossless = LosslessPipeline::new().compress(&data).unwrap();
        let lossy = SzCompressor::new()
            .compress(&data, ErrorBound::ValueRangeRel(1e-4))
            .unwrap();
        assert!(
            lossy.ratio() > 3.0 * lossless.ratio(),
            "lossy {:.1} vs lossless {:.1}",
            lossy.ratio(),
            lossless.ratio()
        );
    }

    #[test]
    fn wrong_codec_and_corrupt_streams() {
        let data = smooth_signal(100);
        let fpc = FpcCodec::new().compress(&data).unwrap();
        assert!(matches!(
            LzssCodec::new().decompress(&fpc),
            Err(CompressError::WrongCodec { .. })
        ));
        assert!(matches!(
            LosslessPipeline::new().decompress(&fpc),
            Err(CompressError::WrongCodec { .. })
        ));

        let mut trunc = FpcCodec::new().compress(&data).unwrap();
        trunc.bytes.truncate(trunc.bytes.len() / 3);
        assert!(FpcCodec::new().decompress(&trunc).is_err());

        let mut lz = LzssCodec::new().compress(&data).unwrap();
        lz.bytes.truncate(12);
        assert!(LzssCodec::new().decompress(&lz).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(FpcCodec::new().name(), "fpc");
        assert_eq!(LzssCodec::new().name(), "lzss");
        assert_eq!(LosslessPipeline::new().name(), "fpc+lzss");
    }
}
