//! Bit-level writer/reader used by the Huffman and ZFP-style coders.

use crate::{CompressError, Result};

/// Append-only bit writer (MSB-first within each byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of bits already used in the last byte (0..=7; 0 means the last
    /// byte is full or the buffer is empty).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("buffer non-empty");
            *last |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Writes the lowest `nbits` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `nbits > 64`.
    pub fn write_bits(&mut self, value: u64, nbits: u8) {
        assert!(nbits <= 64, "cannot write more than 64 bits");
        for i in (0..nbits).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finishes writing and returns the byte buffer (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bit reader matching [`BitWriter`]'s layout.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.byte_pos * 8 + self.bit_pos as usize
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.byte_pos >= self.bytes.len() {
            return Err(CompressError::Corrupt(
                "bit stream exhausted".into(),
            ));
        }
        let bit = (self.bytes[self.byte_pos] >> (7 - self.bit_pos)) & 1 == 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Ok(bit)
    }

    /// Reads `nbits` bits as an unsigned integer (MSB first).
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] at end of stream.
    ///
    /// # Panics
    /// Panics if `nbits > 64`.
    pub fn read_bits(&mut self, nbits: u8) -> Result<u64> {
        assert!(nbits <= 64, "cannot read more than 64 bits");
        let mut value = 0u64;
        for _ in 0..nbits {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }
}

/// Little helpers for writing/reading plain integers into byte vectors; the
/// compressed-stream headers use these.
pub mod bytes {
    use crate::{CompressError, Result};

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian IEEE-754 order.
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
        let end = *pos + 8;
        if end > buf.len() {
            return Err(CompressError::Corrupt("truncated u64".into()));
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&buf[*pos..end]);
        *pos = end;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
        Ok(f64::from_bits(get_u64(buf, pos)?))
    }

    /// Reads a `u32` at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
        let end = *pos + 4;
        if end > buf.len() {
            return Err(CompressError::Corrupt("truncated u32".into()));
        }
        let mut arr = [0u8; 4];
        arr.copy_from_slice(&buf[*pos..end]);
        *pos = end;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads `len` raw bytes at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_slice<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
        let end = *pos + len;
        if end > buf.len() {
            return Err(CompressError::Corrupt("truncated slice".into()));
        }
        let s = &buf[*pos..end];
        *pos = end;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bit(false);
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        let expected_bits = 1 + 1 + 4 + 32;
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.bits_read(), expected_bits);
    }

    #[test]
    fn exhausted_reader_errors() {
        let bytes = [0b10000000u8];
        let mut r = BitReader::new(&bytes);
        for _ in 0..8 {
            r.read_bit().unwrap();
        }
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(4).is_err());
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn full_64bit_value() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }

    #[test]
    fn header_helpers_roundtrip() {
        let mut buf = Vec::new();
        bytes::put_u64(&mut buf, 123456789);
        bytes::put_f64(&mut buf, -1.5e-7);
        bytes::put_u32(&mut buf, 42);
        buf.extend_from_slice(b"abc");

        let mut pos = 0;
        assert_eq!(bytes::get_u64(&buf, &mut pos).unwrap(), 123456789);
        assert_eq!(bytes::get_f64(&buf, &mut pos).unwrap(), -1.5e-7);
        assert_eq!(bytes::get_u32(&buf, &mut pos).unwrap(), 42);
        assert_eq!(bytes::get_slice(&buf, &mut pos, 3).unwrap(), b"abc");
        assert!(bytes::get_u64(&buf, &mut pos).is_err());
        assert!(bytes::get_u32(&buf, &mut pos).is_err());
        assert!(bytes::get_slice(&buf, &mut pos, 1).is_err());
    }
}
