//! Bit-level writer/reader used by the Huffman and ZFP-style coders.
//!
//! Both sides buffer a 64-bit word so the hot `write_bits`/`read_bits`
//! calls are shift-and-mask operations rather than per-bit loops: the
//! writer accumulates bits in a word and spills whole bytes, and the reader
//! refills its word from the byte slice (eight bytes at a time when the
//! accumulator is empty and at least a word remains — a plain
//! `u64::from_be_bytes` on a 8-byte subslice, no `unsafe`).  The byte
//! layout is MSB-first within each byte and identical to the historical
//! bit-at-a-time implementation, so every stream version ever written
//! remains decodable.

use crate::{CompressError, Result};

/// Largest single `write_bits`/`read_bits` chunk that stays on the fast
/// word-buffered path; longer values are transparently split in two.
const WORD_CHUNK: u8 = 56;

/// Append-only bit writer (MSB-first within each byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, right-aligned (the `acc_bits` low bits are valid).
    acc: u64,
    /// Number of pending bits in `acc` (kept below 8 between calls).
    acc_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` encoded bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Discards all written bits, keeping the allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.acc_bits = 0;
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.acc_bits as usize
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_chunk(u64::from(bit), 1);
    }

    /// Writes the lowest `nbits` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `nbits > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, nbits: u8) {
        assert!(nbits <= 64, "cannot write more than 64 bits");
        if nbits > WORD_CHUNK {
            self.write_chunk(value >> 32, nbits - 32);
            self.write_chunk(value & 0xFFFF_FFFF, 32);
        } else {
            self.write_chunk(value, nbits);
        }
    }

    /// Word-buffered append of `nbits <= 56` bits.
    #[inline]
    fn write_chunk(&mut self, value: u64, nbits: u8) {
        debug_assert!(nbits <= WORD_CHUNK);
        if nbits == 0 {
            return;
        }
        let value = value & (u64::MAX >> (64 - nbits));
        // acc_bits <= 7 here, so the shifted accumulator fits in 63 bits.
        self.acc = (self.acc << nbits) | value;
        self.acc_bits += nbits;
        while self.acc_bits >= 8 {
            self.acc_bits -= 8;
            self.bytes.push((self.acc >> self.acc_bits) as u8);
        }
        self.acc &= (1u64 << self.acc_bits) - 1;
    }

    /// Finishes writing and returns the byte buffer (final byte zero-padded).
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.bytes.push((self.acc << (8 - self.acc_bits)) as u8);
        }
        self.bytes
    }
}

/// Bit reader matching [`BitWriter`]'s layout.
///
/// Buffers up to 64 bits in a left-aligned accumulator: the next unread bit
/// is the accumulator's most significant bit, and bits beyond `acc_bits`
/// are always zero (so [`BitReader::peek_bits`] is zero-padded past the end
/// of the stream for free).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte to load into the accumulator.
    byte_pos: usize,
    /// Left-aligned buffered bits.
    acc: u64,
    /// Number of valid bits in `acc`.
    acc_bits: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            byte_pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.byte_pos * 8 - self.acc_bits as usize
    }

    /// Number of bits still available (padding bits of the final byte
    /// included, exactly as the bit-at-a-time reader counted them).
    pub fn available_bits(&self) -> usize {
        self.bytes.len() * 8 - self.bits_read()
    }

    /// Tops the accumulator up from the byte slice.
    #[inline]
    fn refill(&mut self) {
        if self.acc_bits == 0 {
            if let Some(word) = self.bytes.get(self.byte_pos..self.byte_pos + 8) {
                self.acc = u64::from_be_bytes(word.try_into().expect("8-byte slice"));
                self.acc_bits = 64;
                self.byte_pos += 8;
                return;
            }
        }
        while self.acc_bits <= WORD_CHUNK && self.byte_pos < self.bytes.len() {
            self.acc |= u64::from(self.bytes[self.byte_pos]) << (WORD_CHUNK - self.acc_bits);
            self.byte_pos += 1;
            self.acc_bits += 8;
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_chunk(1)? != 0)
    }

    /// Reads `nbits` bits as an unsigned integer (MSB first).
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] at end of stream.
    ///
    /// # Panics
    /// Panics if `nbits > 64`.
    pub fn read_bits(&mut self, nbits: u8) -> Result<u64> {
        assert!(nbits <= 64, "cannot read more than 64 bits");
        if nbits > WORD_CHUNK {
            let hi = self.read_chunk(nbits - 32)?;
            let lo = self.read_chunk(32)?;
            Ok((hi << 32) | lo)
        } else {
            self.read_chunk(nbits)
        }
    }

    #[inline]
    fn read_chunk(&mut self, nbits: u8) -> Result<u64> {
        debug_assert!(nbits <= WORD_CHUNK + 1);
        if nbits == 0 {
            return Ok(0);
        }
        if self.acc_bits < nbits {
            self.refill();
            if self.acc_bits < nbits {
                return Err(CompressError::Corrupt("bit stream exhausted".into()));
            }
        }
        let value = self.acc >> (64 - nbits);
        self.acc <<= nbits;
        self.acc_bits -= nbits;
        Ok(value)
    }

    /// Returns the next `nbits <= 56` bits without consuming them,
    /// zero-padded past the end of the stream.  A decoder matching against
    /// peeked bits must [`BitReader::consume`] afterwards, which reports
    /// the truncation a zero-padded peek may have papered over.
    #[inline]
    pub fn peek_bits(&mut self, nbits: u8) -> u64 {
        debug_assert!(0 < nbits && nbits <= WORD_CHUNK, "peek supports 1..=56 bits");
        if self.acc_bits < nbits {
            self.refill();
        }
        self.acc >> (64 - nbits)
    }

    /// Consumes `nbits` previously peeked bits.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if fewer than `nbits` bits remain.
    #[inline]
    pub fn consume(&mut self, nbits: u8) -> Result<()> {
        debug_assert!(nbits <= WORD_CHUNK);
        if self.acc_bits < nbits {
            self.refill();
            if self.acc_bits < nbits {
                return Err(CompressError::Corrupt("bit stream exhausted".into()));
            }
        }
        self.acc <<= nbits;
        self.acc_bits -= nbits;
        Ok(())
    }
}

/// Little helpers for writing/reading plain integers into byte vectors; the
/// compressed-stream headers use these.
pub mod bytes {
    use crate::{CompressError, Result};

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian IEEE-754 order.
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` as a LEB128 varint (1 byte for values < 128; the
    /// common case for counts and lengths in the v4/v3 stream formats).
    pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
        while v >= 0x80 {
            buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        buf.push(v as u8);
    }

    /// Reads a LEB128 varint at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] on truncation or a varint longer
    /// than 64 bits.
    pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *buf
                .get(*pos)
                .ok_or_else(|| CompressError::Corrupt("truncated varint".into()))?;
            *pos += 1;
            if shift >= 63 && byte > 1 {
                return Err(CompressError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CompressError::Corrupt("varint overflow".into()));
            }
        }
    }

    /// Reads a `u64` at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
        let end = pos
            .checked_add(8)
            .ok_or_else(|| CompressError::Corrupt("offset overflow".into()))?;
        if end > buf.len() {
            return Err(CompressError::Corrupt("truncated u64".into()));
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&buf[*pos..end]);
        *pos = end;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
        Ok(f64::from_bits(get_u64(buf, pos)?))
    }

    /// Reads a `u32` at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short.
    pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
        let end = pos
            .checked_add(4)
            .ok_or_else(|| CompressError::Corrupt("offset overflow".into()))?;
        if end > buf.len() {
            return Err(CompressError::Corrupt("truncated u32".into()));
        }
        let mut arr = [0u8; 4];
        arr.copy_from_slice(&buf[*pos..end]);
        *pos = end;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads `len` raw bytes at `*pos`, advancing it.
    ///
    /// # Errors
    /// Returns [`CompressError::Corrupt`] if the buffer is too short (the
    /// offset arithmetic is overflow-checked so corrupt length fields from
    /// untrusted streams cannot wrap).
    pub fn get_slice<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
        let end = pos
            .checked_add(len)
            .ok_or_else(|| CompressError::Corrupt("length field overflow".into()))?;
        if end > buf.len() {
            return Err(CompressError::Corrupt("truncated slice".into()));
        }
        let s = &buf[*pos..end];
        *pos = end;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bit(false);
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        let expected_bits = 1 + 1 + 4 + 32;
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.bits_read(), expected_bits);
    }

    #[test]
    fn exhausted_reader_errors() {
        let bytes = [0b10000000u8];
        let mut r = BitReader::new(&bytes);
        for _ in 0..8 {
            r.read_bit().unwrap();
        }
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(4).is_err());
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn full_64bit_value() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }

    #[test]
    fn word_buffered_layout_matches_bit_at_a_time() {
        // Cross-check the word-buffered writer against a straightforward
        // bit-at-a-time reference over a mixed width sequence.
        let pieces: &[(u64, u8)] = &[
            (1, 1),
            (0, 1),
            (0b101, 3),
            (0xABCD, 16),
            (0x1FFFF, 17),
            (u64::MAX, 64),
            (0x0F0F_F0F0_0F0F_F0F0, 63),
            (0, 2),
            (0x7F, 7),
        ];
        let mut w = BitWriter::new();
        let mut reference: Vec<bool> = Vec::new();
        for &(v, n) in pieces {
            w.write_bits(v, n);
            for i in (0..n).rev() {
                reference.push((v >> i) & 1 == 1);
            }
        }
        let mut ref_bytes = vec![0u8; reference.len().div_ceil(8)];
        for (i, &bit) in reference.iter().enumerate() {
            if bit {
                ref_bytes[i / 8] |= 1 << (7 - i % 8);
            }
        }
        assert_eq!(w.into_bytes(), ref_bytes);

        let mut r = BitReader::new(&ref_bytes);
        for &(v, n) in pieces {
            let mask = if n == 64 { u64::MAX } else { (1 << n) - 1 };
            assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }

    #[test]
    fn peek_and_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101_0110, 8);
        w.write_bits(0b001, 3);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b1101);
        assert_eq!(r.peek_bits(8), 0b1101_0110);
        r.consume(8).unwrap();
        assert_eq!(r.bits_read(), 8);
        assert_eq!(r.peek_bits(3), 0b001);
        // Peeks past the end are zero-padded ...
        assert_eq!(r.peek_bits(12), 0b0010_0000_0000);
        // ... but consuming past the end errors.
        assert!(r.consume(12).is_err());
        r.consume(3).unwrap();
        assert_eq!(r.available_bits(), 5);
    }

    #[test]
    fn clear_reuses_allocation() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 16);
        w.clear();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b10, 2);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 65_535, 1 << 32, u64::MAX];
        for &v in &values {
            bytes::put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(bytes::get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
        assert!(bytes::get_varint(&buf, &mut pos).is_err());

        // Truncated multi-byte varint.
        let mut pos = 0;
        assert!(bytes::get_varint(&[0x80], &mut pos).is_err());
        // Over-long varint (more than 64 bits of payload).
        let mut pos = 0;
        assert!(bytes::get_varint(&[0xFF; 11], &mut pos).is_err());
    }

    #[test]
    fn header_helpers_roundtrip() {
        let mut buf = Vec::new();
        bytes::put_u64(&mut buf, 123456789);
        bytes::put_f64(&mut buf, -1.5e-7);
        bytes::put_u32(&mut buf, 42);
        buf.extend_from_slice(b"abc");

        let mut pos = 0;
        assert_eq!(bytes::get_u64(&buf, &mut pos).unwrap(), 123456789);
        assert_eq!(bytes::get_f64(&buf, &mut pos).unwrap(), -1.5e-7);
        assert_eq!(bytes::get_u32(&buf, &mut pos).unwrap(), 42);
        assert_eq!(bytes::get_slice(&buf, &mut pos, 3).unwrap(), b"abc");
        assert!(bytes::get_u64(&buf, &mut pos).is_err());
        assert!(bytes::get_u32(&buf, &mut pos).is_err());
        assert!(bytes::get_slice(&buf, &mut pos, 1).is_err());
        // A length field large enough to wrap the offset must error, not
        // panic or wrap around.
        assert!(bytes::get_slice(&buf, &mut pos, usize::MAX).is_err());
    }
}
