//! ZFP-style transform-based lossy compressor (1-D blocks).
//!
//! The paper selects SZ over ZFP for checkpointing because the dynamic
//! variables are 1-D vectors and SZ performs better on 1-D data (§5.1);
//! this module provides the ZFP-style alternative so that the compressor
//! choice can be reproduced as an ablation (`lcr-bench --bin ablations`).
//!
//! The implementation follows ZFP's fixed-accuracy design in spirit,
//! specialised to 1-D blocks of 4 values:
//!
//! 1. Partition the input into blocks of 4.
//! 2. Convert the block to a common-exponent fixed-point representation.
//! 3. Apply the (reversible, lifting-based) orthogonal block transform that
//!    decorrelates smooth data.
//! 4. Store each transform coefficient with just enough of its high-order
//!    bits to meet the requested absolute error bound (bit-plane
//!    truncation), entropy-free but bit-packed.
//!
//! The result honours the same error-bound contract as the SZ-style
//! compressor (verified by property tests), though with lower compression
//! ratios on 1-D data — which is exactly the paper's observation.
//!
//! ## Stream versions
//!
//! | version | block layout                                                  |
//! |---------|---------------------------------------------------------------|
//! | 2       | flag bit, exponent, dropped planes, then per-coefficient 7-bit length + payload (decode-only) |
//! | 3       | one 51-bit header (flag, exponent, dropped planes, all four 7-bit lengths), then the four payloads (current) |
//!
//! Version 3 re-packs the same bits so a block header is a single
//! word-buffered read/write instead of eleven bit-level operations; the
//! size of the encoded stream is unchanged, and version-2 streams remain
//! decodable.

use crate::bitstream::{bytes, BitReader, BitWriter};
use crate::parblock;
use crate::{CompressError, Compressed, ErrorBound, LossyCompressor, Result};

/// Codec id stored in the stream header.
const CODEC_ID: u8 = 2;
/// Stream-format version written by the compressor.
const VERSION: u8 = 3;
/// Oldest stream version the decompressor still reads.
const MIN_VERSION: u8 = 2;
/// Block size (ZFP uses 4^d; d = 1 here).
const BLOCK: usize = 4;
/// Number of fraction bits in the block fixed-point representation.
const FRACTION_BITS: i32 = 52;
/// Elements per independently encoded group of blocks.  Each group gets
/// its own (byte-aligned) bitstream, so groups transform and bit-pack in
/// parallel and concatenate in group order — the encoded bytes are
/// identical at any thread count.  The ≤7 padding bits plus the 8-byte
/// length per 32 KiB of raw data cost well under 0.1% of ratio.
const GROUP_ELEMS: usize = 4_096;

/// The ZFP-style compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpCompressor;

impl ZfpCompressor {
    /// Creates a compressor.
    pub fn new() -> Self {
        ZfpCompressor
    }

    /// Forward lifting transform used by ZFP for one 4-vector (in place,
    /// integer arithmetic, exactly invertible).
    fn fwd_lift(v: &mut [i64; BLOCK]) {
        let (mut x, mut y, mut z, mut w) = (v[0], v[1], v[2], v[3]);
        x += w;
        x >>= 1;
        w -= x;
        z += y;
        z >>= 1;
        y -= z;
        x += z;
        x >>= 1;
        z -= x;
        w += y;
        w >>= 1;
        y -= w;
        w += y >> 1;
        y -= w >> 1;
        *v = [x, y, z, w];
    }

    /// Inverse of [`ZfpCompressor::fwd_lift`].
    fn inv_lift(v: &mut [i64; BLOCK]) {
        let (mut x, mut y, mut z, mut w) = (v[0], v[1], v[2], v[3]);
        y += w >> 1;
        w -= y >> 1;
        y += w;
        w <<= 1;
        w -= y;
        z += x;
        x <<= 1;
        x -= z;
        y += z;
        z <<= 1;
        z -= y;
        w += x;
        x <<= 1;
        x -= w;
        *v = [x, y, z, w];
    }

    /// Fixed-point conversion + forward transform + plane-drop selection
    /// shared by both stream versions.  Returns `None` for an all-zero
    /// block, otherwise the exponent, dropped planes, and the four
    /// zig-zag-coded truncated coefficients with their bit lengths.
    #[allow(clippy::type_complexity)]
    fn transform_block(block: &[f64], abs_eb: f64) -> Option<(i32, u8, [(u64, u8); BLOCK])> {
        let mut padded = [0.0f64; BLOCK];
        padded[..block.len()].copy_from_slice(block);
        // Pad with the last value to avoid artificial discontinuities.
        if let Some(&last) = block.last() {
            for v in padded.iter_mut().skip(block.len()) {
                *v = last;
            }
        }

        // Common block exponent.
        let max_abs = padded.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if max_abs == 0.0 {
            return None;
        }
        let exp = max_abs.log2().floor() as i32 + 1;
        // Fixed-point conversion: value / 2^exp scaled by 2^FRACTION_BITS.
        let scale = (2.0f64).powi(FRACTION_BITS - exp);
        let mut ints = [0i64; BLOCK];
        for (i, &v) in padded.iter().enumerate() {
            ints[i] = (v * scale).round() as i64;
        }
        Self::fwd_lift(&mut ints);

        // How many low-order bit planes can we drop while staying within the
        // error bound?  The inverse lifting transform's worst-case gain (max
        // absolute row sum) is below 8 in the 1-D case, so dropping planes
        // below abs_eb/8 (in original units) keeps the reconstruction within
        // abs_eb after the inverse transform.
        let drop_threshold = abs_eb / 8.0;
        let dropped_planes = if drop_threshold > 0.0 {
            // Units of one integer step are 2^(exp - FRACTION_BITS).
            let step = (2.0f64).powi(exp - FRACTION_BITS);
            ((drop_threshold / step).log2().floor() as i64).clamp(0, 62) as u8
        } else {
            0
        };

        let mut coeffs = [(0u64, 0u8); BLOCK];
        for (slot, &c) in coeffs.iter_mut().zip(ints.iter()) {
            let truncated = c >> dropped_planes;
            // Zig-zag encode sign.
            let zig = ((truncated << 1) ^ (truncated >> 63)) as u64;
            let nbits = 64 - zig.leading_zeros() as u8;
            *slot = (zig, nbits);
        }
        Some((exp, dropped_planes, coeffs))
    }

    /// Encodes one block of up to 4 values in the version-3 layout: the
    /// flag, exponent, dropped planes and all four coefficient lengths are
    /// packed into one 51-bit header write, followed by the payloads.
    fn encode_block(block: &[f64], abs_eb: f64, writer: &mut BitWriter) {
        let Some((exp, dropped_planes, coeffs)) = Self::transform_block(block, abs_eb) else {
            // All-zero block: 1 flag bit.
            writer.write_bit(false);
            return;
        };
        let mut header = 1u64 << 50;
        header |= (exp as u64 & 0xFFFF) << 34;
        header |= u64::from(dropped_planes) << 28;
        for (i, &(_, nbits)) in coeffs.iter().enumerate() {
            header |= u64::from(nbits) << (21 - 7 * i);
        }
        writer.write_bits(header, 51);
        for &(zig, nbits) in &coeffs {
            if nbits > 0 {
                writer.write_bits(zig, nbits);
            }
        }
    }

    /// Reconstructs one block from its decoded coefficients.
    fn emit_block(
        mut ints: [i64; BLOCK],
        exp: i32,
        dropped_planes: u8,
        len: usize,
        out: &mut Vec<f64>,
    ) {
        for slot in ints.iter_mut() {
            *slot <<= dropped_planes;
        }
        Self::inv_lift(&mut ints);
        let scale = (2.0f64).powi(exp - FRACTION_BITS);
        for &i in ints.iter().take(len) {
            out.push(i as f64 * scale);
        }
    }

    /// Decodes one version-3 block of `len` values.
    fn decode_block(reader: &mut BitReader<'_>, len: usize, out: &mut Vec<f64>) -> Result<()> {
        let nonzero = reader.read_bit()?;
        if !nonzero {
            out.extend(std::iter::repeat_n(0.0, len));
            return Ok(());
        }
        let header = reader.read_bits(50)?;
        let exp = ((header >> 34) & 0xFFFF) as u16 as i16 as i32;
        let dropped_planes = ((header >> 28) & 0x3F) as u8;
        let mut ints = [0i64; BLOCK];
        for (i, slot) in ints.iter_mut().enumerate() {
            let nbits = ((header >> (21 - 7 * i)) & 0x7F) as u8;
            if nbits > 64 {
                return Err(CompressError::Corrupt("invalid coefficient length".into()));
            }
            let zig = if nbits == 0 { 0 } else { reader.read_bits(nbits)? };
            *slot = ((zig >> 1) as i64) ^ -((zig & 1) as i64);
        }
        Self::emit_block(ints, exp, dropped_planes, len, out);
        Ok(())
    }

    /// Decodes one legacy version-2 block of `len` values (per-coefficient
    /// length prefixes).
    fn decode_block_v2(reader: &mut BitReader<'_>, len: usize, out: &mut Vec<f64>) -> Result<()> {
        let nonzero = reader.read_bit()?;
        if !nonzero {
            out.extend(std::iter::repeat_n(0.0, len));
            return Ok(());
        }
        let exp = reader.read_bits(16)? as i16 as i32;
        let dropped_planes = reader.read_bits(6)? as u8;
        let mut ints = [0i64; BLOCK];
        for slot in ints.iter_mut() {
            let nbits = reader.read_bits(7)? as u8;
            if nbits > 64 {
                return Err(CompressError::Corrupt("invalid coefficient length".into()));
            }
            let zig = if nbits == 0 { 0 } else { reader.read_bits(nbits)? };
            *slot = ((zig >> 1) as i64) ^ -((zig & 1) as i64);
        }
        Self::emit_block(ints, exp, dropped_planes, len, out);
        Ok(())
    }

    /// Maps the requested bound to the absolute bound ZFP natively honours.
    fn resolve_abs_bound(data: &[f64], bound: ErrorBound) -> f64 {
        match bound {
            ErrorBound::Abs(e) => e,
            ErrorBound::ValueRangeRel(e) => {
                let (mn, mx) = data
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                        (a.min(v), b.max(v))
                    });
                let range = (mx - mn).abs();
                if range > 0.0 {
                    e * range
                } else {
                    e.max(f64::MIN_POSITIVE)
                }
            }
            ErrorBound::PointwiseRel(e) => {
                // Conservative: bound relative to the smallest non-zero
                // magnitude.  Exact zeros cannot be represented with a
                // point-wise relative bound by a block-transform codec, so
                // they force the bound to the smallest positive magnitude.
                let min_abs = data
                    .iter()
                    .filter(|v| **v != 0.0)
                    .fold(f64::INFINITY, |m, v| m.min(v.abs()));
                if min_abs.is_finite() {
                    e * min_abs
                } else {
                    e.max(f64::MIN_POSITIVE)
                }
            }
        }
    }

    /// Shared body of [`LossyCompressor::compress`] /
    /// [`LossyCompressor::compress_into`]: appends a complete stream to
    /// `out`.
    fn compress_to(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<()> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }
        let abs_eb = Self::resolve_abs_bound(data, bound);

        out.reserve(data.len() * 4 + 64);
        out.push(CODEC_ID);
        out.push(VERSION);
        bytes::put_u64(out, data.len() as u64);
        bytes::put_f64(out, abs_eb);

        // Each group of blocks is transformed and bit-packed independently
        // into the shared block-split container.
        let n = data.len();
        parblock::encode_blocks(out, n.div_ceil(GROUP_ELEMS), |g| {
            let start = g * GROUP_ELEMS;
            let end = ((g + 1) * GROUP_ELEMS).min(n);
            let mut writer = BitWriter::with_capacity((end - start) * 2);
            for block in data[start..end].chunks(BLOCK) {
                Self::encode_block(block, abs_eb, &mut writer);
            }
            writer.into_bytes()
        });
        Ok(())
    }
}

impl LossyCompressor for ZfpCompressor {
    fn compress(&self, data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let mut out = Vec::new();
        self.compress_to(data, bound, &mut out)?;
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }

    fn compress_into(&self, data: &[f64], bound: ErrorBound, out: &mut Vec<u8>) -> Result<usize> {
        self.compress_to(data, bound, out)?;
        Ok(data.len())
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Vec<f64>> {
        let buf = &compressed.bytes;
        let mut pos = 0usize;
        let codec = bytes::get_slice(buf, &mut pos, 1)?[0];
        if codec != CODEC_ID {
            return Err(CompressError::WrongCodec {
                found: codec,
                expected: CODEC_ID,
            });
        }
        let version = bytes::get_slice(buf, &mut pos, 1)?[0];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(CompressError::Corrupt(format!(
                "unsupported ZFP stream version {version}"
            )));
        }
        let n = bytes::get_u64(buf, &mut pos)? as usize;
        if n != compressed.n_elements {
            return Err(CompressError::Corrupt("element count mismatch".into()));
        }
        let _abs_eb = bytes::get_f64(buf, &mut pos)?;
        parblock::decode_blocks(buf, &mut pos, n.div_ceil(GROUP_ELEMS), n, "ZFP", |g, group| {
            let group_n = (((g + 1) * GROUP_ELEMS).min(n)) - g * GROUP_ELEMS;
            let mut reader = BitReader::new(group);
            let mut vals = Vec::with_capacity(group_n);
            let mut remaining = group_n;
            while remaining > 0 {
                let len = remaining.min(BLOCK);
                if version >= 3 {
                    Self::decode_block(&mut reader, len, &mut vals)?;
                } else {
                    Self::decode_block_v2(&mut reader, len, &mut vals)?;
                }
                remaining -= len;
            }
            Ok(vals)
        })
    }

    fn name(&self) -> &'static str {
        "zfp"
    }
}

/// Legacy stream writer kept so the backwards-compatibility tests can
/// fabricate version-2 streams exactly as earlier releases wrote them.
#[doc(hidden)]
pub mod legacy {
    use super::*;

    fn encode_block_v2(block: &[f64], abs_eb: f64, writer: &mut BitWriter) {
        let Some((exp, dropped_planes, coeffs)) = ZfpCompressor::transform_block(block, abs_eb)
        else {
            writer.write_bit(false);
            return;
        };
        writer.write_bit(true);
        writer.write_bits(exp as u64 & 0xFFFF, 16);
        writer.write_bits(u64::from(dropped_planes), 6);
        for &(zig, nbits) in &coeffs {
            writer.write_bits(u64::from(nbits), 7);
            if nbits > 0 {
                writer.write_bits(zig, nbits);
            }
        }
    }

    /// Compresses `data` into a version-2 stream, byte-identical to what
    /// the previous release's `ZfpCompressor::compress` produced.
    pub fn compress_v2(data: &[f64], bound: ErrorBound) -> Result<Compressed> {
        let eb = bound.value();
        if !(eb.is_finite() && eb > 0.0) {
            return Err(CompressError::InvalidBound(eb));
        }
        let abs_eb = ZfpCompressor::resolve_abs_bound(data, bound);
        let mut out = Vec::with_capacity(data.len() * 4 + 64);
        out.push(CODEC_ID);
        out.push(2u8);
        bytes::put_u64(&mut out, data.len() as u64);
        bytes::put_f64(&mut out, abs_eb);
        let n = data.len();
        parblock::encode_blocks(&mut out, n.div_ceil(GROUP_ELEMS), |g| {
            let start = g * GROUP_ELEMS;
            let end = ((g + 1) * GROUP_ELEMS).min(n);
            let mut writer = BitWriter::new();
            for block in data[start..end].chunks(BLOCK) {
                encode_block_v2(block, abs_eb, &mut writer);
            }
            writer.into_bytes()
        });
        Ok(Compressed {
            bytes: out,
            n_elements: data.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                100.0 * (2.0 * std::f64::consts::PI * t).sin() + 3.0 * t
            })
            .collect()
    }

    fn check_abs_bound(data: &[f64], restored: &[f64], eb: f64) {
        assert_eq!(data.len(), restored.len());
        for (i, (&a, &b)) in data.iter().zip(restored.iter()).enumerate() {
            assert!(
                (a - b).abs() <= eb * (1.0 + 1e-9) + 1e-290,
                "element {i}: error {} exceeds {eb}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn lift_transform_is_nearly_invertible() {
        // ZFP's lifting transform is not bit-exact under round-trip (the
        // right-shifts floor), but the reconstruction error is bounded by a
        // few integer steps — far below the quantization step sizes used in
        // practice.  Verify that bound.
        let cases = [
            [0i64, 0, 0, 0],
            [1, 2, 3, 4],
            [-1000, 500, 123456789, -987654321],
            [1 << 52, -(1 << 52), 42, -42],
        ];
        for c in cases {
            let mut v = c;
            ZfpCompressor::fwd_lift(&mut v);
            ZfpCompressor::inv_lift(&mut v);
            for (a, b) in v.iter().zip(c.iter()) {
                assert!((a - b).abs() <= 4, "roundtrip error too large: {v:?} vs {c:?}");
            }
        }
    }

    #[test]
    fn abs_bound_honoured() {
        let data = smooth_signal(4096);
        let zfp = ZfpCompressor::new();
        for eb in [1e-1, 1e-3, 1e-6, 1e-9] {
            let c = zfp.compress(&data, ErrorBound::Abs(eb)).unwrap();
            let r = zfp.decompress(&c).unwrap();
            check_abs_bound(&data, &r, eb);
        }
    }

    #[test]
    fn value_range_rel_bound_honoured() {
        let data = smooth_signal(1000);
        let zfp = ZfpCompressor::new();
        let range = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - data.iter().cloned().fold(f64::INFINITY, f64::min);
        let c = zfp
            .compress(&data, ErrorBound::ValueRangeRel(1e-5))
            .unwrap();
        let r = zfp.decompress(&c).unwrap();
        check_abs_bound(&data, &r, 1e-5 * range);
    }

    #[test]
    fn compresses_smooth_data() {
        let data = smooth_signal(100_000);
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        assert!(c.ratio() > 2.0, "ratio {:.2}", c.ratio());
    }

    #[test]
    fn zero_blocks_and_partial_blocks() {
        let zfp = ZfpCompressor::new();
        for data in [
            vec![],
            vec![0.0; 7],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.0, 0.0, 0.0, 5.0],
        ] {
            let c = zfp.compress(&data, ErrorBound::Abs(1e-8)).unwrap();
            let r = zfp.decompress(&c).unwrap();
            check_abs_bound(&data, &r, 1e-8);
        }
    }

    #[test]
    fn mixed_magnitudes() {
        let data: Vec<f64> = (0..1024)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * 10f64.powi(i % 9 - 4) * (1.0 + (i as f64) * 1e-3)
            })
            .collect();
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data, ErrorBound::Abs(1e-7)).unwrap();
        let r = zfp.decompress(&c).unwrap();
        check_abs_bound(&data, &r, 1e-7);
    }

    #[test]
    fn v2_streams_still_decode() {
        let data = smooth_signal(3_000);
        let zfp = ZfpCompressor::new();
        for eb in [1e-3, 1e-7] {
            let v2 = legacy::compress_v2(&data, ErrorBound::Abs(eb)).unwrap();
            assert_eq!(v2.bytes[1], 2, "legacy writer must emit version 2");
            let from_v2 = zfp.decompress(&v2).unwrap();
            check_abs_bound(&data, &from_v2, eb);

            // v3 re-packs the same bits, so both versions carry identical
            // payload sizes and reconstruct bit-identical values.
            let v3 = zfp.compress(&data, ErrorBound::Abs(eb)).unwrap();
            assert_eq!(v3.bytes[1], 3);
            assert_eq!(v2.bytes.len(), v3.bytes.len());
            let from_v3 = zfp.decompress(&v3).unwrap();
            let bits2: Vec<u64> = from_v2.iter().map(|v| v.to_bits()).collect();
            let bits3: Vec<u64> = from_v3.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits2, bits3);
        }
    }

    #[test]
    fn compress_into_appends_identical_stream() {
        let data = smooth_signal(512);
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data, ErrorBound::Abs(1e-5)).unwrap();
        let mut buf = vec![7u8];
        let n = zfp.compress_into(&data, ErrorBound::Abs(1e-5), &mut buf).unwrap();
        assert_eq!(n, data.len());
        assert_eq!(&buf[1..], c.bytes.as_slice());
    }

    #[test]
    fn invalid_bounds_rejected() {
        let zfp = ZfpCompressor::new();
        assert!(zfp.compress(&[1.0], ErrorBound::Abs(0.0)).is_err());
        assert!(zfp.compress(&[1.0], ErrorBound::Abs(f64::NAN)).is_err());
    }

    #[test]
    fn corrupt_streams_detected() {
        let zfp = ZfpCompressor::new();
        let data = smooth_signal(64);
        let c = zfp.compress(&data, ErrorBound::Abs(1e-4)).unwrap();

        let mut wrong = c.clone();
        wrong.bytes[0] = 77;
        assert!(matches!(
            zfp.decompress(&wrong),
            Err(CompressError::WrongCodec { .. })
        ));

        let mut vers = c.clone();
        vers.bytes[1] = 99;
        assert!(zfp.decompress(&vers).is_err());

        let mut trunc = c;
        trunc.bytes.truncate(10);
        assert!(zfp.decompress(&trunc).is_err());
    }

    #[test]
    fn name_is_zfp() {
        assert_eq!(ZfpCompressor::new().name(), "zfp");
    }
}
