//! Property-based tests of the compressor contracts.
//!
//! The error-bound guarantee is the foundation of the paper's Theorems 2
//! and 3, so it is checked here against arbitrary (not hand-picked) data:
//! for every generated input and every bound mode, the decompressed output
//! must stay within the bound element-wise, and the lossless codecs must be
//! bit-exact.

use lcr_compress::{
    ErrorBound, FpcCodec, LosslessCompressor, LosslessPipeline, LossyCompressor, LzssCodec,
    SzCompressor, ZfpCompressor,
};
use proptest::prelude::*;

/// Generates scientifically-plausible values: a mix of magnitudes, signs,
/// exact zeros and smooth segments.
fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            3 => -1.0e3f64..1.0e3,
            2 => -1.0f64..1.0,
            1 => -1.0e-6f64..1.0e-6,
            1 => Just(0.0f64),
            1 => 1.0f64..1.0e9,
        ],
        0..400,
    )
}

fn value_range(data: &[f64]) -> f64 {
    let (mn, mx) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    if data.is_empty() {
        0.0
    } else {
        mx - mn
    }
}

fn check_bound(data: &[f64], restored: &[f64], bound: ErrorBound) {
    assert_eq!(data.len(), restored.len());
    let range = value_range(data);
    for (i, (&a, &b)) in data.iter().zip(restored.iter()).enumerate() {
        let allowed = bound.allowed_abs_error(a, range) * (1.0 + 1e-9) + 1e-280;
        assert!(
            (a - b).abs() <= allowed,
            "element {i}: |{a} - {b}| = {} > {allowed} under {bound:?}",
            (a - b).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sz_honours_absolute_bound(data in data_strategy(), exp in -10i32..-1) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::Abs(eb)).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::Abs(eb));
    }

    #[test]
    fn sz_honours_pointwise_relative_bound(data in data_strategy(), exp in -8i32..-2) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::PointwiseRel(eb)).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::PointwiseRel(eb));
    }

    #[test]
    fn sz_honours_value_range_relative_bound(data in data_strategy(), exp in -8i32..-2) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::ValueRangeRel(eb)).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::ValueRangeRel(eb));
    }

    #[test]
    fn zfp_honours_absolute_bound(
        data in prop::collection::vec(-1.0e3f64..1.0e3, 0..400),
        exp in -6i32..-1,
    ) {
        // ZFP's block fixed-point representation cannot honour bounds far
        // below the precision of the common block exponent (the same
        // limitation the real ZFP has in fixed-accuracy mode), so the
        // property is checked over the regime the checkpointing scheme
        // actually uses: moderate magnitudes and bounds ≥ 1e-6.
        let eb = 10f64.powi(exp);
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data, ErrorBound::Abs(eb)).unwrap();
        let r = zfp.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::Abs(eb));
    }

    #[test]
    fn lossless_codecs_are_bit_exact(data in data_strategy()) {
        for codec in [
            Box::new(FpcCodec::new()) as Box<dyn LosslessCompressor>,
            Box::new(LzssCodec::new()),
            Box::new(LosslessPipeline::new()),
        ] {
            let c = codec.compress(&data).unwrap();
            let r = codec.decompress(&c).unwrap();
            prop_assert_eq!(r.len(), data.len());
            for (a, b) in data.iter().zip(r.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn compressed_streams_are_self_describing(data in data_strategy()) {
        // Compressing then decompressing through the trait objects never
        // mixes codecs up: each stream decodes only with its own codec.
        let sz = SzCompressor::new();
        let zfp = ZfpCompressor::new();
        let c = sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap();
        if !data.is_empty() {
            prop_assert!(zfp.decompress(&c).is_err());
        }
        prop_assert!(sz.decompress(&c).is_ok());
    }

    #[test]
    fn lzss_roundtrips_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let lz = LzssCodec::new();
        let c = lz.compress_bytes(&bytes);
        let r = lz.decompress_bytes(&c).unwrap();
        prop_assert_eq!(r, bytes);
    }

    // ---- decoder hardening -------------------------------------------------

    #[test]
    fn truncated_sz_streams_error_not_panic(
        data in prop::collection::vec(-1.0e3f64..1.0e3, 1..300),
        cut_frac in 0.0f64..1.0,
    ) {
        // Both current (v4) and legacy (v3) streams: any proper prefix must
        // produce CompressError::Corrupt — never a panic, never a huge
        // allocation from a truncated length field.
        let sz = SzCompressor::new();
        for compressed in [
            sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap(),
            lcr_compress::sz::legacy::compress_v3(&data, ErrorBound::Abs(1e-6)).unwrap(),
        ] {
            let cut = ((compressed.bytes.len() as f64 * cut_frac) as usize)
                .min(compressed.bytes.len() - 1);
            let truncated = lcr_compress::Compressed {
                bytes: compressed.bytes[..cut].to_vec(),
                n_elements: compressed.n_elements,
            };
            prop_assert!(sz.decompress(&truncated).is_err());
        }
    }

    #[test]
    fn bitflipped_sz_streams_never_panic(
        data in prop::collection::vec(-1.0e3f64..1.0e3, 1..300),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // A single flipped bit anywhere in the stream may decode to
        // garbage values (lossy streams carry no checksum) but must never
        // panic or over-allocate.
        let sz = SzCompressor::new();
        for mut compressed in [
            sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap(),
            lcr_compress::sz::legacy::compress_v3(&data, ErrorBound::Abs(1e-6)).unwrap(),
        ] {
            let pos = ((compressed.bytes.len() as f64 * flip_frac) as usize)
                .min(compressed.bytes.len() - 1);
            compressed.bytes[pos] ^= 1 << bit;
            let _ = sz.decompress(&compressed);
        }
    }

    #[test]
    fn corrupted_huffman_blobs_error_not_panic(
        symbols in prop::collection::vec(0u32..70_000, 1..500),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let blob = lcr_compress::huffman::encode_block(&symbols);
        // Truncation always errors.
        let cut = ((blob.len() as f64 * cut_frac) as usize).min(blob.len() - 1);
        let mut pos = 0usize;
        prop_assert!(lcr_compress::huffman::decode_block(&blob[..cut], &mut pos).is_err());
        // A bit flip errors or decodes to something — but never panics.
        let mut flipped = blob.clone();
        let at = ((flipped.len() as f64 * flip_frac) as usize).min(flipped.len() - 1);
        flipped[at] ^= 1 << bit;
        let mut pos = 0usize;
        let _ = lcr_compress::huffman::decode_block(&flipped, &mut pos);
    }

    #[test]
    fn truncated_zfp_streams_error_not_panic(
        data in prop::collection::vec(-1.0e3f64..1.0e3, 1..300),
        cut_frac in 0.0f64..1.0,
    ) {
        let zfp = ZfpCompressor::new();
        for compressed in [
            zfp.compress(&data, ErrorBound::Abs(1e-4)).unwrap(),
            lcr_compress::zfp::legacy::compress_v2(&data, ErrorBound::Abs(1e-4)).unwrap(),
        ] {
            let cut = ((compressed.bytes.len() as f64 * cut_frac) as usize)
                .min(compressed.bytes.len() - 1);
            let truncated = lcr_compress::Compressed {
                bytes: compressed.bytes[..cut].to_vec(),
                n_elements: compressed.n_elements,
            };
            prop_assert!(zfp.decompress(&truncated).is_err());
        }
    }

    // ---- stream-version compatibility -------------------------------------

    #[test]
    fn sz_v3_streams_still_decode_within_bound(data in data_strategy(), exp in -8i32..-2) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(eb),
            ErrorBound::PointwiseRel(eb),
            ErrorBound::ValueRangeRel(eb),
        ] {
            let v3 = lcr_compress::sz::legacy::compress_v3(&data, bound).unwrap();
            let restored = sz.decompress(&v3).unwrap();
            check_bound(&data, &restored, bound);
        }
    }

    #[test]
    fn zfp_v2_streams_decode_bit_identically_to_v3(
        data in prop::collection::vec(-1.0e3f64..1.0e3, 0..400),
        exp in -6i32..-1,
    ) {
        // ZFP v3 re-packs the identical bits, so both stream versions must
        // reconstruct the exact same values.
        let eb = 10f64.powi(exp);
        let zfp = ZfpCompressor::new();
        let v2 = lcr_compress::zfp::legacy::compress_v2(&data, ErrorBound::Abs(eb)).unwrap();
        let v3 = zfp.compress(&data, ErrorBound::Abs(eb)).unwrap();
        let from_v2 = zfp.decompress(&v2).unwrap();
        let from_v3 = zfp.decompress(&v3).unwrap();
        prop_assert_eq!(from_v2.len(), from_v3.len());
        for (a, b) in from_v2.iter().zip(from_v3.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Golden version-3 stream written before the v4 format change: it must
/// keep decoding to the exact same bits forever.  The stream is
/// `compress_v3((sin wave of 24 values), Abs(1e-4))` as the pre-v4 encoder
/// produced it, and the expected output is what the pre-v4 decoder
/// reconstructed.
#[test]
fn golden_v3_stream_roundtrips_byte_identically() {
    const STREAM: [u8; 158] = [
        1, 3, 24, 0, 0, 0, 0, 0, 0, 0, 0, 45, 67, 28, 235, 226, 54, 26, 63, 1, 0, 0, 0, 0, 0,
        0, 0, 123, 0, 0, 0, 0, 0, 0, 0, 107, 0, 0, 0, 0, 0, 0, 0, 24, 0, 0, 0, 0, 0, 0, 0, 15,
        0, 0, 0, 221, 131, 0, 0, 3, 3, 124, 0, 0, 4, 37, 124, 0, 0, 4, 141, 124, 0, 0, 4, 45,
        125, 0, 0, 4, 2, 126, 0, 0, 4, 249, 126, 0, 0, 4, 1, 128, 0, 0, 4, 9, 129, 0, 0, 4, 0,
        130, 0, 0, 4, 213, 130, 0, 0, 4, 117, 131, 0, 0, 4, 255, 131, 0, 0, 4, 43, 143, 0, 0,
        4, 17, 167, 0, 0, 4, 12, 0, 0, 0, 0, 0, 0, 0, 254, 118, 84, 50, 52, 86, 120, 154, 188,
        26, 50, 232, 0, 0, 0, 0, 0, 0, 0, 0,
    ];
    const EXPECTED_BITS: [u64; 24] = [
        4611686018427387904,
        4613434315802733131,
        4615063718147915777,
        4616326302303449096,
        4616862906199050292,
        4617200450991121712,
        4617315517961601030,
        4617200450991121716,
        4616862906199050300,
        4616326302303449108,
        4615063718147915808,
        4613434315802733168,
        4611686018427387947,
        4608189423676697548,
        4602678819172647128,
        13816784249434143285,
        13826933561554387077,
        13829633919890958404,
        13830554455654792912,
        13829633919890958361,
        13826933561554386990,
        13816784249434142236,
        4602678819172647303,
        4608189423676697658,
    ];
    let compressed = lcr_compress::Compressed {
        bytes: STREAM.to_vec(),
        n_elements: EXPECTED_BITS.len(),
    };
    let restored = SzCompressor::new().decompress(&compressed).unwrap();
    let bits: Vec<u64> = restored.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, EXPECTED_BITS);

    // And the legacy writer still reproduces the stream byte for byte.
    let data: Vec<f64> = (0..24)
        .map(|i| {
            let t = i as f64 / 24.0;
            (std::f64::consts::TAU * t).sin() * 3.0 + 2.0
        })
        .collect();
    let rewritten = lcr_compress::sz::legacy::compress_v3(&data, ErrorBound::Abs(1e-4)).unwrap();
    assert_eq!(rewritten.bytes, STREAM.to_vec());
}

// ---- temporal delta chains (stream v5) ---------------------------------

/// Builds the v5 delta chain for a snapshot sequence: anchor first, then
/// delta (or direct, if delta would be larger) streams in order.
fn temporal_chain(
    snaps: &[Vec<f64>],
    bound: ErrorBound,
    max_order: lcr_compress::DeltaMode,
) -> Vec<lcr_compress::Compressed> {
    let sz = SzCompressor::new();
    let mut state = lcr_compress::SzTemporalState::new();
    snaps
        .iter()
        .enumerate()
        .map(|(k, snap)| {
            let mut bytes = Vec::new();
            sz.compress_temporal_into(snap, bound, max_order, k == 0, &mut state, &mut bytes)
                .unwrap();
            lcr_compress::Compressed {
                bytes,
                n_elements: snap.len(),
            }
        })
        .collect()
}

/// Snapshot sequences as proptest input: a base array plus per-snapshot
/// perturbations scaled by `drift`, so consecutive snapshots correlate.
fn snapshot_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(-1.0e2f64..1.0e2, 1..300),
        2usize..5,
        -6i32..-1,
    )
        .prop_map(|(base, count, drift_exp)| {
            let drift = 10f64.powi(drift_exp);
            (0..count)
                .map(|k| {
                    base.iter()
                        .enumerate()
                        .map(|(i, &v)| v + drift * (k * (i % 13 + 1)) as f64)
                        .collect()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole restart-bit-identity guarantee: replaying a delta
    /// chain reconstructs the final snapshot bit-identically to a direct
    /// (stateless, anchor-only) decode of the same snapshot — for every
    /// bound mode and delta order, at any thread count (CI runs this
    /// suite at LCR_NUM_THREADS=1 and 4).
    #[test]
    fn delta_chain_replay_matches_direct_decode_bitwise(
        snaps in snapshot_strategy(),
        exp in -8i32..-2,
        order2 in any::<bool>(),
    ) {
        let eb = 10f64.powi(exp);
        let max_order = if order2 {
            lcr_compress::DeltaMode::Order2
        } else {
            lcr_compress::DeltaMode::Order1
        };
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::Abs(eb),
            ErrorBound::PointwiseRel(eb),
            ErrorBound::ValueRangeRel(eb),
        ] {
            let chain = temporal_chain(&snaps, bound, max_order);
            for k in 0..chain.len() {
                let replayed = sz.decompress_chain(&chain[..=k]).unwrap();
                let direct = sz
                    .decompress(&sz.compress(&snaps[k], bound).unwrap())
                    .unwrap();
                prop_assert_eq!(replayed.len(), direct.len());
                for (a, b) in replayed.iter().zip(direct.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Corrupt delta chains must error (or decode to garbage values) —
    /// never panic, never over-allocate.
    #[test]
    fn corrupt_delta_chains_never_panic(
        snaps in snapshot_strategy(),
        cut_frac in 0.0f64..1.0,
        bit in 0u8..8,
        corrupt_link_frac in 0.0f64..1.0,
    ) {
        let sz = SzCompressor::new();
        let mut chain = temporal_chain(
            &snaps,
            ErrorBound::Abs(1e-6),
            lcr_compress::DeltaMode::Order2,
        );
        let link = ((chain.len() as f64 * corrupt_link_frac) as usize).min(chain.len() - 1);

        // Truncating any link makes the whole chain undecodable.
        let mut truncated = chain.clone();
        let cut = ((truncated[link].bytes.len() as f64 * cut_frac) as usize)
            .min(truncated[link].bytes.len() - 1);
        truncated[link].bytes.truncate(cut);
        prop_assert!(sz.decompress_chain(&truncated).is_err());

        // A flipped bit may or may not be detected (no checksum at this
        // layer — the disk tier CRCs whole files) but must never panic.
        let pos = cut.min(chain[link].bytes.len() - 1);
        chain[link].bytes[pos] ^= 1 << bit;
        let _ = sz.decompress_chain(&chain);
    }
}

/// A corrupt length field must fail fast, not allocate proportionally to
/// the claimed (attacker-controlled) size.
#[test]
fn corrupt_sz_length_fields_do_not_overallocate() {
    let sz = SzCompressor::new();
    let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
    let c = sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap();

    // Patch the log-side-channel/unpredictable length region: overwrite
    // every u64-sized window with a huge value and check nothing blows up.
    for start in 0..c.bytes.len().saturating_sub(8) {
        let mut evil = c.clone();
        evil.bytes[start..start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let _ = sz.decompress(&evil);
    }
}
