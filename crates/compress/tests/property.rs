//! Property-based tests of the compressor contracts.
//!
//! The error-bound guarantee is the foundation of the paper's Theorems 2
//! and 3, so it is checked here against arbitrary (not hand-picked) data:
//! for every generated input and every bound mode, the decompressed output
//! must stay within the bound element-wise, and the lossless codecs must be
//! bit-exact.

use lcr_compress::{
    ErrorBound, FpcCodec, LosslessCompressor, LosslessPipeline, LossyCompressor, LzssCodec,
    SzCompressor, ZfpCompressor,
};
use proptest::prelude::*;

/// Generates scientifically-plausible values: a mix of magnitudes, signs,
/// exact zeros and smooth segments.
fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            3 => -1.0e3f64..1.0e3,
            2 => -1.0f64..1.0,
            1 => -1.0e-6f64..1.0e-6,
            1 => Just(0.0f64),
            1 => 1.0f64..1.0e9,
        ],
        0..400,
    )
}

fn value_range(data: &[f64]) -> f64 {
    let (mn, mx) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    if data.is_empty() {
        0.0
    } else {
        mx - mn
    }
}

fn check_bound(data: &[f64], restored: &[f64], bound: ErrorBound) {
    assert_eq!(data.len(), restored.len());
    let range = value_range(data);
    for (i, (&a, &b)) in data.iter().zip(restored.iter()).enumerate() {
        let allowed = bound.allowed_abs_error(a, range) * (1.0 + 1e-9) + 1e-280;
        assert!(
            (a - b).abs() <= allowed,
            "element {i}: |{a} - {b}| = {} > {allowed} under {bound:?}",
            (a - b).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sz_honours_absolute_bound(data in data_strategy(), exp in -10i32..-1) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::Abs(eb)).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::Abs(eb));
    }

    #[test]
    fn sz_honours_pointwise_relative_bound(data in data_strategy(), exp in -8i32..-2) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::PointwiseRel(eb)).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::PointwiseRel(eb));
    }

    #[test]
    fn sz_honours_value_range_relative_bound(data in data_strategy(), exp in -8i32..-2) {
        let eb = 10f64.powi(exp);
        let sz = SzCompressor::new();
        let c = sz.compress(&data, ErrorBound::ValueRangeRel(eb)).unwrap();
        let r = sz.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::ValueRangeRel(eb));
    }

    #[test]
    fn zfp_honours_absolute_bound(
        data in prop::collection::vec(-1.0e3f64..1.0e3, 0..400),
        exp in -6i32..-1,
    ) {
        // ZFP's block fixed-point representation cannot honour bounds far
        // below the precision of the common block exponent (the same
        // limitation the real ZFP has in fixed-accuracy mode), so the
        // property is checked over the regime the checkpointing scheme
        // actually uses: moderate magnitudes and bounds ≥ 1e-6.
        let eb = 10f64.powi(exp);
        let zfp = ZfpCompressor::new();
        let c = zfp.compress(&data, ErrorBound::Abs(eb)).unwrap();
        let r = zfp.decompress(&c).unwrap();
        check_bound(&data, &r, ErrorBound::Abs(eb));
    }

    #[test]
    fn lossless_codecs_are_bit_exact(data in data_strategy()) {
        for codec in [
            Box::new(FpcCodec::new()) as Box<dyn LosslessCompressor>,
            Box::new(LzssCodec::new()),
            Box::new(LosslessPipeline::new()),
        ] {
            let c = codec.compress(&data).unwrap();
            let r = codec.decompress(&c).unwrap();
            prop_assert_eq!(r.len(), data.len());
            for (a, b) in data.iter().zip(r.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn compressed_streams_are_self_describing(data in data_strategy()) {
        // Compressing then decompressing through the trait objects never
        // mixes codecs up: each stream decodes only with its own codec.
        let sz = SzCompressor::new();
        let zfp = ZfpCompressor::new();
        let c = sz.compress(&data, ErrorBound::Abs(1e-6)).unwrap();
        if !data.is_empty() {
            prop_assert!(zfp.decompress(&c).is_err());
        }
        prop_assert!(sz.decompress(&c).is_ok());
    }

    #[test]
    fn lzss_roundtrips_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let lz = LzssCodec::new();
        let c = lz.compress_bytes(&bytes);
        let r = lz.decompress_bytes(&c).unwrap();
        prop_assert_eq!(r, bytes);
    }
}
