//! Criterion micro-benchmarks of the numerical kernels: SpMV on the paper's
//! 3-D Poisson matrix, one iteration of each solver family, and the
//! end-to-end lossy checkpoint path (capture → compress → encode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcr_core::strategy::CheckpointStrategy;
use lcr_core::workload::PaperWorkload;
use lcr_solvers::SolverKind;
use lcr_sparse::poisson::{manufactured_rhs, poisson3d};
use lcr_sparse::Vector;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_poisson3d");
    for &edge in &[16usize, 32] {
        let a = poisson3d(edge);
        let (x, _) = manufactured_rhs(&a);
        let mut y = Vector::zeros(a.nrows());
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(edge), &edge, |b, _| {
            b.iter(|| a.spmv(x.as_slice(), y.as_mut_slice()))
        });
    }
    group.finish();
}

fn bench_solver_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_iteration");
    let workload = PaperWorkload::poisson(2048, 12);
    let problem = workload.build();
    for kind in [SolverKind::Jacobi, SolverKind::Cg, SolverKind::Gmres] {
        group.bench_function(kind.name(), |b| {
            let mut solver = workload.build_solver(&problem, kind, 1_000_000);
            b.iter(|| {
                solver.step();
                if solver.converged() {
                    // Restart to keep iterating without converging away.
                    let n = problem.system.dim();
                    solver.restart_from_solution(Vector::zeros(n), 0);
                }
            })
        });
    }
    group.finish();
}

fn bench_checkpoint_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_encode");
    let workload = PaperWorkload::poisson(2048, 12);
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, 1_000_000);
    for _ in 0..50 {
        solver.step();
    }
    let bytes = (problem.system.dim() * 8) as u64;
    for (name, strategy) in [
        ("traditional", CheckpointStrategy::Traditional),
        ("lossless", CheckpointStrategy::lossless_default()),
        ("lossy_sz", CheckpointStrategy::lossy_default()),
    ] {
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(name, |b| {
            b.iter(|| strategy.encode(solver.as_ref()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_solver_iteration,
    bench_checkpoint_path
);
criterion_main!(benches);
