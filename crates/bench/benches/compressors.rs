//! Criterion micro-benchmarks of the compressor stack: throughput and
//! compression ratio of SZ, ZFP and the lossless pipeline on solver-like
//! smooth data — the quantities behind the checkpoint/recovery times of
//! Figures 4–6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcr_compress::{
    huffman, ErrorBound, FpcCodec, LosslessCompressor, LosslessPipeline, LossyCompressor,
    SzCompressor, ZfpCompressor,
};

fn solver_like_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            (2.0 * std::f64::consts::PI * t).sin() + 0.5 * (4.0 * std::f64::consts::PI * t).cos()
        })
        .collect()
}

fn bench_lossy_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossy_compress");
    for &n in &[10_000usize, 100_000] {
        let data = solver_like_vector(n);
        group.throughput(Throughput::Bytes((n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("sz_rel1e-4", n), &data, |b, d| {
            let sz = SzCompressor::new();
            b.iter(|| sz.compress(d, ErrorBound::PointwiseRel(1e-4)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("zfp_abs1e-4", n), &data, |b, d| {
            let zfp = ZfpCompressor::new();
            b.iter(|| zfp.compress(d, ErrorBound::Abs(1e-4)).unwrap())
        });
    }
    group.finish();
}

fn bench_lossy_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossy_decompress");
    let n = 100_000;
    let data = solver_like_vector(n);
    let sz = SzCompressor::new();
    let compressed = sz.compress(&data, ErrorBound::PointwiseRel(1e-4)).unwrap();
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function("sz_rel1e-4", |b| b.iter(|| sz.decompress(&compressed).unwrap()));
    let zfp = ZfpCompressor::new();
    let zfp_compressed = zfp.compress(&data, ErrorBound::Abs(1e-4)).unwrap();
    group.bench_function("zfp_abs1e-4", |b| {
        b.iter(|| zfp.decompress(&zfp_compressed).unwrap())
    });
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    // SZ-like quantization codes: heavily skewed towards the zero bin.
    let n = 100_000usize;
    let symbols: Vec<u32> = (0..n)
        .map(|i| {
            let t = i as f64 / 977.0;
            (32_769i64 + (6.0 * t.sin()) as i64).clamp(0, 65_537) as u32
        })
        .collect();
    let mut group = c.benchmark_group("huffman");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("encode_block", |b| {
        b.iter(|| huffman::encode_block(&symbols))
    });
    let blob = huffman::encode_block(&symbols);
    group.bench_function("decode_block", |b| {
        b.iter(|| {
            let mut pos = 0usize;
            huffman::decode_block(&blob, &mut pos).unwrap()
        })
    });
    group.finish();
}

fn bench_lossless(c: &mut Criterion) {
    let mut group = c.benchmark_group("lossless_compress");
    let n = 100_000;
    let data = solver_like_vector(n);
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function("fpc", |b| {
        let codec = FpcCodec::new();
        b.iter(|| codec.compress(&data).unwrap())
    });
    group.bench_function("fpc+lzss", |b| {
        let codec = LosslessPipeline::new();
        b.iter(|| codec.compress(&data).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lossy_compress,
    bench_lossy_decompress,
    bench_huffman,
    bench_lossless
);
criterion_main!(benches);
