//! CI perf-regression gate: compare a fresh measurement run against a
//! committed `BENCH_*.json` baseline and fail on significant throughput
//! drops.
//!
//! The comparison logic is deliberately pure (measurements in, verdict
//! out) so the gate itself is unit-testable — including the "injected 20 %
//! slowdown must fail" case CI relies on.  The bench binaries
//! (`scaling_kernels`, `fig_solver_throughput`) parse their committed
//! baseline with the `serde_json` shim's [`Value`] parser, reduce both
//! sides to [`Measurement`]s and call [`compare`].
//!
//! ## Host gating
//!
//! Throughput is only comparable on the same host class.  Every baseline
//! records `host_parallelism` (`std::thread::available_parallelism()` at
//! measurement time); when the current host's value differs, the gate
//! **skips with a warning** instead of producing false verdicts — a CI
//! runner must not be judged against a laptop's baseline.  Rates are
//! compared per `(key, threads)` pair, so a baseline measured at more pool
//! threads than the current run simply has its extra rows ignored.
//! Pairs with more pool threads than the host has hardware threads are
//! skipped too: an oversubscribed pool measures scheduler context-switch
//! noise (±40 % run-to-run on a 1-core container), not kernel throughput,
//! and would trip the gate on nothing.
//!
//! ## Normalisation
//!
//! Kernel rows compare Melem/s, which is size-independent for these
//! streaming kernels — quick-mode runs (2²⁰ elements) are comparable
//! against full-mode baselines (2²²).  Solver rows compare *unknown
//! updates per second* (`iters/s × unknowns`), the size-normalised
//! throughput, and reduce each `(solver, threads)` group to its best grid
//! first — quick mode runs smaller grids than the committed baselines.

use serde_json::Value;

/// Relative drop tolerated before the gate fails: 15 %.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One comparable throughput sample: a kernel or solver (`key`) at a pool
/// thread count, with its size-normalised rate (Melem/s for kernels,
/// unknown-updates/s for solvers).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Kernel or solver name.
    pub key: String,
    /// Pool threads the sample was measured at.
    pub threads: usize,
    /// Size-normalised throughput (higher is better).
    pub rate: f64,
}

impl Measurement {
    /// Convenience constructor.
    pub fn new(key: impl Into<String>, threads: usize, rate: f64) -> Measurement {
        Measurement {
            key: key.into(),
            threads,
            rate,
        }
    }
}

/// A parsed baseline file: its host class and its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// `host_parallelism` recorded when the baseline was measured.
    pub host_parallelism: usize,
    /// The baseline's throughput samples.
    pub rows: Vec<Measurement>,
}

/// The gate's verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Every compared pair was within tolerance.
    Pass {
        /// Number of `(key, threads)` pairs compared.
        compared: usize,
    },
    /// At least one pair regressed beyond tolerance.
    Fail {
        /// Number of `(key, threads)` pairs compared.
        compared: usize,
        /// One line per regressed pair.
        regressions: Vec<String>,
    },
    /// Baseline and current host classes differ — no verdict.
    Skipped {
        /// Why the gate did not run.
        reason: String,
    },
}

impl GateOutcome {
    /// Whether CI should fail on this outcome.
    pub fn is_failure(&self) -> bool {
        matches!(self, GateOutcome::Fail { .. })
    }
}

/// Compares `current` measurements against `baseline` per `(key, threads)`
/// pair: any pair whose current rate drops more than `tolerance`
/// (fractional, e.g. 0.15) below the baseline rate is a regression.
/// Pairs present on only one side are ignored — quick runs measure fewer
/// thread counts than full baselines.  Pairs with `threads >
/// host_parallelism` are ignored as well: oversubscribed pools time the
/// scheduler, not the kernel (see the module docs).
///
/// When `host_parallelism` differs from the baseline's, the gate skips:
/// cross-host throughput comparison produces false verdicts, not guard
/// rails.
pub fn compare(
    baseline: &Baseline,
    current: &[Measurement],
    host_parallelism: usize,
    tolerance: f64,
) -> GateOutcome {
    if baseline.host_parallelism != host_parallelism {
        return GateOutcome::Skipped {
            reason: format!(
                "baseline host_parallelism {} != current {} — throughput not comparable \
                 across host classes; re-baseline with --force-baseline on this host",
                baseline.host_parallelism, host_parallelism
            ),
        };
    }
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for base in &baseline.rows {
        if base.threads > host_parallelism {
            continue;
        }
        let Some(cur) = current
            .iter()
            .find(|m| m.key == base.key && m.threads == base.threads)
        else {
            continue;
        };
        if !(base.rate.is_finite() && base.rate > 0.0) {
            continue;
        }
        compared += 1;
        let ratio = cur.rate / base.rate;
        if ratio < 1.0 - tolerance {
            regressions.push(format!(
                "{} @{}t: {:.1} -> {:.1} ({:+.1}%, tolerance -{:.0}%)",
                base.key,
                base.threads,
                base.rate,
                cur.rate,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        GateOutcome::Pass { compared }
    } else {
        GateOutcome::Fail {
            compared,
            regressions,
        }
    }
}

/// Extracts a kernel baseline (`BENCH_kernels.json` layout) from parsed
/// JSON: rate = `melem_per_s` per `(kernel, threads)` row.
///
/// # Errors
/// Returns a description of the first missing/mistyped field.
pub fn kernel_baseline(doc: &Value) -> Result<Baseline, String> {
    let host_parallelism = doc
        .get("host_parallelism")
        .and_then(Value::as_u64)
        .ok_or("baseline missing numeric 'host_parallelism'")? as usize;
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("baseline missing 'rows' array")?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let key = row
            .get("kernel")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing 'kernel'"))?;
        let threads = row
            .get("threads")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("row {i}: missing 'threads'"))? as usize;
        let rate = row
            .get("melem_per_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: missing 'melem_per_s'"))?;
        out.push(Measurement::new(key, threads, rate));
    }
    Ok(Baseline {
        host_parallelism,
        rows: out,
    })
}

/// Extracts a solver baseline (`BENCH_solvers.json` layout) from parsed
/// JSON: rate = `fused_iters_per_s × unknowns`, reduced to the best grid
/// per `(solver, threads)` — see the module docs on normalisation.
///
/// # Errors
/// Returns a description of the first missing/mistyped field.
pub fn solver_baseline(doc: &Value) -> Result<Baseline, String> {
    let host_parallelism = doc
        .get("host_parallelism")
        .and_then(Value::as_u64)
        .ok_or("baseline missing numeric 'host_parallelism'")? as usize;
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("baseline missing 'rows' array")?;
    let mut out: Vec<Measurement> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let key = row
            .get("solver")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing 'solver'"))?;
        let threads = row
            .get("threads")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("row {i}: missing 'threads'"))? as usize;
        let unknowns = row
            .get("unknowns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: missing 'unknowns'"))?;
        let iters = row
            .get("fused_iters_per_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: missing 'fused_iters_per_s'"))?;
        merge_best(&mut out, Measurement::new(key, threads, iters * unknowns));
    }
    Ok(Baseline {
        host_parallelism,
        rows: out,
    })
}

/// Extracts a shard-scaling baseline (`BENCH_shards.json` layout) from
/// parsed JSON: rate = `iters_per_s × unknowns` with the shard count in
/// the `threads` slot (shards *are* the parallelism on the sharded
/// backend — its loops never touch the kernel pool), reduced to the best
/// grid per `(solver, shards)`.
///
/// # Errors
/// Returns a description of the first missing/mistyped field.
pub fn shard_baseline(doc: &Value) -> Result<Baseline, String> {
    let host_parallelism = doc
        .get("host_parallelism")
        .and_then(Value::as_u64)
        .ok_or("baseline missing numeric 'host_parallelism'")? as usize;
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("baseline missing 'rows' array")?;
    let mut out: Vec<Measurement> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let key = row
            .get("solver")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing 'solver'"))?;
        let shards = row
            .get("shards")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("row {i}: missing 'shards'"))? as usize;
        let unknowns = row
            .get("unknowns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: missing 'unknowns'"))?;
        let iters = row
            .get("iters_per_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("row {i}: missing 'iters_per_s'"))?;
        merge_best(&mut out, Measurement::new(key, shards, iters * unknowns));
    }
    Ok(Baseline {
        host_parallelism,
        rows: out,
    })
}

/// Folds a sample into a best-rate-per-`(key, threads)` accumulator — the
/// solver normalisation's max-over-grids reduction.
pub fn merge_best(rows: &mut Vec<Measurement>, m: Measurement) {
    match rows
        .iter_mut()
        .find(|r| r.key == m.key && r.threads == m.threads)
    {
        Some(r) => r.rate = r.rate.max(m.rate),
        None => rows.push(m),
    }
}

/// Whether a committed baseline at `path` exists, records a
/// `host_parallelism`, and that value differs from the current host's.
/// A missing or unparsable file is *not* a mismatch — writing a first
/// baseline (or replacing a corrupt one) must stay possible without
/// `--force-baseline`.
pub fn baseline_host_mismatch(path: &str, host_parallelism: usize) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    let Ok(doc) = serde_json::from_str(&text) else {
        return false;
    };
    match doc.get("host_parallelism").and_then(Value::as_u64) {
        Some(recorded) => recorded as usize != host_parallelism,
        None => false,
    }
}

/// Loads and parses a baseline file, then runs the gate and prints its
/// verdict; returns whether CI should fail.  `extract` is
/// [`kernel_baseline`] or [`solver_baseline`].
pub fn run_gate(
    path: &str,
    current: &[Measurement],
    host_parallelism: usize,
    extract: fn(&Value) -> Result<Baseline, String>,
) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf-gate: cannot read baseline {path}: {e}");
            return true;
        }
    };
    let doc = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf-gate: cannot parse baseline {path}: {e}");
            return true;
        }
    };
    let baseline = match extract(&doc) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf-gate: malformed baseline {path}: {e}");
            return true;
        }
    };
    match compare(&baseline, current, host_parallelism, DEFAULT_TOLERANCE) {
        GateOutcome::Pass { compared } => {
            println!("perf-gate: PASS — {compared} (key, threads) pairs within 15% of {path}");
            false
        }
        GateOutcome::Fail {
            compared,
            regressions,
        } => {
            eprintln!(
                "perf-gate: FAIL — {} of {compared} pairs regressed >15% vs {path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            true
        }
        GateOutcome::Skipped { reason } => {
            println!("perf-gate: SKIPPED — {reason}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Baseline {
        Baseline {
            host_parallelism: 4,
            rows: vec![
                Measurement::new("dot", 1, 1000.0),
                Measurement::new("dot", 4, 900.0),
                Measurement::new("sz_compress", 1, 100.0),
            ],
        }
    }

    #[test]
    fn within_tolerance_passes() {
        // 10% slower than baseline: inside the 15% band.
        let current = vec![
            Measurement::new("dot", 1, 900.0),
            Measurement::new("dot", 4, 1100.0),
            Measurement::new("sz_compress", 1, 95.0),
        ];
        let out = compare(&baseline(), &current, 4, DEFAULT_TOLERANCE);
        assert_eq!(out, GateOutcome::Pass { compared: 3 });
        assert!(!out.is_failure());
    }

    #[test]
    fn injected_20_percent_slowdown_fails() {
        // The CI acceptance case: a 20% drop on one kernel must fail.
        let current = vec![
            Measurement::new("dot", 1, 800.0),
            Measurement::new("dot", 4, 900.0),
            Measurement::new("sz_compress", 1, 100.0),
        ];
        let out = compare(&baseline(), &current, 4, DEFAULT_TOLERANCE);
        assert!(out.is_failure());
        match out {
            GateOutcome::Fail {
                compared,
                regressions,
            } => {
                assert_eq!(compared, 3);
                assert_eq!(regressions.len(), 1);
                assert!(regressions[0].contains("dot @1t"), "{}", regressions[0]);
                assert!(regressions[0].contains("-20.0%"), "{}", regressions[0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn host_mismatch_skips() {
        let current = vec![Measurement::new("dot", 1, 10.0)];
        let out = compare(&baseline(), &current, 8, DEFAULT_TOLERANCE);
        assert!(matches!(out, GateOutcome::Skipped { .. }));
        assert!(!out.is_failure());
    }

    #[test]
    fn oversubscribed_pairs_are_skipped() {
        // On a 1-core host a 4-thread pool times the scheduler, not the
        // kernel: a 1-core baseline's multi-thread rows must not gate even
        // when the current run craters on them.
        let base = Baseline {
            host_parallelism: 1,
            rows: vec![
                Measurement::new("dot", 1, 1000.0),
                Measurement::new("dot", 4, 900.0),
            ],
        };
        let current = vec![
            Measurement::new("dot", 1, 1000.0),
            Measurement::new("dot", 4, 100.0),
        ];
        let out = compare(&base, &current, 1, DEFAULT_TOLERANCE);
        assert_eq!(out, GateOutcome::Pass { compared: 1 });
    }

    #[test]
    fn missing_pairs_are_ignored() {
        // Quick mode measures fewer thread counts; absent pairs must not
        // fail the gate.
        let current = vec![Measurement::new("dot", 1, 1000.0)];
        let out = compare(&baseline(), &current, 4, DEFAULT_TOLERANCE);
        assert_eq!(out, GateOutcome::Pass { compared: 1 });
    }

    #[test]
    fn kernel_baseline_parses_bench_file_layout() {
        let doc = serde_json::from_str(
            r#"{"bench": "scaling_kernels", "quick": false, "pool_threads": 4,
                "host_parallelism": 1, "rows": [
                  {"kernel": "dot", "threads": 1, "elements": 4194304,
                   "seconds": 0.003, "melem_per_s": 1364.0,
                   "speedup_vs_1t": 1.0, "bit_identical": true}]}"#,
        )
        .unwrap();
        let b = kernel_baseline(&doc).unwrap();
        assert_eq!(b.host_parallelism, 1);
        assert_eq!(b.rows, vec![Measurement::new("dot", 1, 1364.0)]);
    }

    #[test]
    fn solver_baseline_takes_best_grid_per_solver_thread_pair() {
        let doc = serde_json::from_str(
            r#"{"bench": "solver_throughput", "host_parallelism": 1, "rows": [
                  {"solver": "CG", "grid": 40, "unknowns": 64000, "threads": 1,
                   "fused_iters_per_s": 1000.0},
                  {"solver": "CG", "grid": 64, "unknowns": 262144, "threads": 1,
                   "fused_iters_per_s": 300.0}]}"#,
        )
        .unwrap();
        let b = solver_baseline(&doc).unwrap();
        // 300 × 262144 > 1000 × 64000: the larger grid wins.
        assert_eq!(b.rows, vec![Measurement::new("CG", 1, 300.0 * 262144.0)]);
    }

    #[test]
    fn shard_baseline_keys_on_shard_count() {
        let doc = serde_json::from_str(
            r#"{"bench": "fig_shard_scaling", "host_parallelism": 1, "rows": [
                  {"solver": "sharded-cg", "grid": 16, "unknowns": 4096,
                   "shards": 1, "iters_per_s": 500.0},
                  {"solver": "sharded-cg", "grid": 24, "unknowns": 13824,
                   "shards": 2, "iters_per_s": 400.0}]}"#,
        )
        .unwrap();
        let b = shard_baseline(&doc).unwrap();
        assert_eq!(
            b.rows,
            vec![
                Measurement::new("sharded-cg", 1, 500.0 * 4096.0),
                Measurement::new("sharded-cg", 2, 400.0 * 13824.0),
            ]
        );
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let doc = serde_json::from_str(r#"{"rows": []}"#).unwrap();
        assert!(kernel_baseline(&doc).is_err());
        let doc = serde_json::from_str(r#"{"host_parallelism": 1}"#).unwrap();
        assert!(solver_baseline(&doc).is_err());
        let doc = serde_json::from_str(r#"{"host_parallelism": 1}"#).unwrap();
        assert!(shard_baseline(&doc).is_err());
    }
}
