//! # lcr-bench
//!
//! Benchmark harness for the lossy-checkpointing reproduction: one binary
//! per table/figure of the paper's evaluation section (run with
//! `cargo run -p lcr-bench --release --bin <name>`), plus Criterion
//! micro-benchmarks (`cargo bench -p lcr-bench`).
//!
//! Every binary prints two things:
//!
//! 1. an aligned, human-readable table mirroring the paper's table/figure;
//! 2. a trailing `JSON:` line with the raw rows, so downstream tooling can
//!    re-plot the series.
//!
//! The binaries accept a `--quick` flag (also enabled by setting
//! `LCR_QUICK=1`) that shrinks the locally solved problem and the number of
//! repetitions so the full suite completes in a couple of minutes; without
//! it the defaults match the configuration recorded in `EXPERIMENTS.md`.
//!
//! The baseline-writing binaries (`scaling_kernels`,
//! `fig_solver_throughput`) additionally accept `--compare <baseline.json>`
//! (run the [`perfgate`] regression gate against a committed baseline and
//! exit non-zero on a >15 % throughput drop) and `--force-baseline`
//! (overwrite a committed baseline even when it was measured on a
//! different host class).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfgate;

use serde::Serialize;

/// Scale knobs shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Edge length of the locally solved 3-D grid.
    pub local_grid_edge: usize,
    /// Number of repetitions / trials where applicable.
    pub repetitions: usize,
    /// Iteration cap for solver runs.
    pub max_iterations: usize,
}

impl BenchScale {
    /// The default (full) scale used for the recorded experiments.
    pub fn full() -> Self {
        BenchScale {
            local_grid_edge: 16,
            repetitions: 5,
            max_iterations: 500_000,
        }
    }

    /// The reduced scale used by `--quick` / `LCR_QUICK=1`.
    pub fn quick() -> Self {
        BenchScale {
            local_grid_edge: 8,
            repetitions: 2,
            max_iterations: 200_000,
        }
    }

    /// Picks the scale from the process arguments and environment.
    pub fn from_env_and_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("LCR_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// Prints a titled, aligned table of rows.
///
/// `headers` names the columns; `rows` supplies the cell text.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Prints the machine-readable JSON payload for a figure/table.
pub fn print_json<T: Serialize>(label: &str, rows: &T) {
    match serde_json::to_string(rows) {
        Ok(json) => println!("\nJSON {label}: {json}"),
        Err(err) => eprintln!("failed to serialise {label}: {err}"),
    }
}

/// Formats a float with the given number of decimals (helper for the row
/// builders).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        let full = BenchScale::full();
        let quick = BenchScale::quick();
        assert!(quick.local_grid_edge < full.local_grid_edge);
        assert!(quick.repetitions <= full.repetitions);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn print_helpers_do_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
        print_json("demo", &vec![1, 2, 3]);
    }
}
