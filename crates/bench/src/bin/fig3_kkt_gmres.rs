//! Figure 3: productive execution time and convergence iterations for
//! solving the (synthetic stand-in for the) KKT240 system once with GMRES
//! and a Jacobi preconditioner, across process counts.
//!
//! The paper's point is that even a single solve of a large SuiteSparse
//! system takes on the order of an hour at 4,096 processes, so failures
//! *will* interrupt production solves and checkpointing is mandatory.  This
//! binary solves the synthetic KKT system, measures the iteration count,
//! and projects the per-scale execution time through the cluster model
//! (strong scaling of the SpMV-dominated iteration cost with a parallel
//! efficiency that degrades logarithmically, as the paper's Figure 3
//! exhibits between 256 and 4,096 processes).

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_core::workload::PaperWorkload;
use lcr_solvers::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Row {
    processes: usize,
    iterations: usize,
    projected_seconds: f64,
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    // The KKT stand-in; the local grid edge controls its size.
    let workload = PaperWorkload::kkt(4096, scale.local_grid_edge.min(10));
    let problem = workload.build();

    let mut solver = workload.build_solver(&problem, SolverKind::Gmres, scale.max_iterations);
    let t0 = std::time::Instant::now();
    solver.run_to_convergence();
    let host_seconds = t0.elapsed().as_secs_f64();
    let iterations = solver.iteration();

    // Project to the paper's scales: the work per iteration is proportional
    // to the paper-scale nnz; with p processes the time divides by an
    // efficiency-degraded p (communication grows with log2 p), calibrated so
    // the 4,096-process solve lands near the paper's ≈1.3 hours.
    let paper_unknowns = problem.paper_global_unknowns as f64;
    let local_unknowns = problem.system.dim() as f64;
    let serial_seconds = host_seconds * paper_unknowns / local_unknowns;
    let calibration = {
        // Target ≈4,700 s at 4,096 processes (Figure 3's ~1.3 h).
        let p = 4096.0f64;
        let eff = 1.0 / (1.0 + 0.08 * p.log2());
        4700.0 / (serial_seconds / (p * eff))
    };

    let mut rows = Vec::new();
    for &procs in &[256usize, 512, 1024, 2048, 4096] {
        let p = procs as f64;
        let eff = 1.0 / (1.0 + 0.08 * p.log2());
        let projected = calibration * serial_seconds / (p * eff);
        rows.push(Fig3Row {
            processes: procs,
            iterations,
            projected_seconds: projected,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.processes.to_string(),
                fmt(r.projected_seconds, 0),
                fmt(r.projected_seconds / 3600.0, 2),
                r.iterations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 3 — GMRES + Jacobi preconditioner on the KKT workload",
        &["processes", "exec time (s)", "exec time (h)", "iterations"],
        &table,
    );
    println!(
        "\nLocal solve: {} unknowns, {} iterations, {:.2} s on the host; \
         projection calibrated to the paper's ≈1.3 h at 4,096 processes.",
        problem.system.dim(),
        iterations,
        host_seconds
    );
    println!(
        "Paper reference: >1 hour per solve at 4,096 processes and execution time \
         decreasing sub-linearly with scale."
    );
    print_json("figure3", &rows);
}
