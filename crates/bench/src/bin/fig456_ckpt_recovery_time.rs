//! Figures 4, 5 and 6: average time of one checkpoint and one recovery for
//! Jacobi (Fig. 4), GMRES (Fig. 5) and CG (Fig. 6) under traditional,
//! lossless and lossy checkpointing, across 256–2,048 processes.
//!
//! Pass `jacobi`, `gmres`, `cg` or `all` (default) as the first positional
//! argument.

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_ckpt::PfsModel;
use lcr_core::experiment::{checkpoint_recovery_times, PAPER_PROCESS_COUNTS};
use lcr_solvers::SolverKind;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let which = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "all".to_string());
    let solvers: Vec<(SolverKind, &str)> = match which.as_str() {
        "jacobi" => vec![(SolverKind::Jacobi, "Figure 4")],
        "gmres" => vec![(SolverKind::Gmres, "Figure 5")],
        "cg" => vec![(SolverKind::Cg, "Figure 6")],
        _ => vec![
            (SolverKind::Jacobi, "Figure 4"),
            (SolverKind::Gmres, "Figure 5"),
            (SolverKind::Cg, "Figure 6"),
        ],
    };

    let pfs = PfsModel::bebop_like();
    let mut all_rows = Vec::new();
    for (kind, figure) in solvers {
        let rows = checkpoint_recovery_times(
            kind,
            PAPER_PROCESS_COUNTS,
            scale.local_grid_edge,
            &pfs,
            scale.max_iterations,
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.processes.to_string(),
                    r.strategy.clone(),
                    fmt(r.checkpoint_seconds, 1),
                    fmt(r.recovery_seconds, 1),
                ]
            })
            .collect();
        print_table(
            &format!(
                "{figure} — average checkpoint/recovery time for {} (seconds)",
                kind.name()
            ),
            &["processes", "scheme", "checkpoint (s)", "recovery (s)"],
            &table,
        );
        all_rows.extend(rows);
    }
    println!(
        "\nPaper reference: times grow roughly linearly with the process count \
         (weak scaling against a fixed-aggregate-bandwidth PFS); lossy < lossless < \
         traditional at every scale, with the largest gap for CG (two vectors \
         traditionally, one vector lossily)."
    );
    print_json("figures456", &all_rows);
}
