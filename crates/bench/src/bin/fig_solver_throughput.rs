//! Solver-throughput benchmark: fused vs. unfused Krylov inner loops.
//!
//! The PR that introduced `lcr_sparse::kernels` rewired every solver's hot
//! loop onto fused kernels (`spmv_dot`, `axpy2_norm2`, `waxpy_norm2`,
//! `dot2`, …) driven by the precomputed per-matrix `SpmvPlan`, roughly
//! halving the full-vector memory passes per iteration.  This binary
//! measures what that bought: CG, BiCGStab and GMRES(30) iterations/s on
//! the paper's 3-D Poisson stencil at two local sizes and 1/2/N pool
//! threads, with an **unfused column** produced by in-bin replicas of the
//! seed kernel sequences (separate SpMV, dot, axpy, norm sweeps, and the
//! seed SpMV's per-call chunk policy).
//!
//! Along the way it asserts the fusion determinism contract: the residual
//! trace of every fused solver is **bit-identical** across thread counts
//! (the chunk partitions depend only on data shape, partials combine in
//! chunk order).  CI runs `--quick` and fails if 1-vs-N identity breaks.
//!
//! Prints the usual aligned table + `JSON:` line and writes
//! `BENCH_solvers.json` into the current directory (the repo root) on full
//! runs, so later PRs can track the solver-throughput trajectory.
//!
//! `--compare <baseline.json>` runs the perf-regression gate: rows reduce
//! to unknown-updates/s (`iters/s × unknowns`, best grid per
//! `(solver, threads)`, so quick grids gate against full-run baselines)
//! and a >15 % drop on a same-host-class baseline exits 1.  Overwriting a
//! committed baseline measured on a different host class requires
//! `--force-baseline`.

use lcr_bench::{fmt, perfgate, print_json, print_table};
use lcr_solvers::{
    BiCgStab, ConjugateGradient, Gmres, IterativeMethod, LinearSystem, StoppingCriteria,
};
use lcr_sparse::poisson::{manufactured_rhs, poisson3d};
use lcr_sparse::vector::PAR_THRESHOLD;
use lcr_sparse::{CsrMatrix, Vector};
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// One measured (solver, grid, thread-count) point.
#[derive(Debug, Clone, Serialize)]
struct ThroughputRow {
    /// Solver family.
    solver: String,
    /// Local grid edge (the system has `grid³` unknowns).
    grid: usize,
    /// Number of unknowns.
    unknowns: usize,
    /// Threads the pool was capped to.
    threads: usize,
    /// Fused (shipped solver) iterations per second.
    fused_iters_per_s: f64,
    /// Unfused (seed kernel sequence) iterations per second.
    unfused_iters_per_s: f64,
    /// fused / unfused.
    fused_speedup: f64,
    /// Whether the fused residual trace is bit-identical to the 1-thread
    /// trace of the same solver and size.
    trace_bit_identical: bool,
}

/// The emitted `BENCH_solvers.json` document.
#[derive(Debug, Serialize)]
struct BenchFile {
    bench: String,
    quick: bool,
    pool_threads: usize,
    /// Hardware threads of the measuring host (speedup columns measure
    /// oversubscription, not scaling, when below `pool_threads`).
    host_parallelism: usize,
    rows: Vec<ThroughputRow>,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The seed `CsrMatrix::spmv`: per-call chunk policy, separate row-kernel
/// sweeps with bounds-checked gathers — the baseline the fused plan-driven
/// traversal replaced.
fn unfused_spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    let (indptr, indices, values) = (a.indptr(), a.indices(), a.values());
    let row_kernel = |i: usize, yi: &mut f64| {
        let (start, end) = (indptr[i], indptr[i + 1]);
        let mut sum = 0.0;
        for k in start..end {
            sum += values[k] * x[indices[k]];
        }
        *yi = sum;
    };
    if a.nnz() >= PAR_THRESHOLD {
        let avg_row_nnz = (a.nnz() / a.nrows().max(1)).max(1);
        let min_rows = (rayon::DEFAULT_MIN_CHUNK / avg_row_nnz).max(1);
        y.par_iter_mut()
            .with_min_len(min_rows)
            .enumerate()
            .for_each(|(i, yi)| row_kernel(i, yi));
    } else {
        y.iter_mut()
            .enumerate()
            .for_each(|(i, yi)| row_kernel(i, yi));
    }
}

/// Seed-composition unpreconditioned CG: one struct per solver family so
/// the unfused column measures exactly the kernel sequence the fused
/// solvers replaced (identity preconditioner applications included).
struct UnfusedCg {
    system: LinearSystem,
    x: Vector,
    r: Vector,
    p: Vector,
    q: Vector,
    z: Vector,
    rho: f64,
    trace: Vec<f64>,
}

impl UnfusedCg {
    fn new(system: LinearSystem, x0: Vector) -> Self {
        let r = system.a.residual(&x0, &system.b);
        let z = r.clone();
        let rho = r.dot(&z);
        let n = system.dim();
        UnfusedCg {
            system,
            x: x0,
            p: z,
            r,
            q: Vector::zeros(n),
            z: Vector::zeros(n),
            rho,
            trace: Vec::new(),
        }
    }

    fn step(&mut self) {
        unfused_spmv(&self.system.a, self.p.as_slice(), self.q.as_mut_slice());
        let pq = self.p.dot(&self.q);
        let alpha = self.rho / pq;
        self.x.axpy(alpha, &self.p);
        self.r.axpy(-alpha, &self.q);
        self.z.copy_from(&self.r); // identity M⁻¹ r
        let rho_next = self.r.dot(&self.z);
        let beta = rho_next / self.rho;
        self.rho = rho_next;
        self.p.xpby(&self.z, beta);
        self.trace.push(self.r.norm2());
    }
}

/// Seed-composition unpreconditioned BiCGStab.
struct UnfusedBiCgStab {
    system: LinearSystem,
    x: Vector,
    r: Vector,
    r_hat: Vector,
    p: Vector,
    v: Vector,
    p_hat: Vector,
    s: Vector,
    s_hat: Vector,
    t: Vector,
    rho: f64,
    alpha: f64,
    omega: f64,
    trace: Vec<f64>,
}

impl UnfusedBiCgStab {
    fn new(system: LinearSystem, x0: Vector) -> Self {
        let r = system.a.residual(&x0, &system.b);
        let n = system.dim();
        UnfusedBiCgStab {
            system,
            x: x0,
            r_hat: r.clone(),
            r,
            p: Vector::zeros(n),
            v: Vector::zeros(n),
            p_hat: Vector::zeros(n),
            s: Vector::zeros(n),
            s_hat: Vector::zeros(n),
            t: Vector::zeros(n),
            rho: 1.0,
            alpha: 1.0,
            omega: 1.0,
            trace: Vec::new(),
        }
    }

    fn step(&mut self) {
        let rho_next = self.r_hat.dot(&self.r);
        let beta = (rho_next / self.rho) * (self.alpha / self.omega);
        self.rho = rho_next;
        self.p.axpy(-self.omega, &self.v);
        self.p.scale(beta);
        self.p.axpy(1.0, &self.r);
        self.p_hat.copy_from(&self.p); // identity M⁻¹ p
        unfused_spmv(&self.system.a, self.p_hat.as_slice(), self.v.as_mut_slice());
        let denom = self.r_hat.dot(&self.v);
        self.alpha = self.rho / denom;
        self.s.copy_from(&self.r);
        self.s.axpy(-self.alpha, &self.v);
        let _ = self.s.norm2(); // the seed's early-exit check sweep
        self.s_hat.copy_from(&self.s); // identity M⁻¹ s
        unfused_spmv(&self.system.a, self.s_hat.as_slice(), self.t.as_mut_slice());
        let tt = self.t.dot(&self.t);
        self.omega = if tt > 0.0 { self.t.dot(&self.s) / tt } else { 0.0 };
        self.x.axpy(self.alpha, &self.p_hat);
        self.x.axpy(self.omega, &self.s_hat);
        self.r.copy_from(&self.s);
        self.r.axpy(-self.omega, &self.t);
        self.trace.push(self.r.norm2());
    }
}

/// Seed-composition unpreconditioned GMRES(m): Arnoldi with modified
/// Gram–Schmidt, Givens rotations, separate norm/clone/scale sweeps.
struct UnfusedGmres {
    system: LinearSystem,
    restart: usize,
    x: Vector,
    basis: Vec<Vector>,
    hessenberg: Vec<Vec<f64>>,
    givens: Vec<(f64, f64)>,
    g: Vec<f64>,
    av: Vector,
    w: Vector,
    inner: usize,
    trace: Vec<f64>,
}

impl UnfusedGmres {
    fn new(system: LinearSystem, x0: Vector, restart: usize) -> Self {
        let n = system.dim();
        let mut solver = UnfusedGmres {
            system,
            restart,
            x: x0,
            basis: Vec::new(),
            hessenberg: Vec::new(),
            givens: Vec::new(),
            g: Vec::new(),
            av: Vector::zeros(n),
            w: Vector::zeros(n),
            inner: 0,
            trace: Vec::new(),
        };
        solver.begin_cycle();
        solver
    }

    fn begin_cycle(&mut self) {
        // Seed residual: SpMV followed by a separate subtraction sweep
        // (gated on nrows, as the seed `residual_into` was).
        unfused_spmv(&self.system.a, self.x.as_slice(), self.av.as_mut_slice());
        let b = self.system.b.as_slice();
        if b.len() >= PAR_THRESHOLD {
            self.av
                .as_mut_slice()
                .par_iter_mut()
                .zip(b.par_iter())
                .for_each(|(ri, bi)| *ri = bi - *ri);
        } else {
            self.av
                .iter_mut()
                .zip(b.iter())
                .for_each(|(ri, bi)| *ri = bi - *ri);
        }
        self.w.copy_from(&self.av); // identity M⁻¹ r
        let beta = self.w.norm2();
        self.basis.clear();
        self.hessenberg.clear();
        self.givens.clear();
        self.g.clear();
        self.inner = 0;
        if beta > 0.0 {
            let mut v0 = self.w.clone();
            v0.scale(1.0 / beta);
            self.basis.push(v0);
            self.g.push(beta);
        }
    }

    fn update_solution(&mut self) {
        let k = self.inner;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut sum = self.g[i];
            for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                sum -= self.hessenberg[j][i] * yj;
            }
            y[i] = sum / self.hessenberg[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            self.x.axpy(yj, &self.basis[j]);
        }
    }

    fn step(&mut self) {
        let j = self.inner;
        unfused_spmv(&self.system.a, self.basis[j].as_slice(), self.av.as_mut_slice());
        self.w.copy_from(&self.av); // identity M⁻¹ A v_j
        let mut h_col = Vec::with_capacity(j + 2);
        for vi in self.basis.iter().take(j + 1) {
            let hij = self.w.dot(vi);
            self.w.axpy(-hij, vi);
            h_col.push(hij);
        }
        let h_next = self.w.norm2();
        h_col.push(h_next);
        for (i, &(c, s)) in self.givens.iter().enumerate() {
            let temp = c * h_col[i] + s * h_col[i + 1];
            h_col[i + 1] = -s * h_col[i] + c * h_col[i + 1];
            h_col[i] = temp;
        }
        let (c, s) = {
            let a = h_col[j];
            let b = h_col[j + 1];
            let denom = (a * a + b * b).sqrt();
            if denom == 0.0 {
                (1.0, 0.0)
            } else {
                (a / denom, b / denom)
            }
        };
        h_col[j] = c * h_col[j] + s * h_col[j + 1];
        h_col[j + 1] = 0.0;
        self.givens.push((c, s));
        let gj = self.g[j];
        self.g.push(-s * gj);
        self.g[j] = c * gj;
        self.hessenberg.push(h_col);
        self.inner += 1;
        self.trace.push(self.g[self.inner].abs());
        if self.inner == self.restart || h_next == 0.0 {
            self.update_solution();
            self.begin_cycle();
        } else {
            let mut v_next = self.w.clone();
            v_next.scale(1.0 / h_next);
            self.basis.push(v_next);
        }
    }
}

/// Order-sensitive bit fingerprint of a residual trace.
fn trace_fingerprint(trace: &[f64]) -> u64 {
    trace
        .iter()
        .fold(0u64, |h, v| h.rotate_left(13) ^ v.to_bits())
}

/// SPD system for CG (the paper's generator is negative definite; flip the
/// sign of both sides) and the paper-sign system for BiCGStab/GMRES.
fn systems(grid: usize) -> (LinearSystem, LinearSystem) {
    let a = poisson3d(grid);
    let (_, b) = manufactured_rhs(&a);
    let mut a_spd = a.clone();
    for v in a_spd.values_mut() {
        *v = -*v;
    }
    let mut b_spd = b.clone();
    b_spd.scale(-1.0);
    (LinearSystem::new(a_spd, b_spd), LinearSystem::new(a, b))
}

/// Criteria that never trigger inside a measurement window.
fn open_criteria() -> StoppingCriteria {
    StoppingCriteria::new(0.0, usize::MAX)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("LCR_QUICK").map(|v| v == "1").unwrap_or(false);
    let no_json = args.iter().any(|a| a == "--no-json");
    let force_json = args.iter().any(|a| a == "--json");
    let force_baseline = args.iter().any(|a| a == "--force-baseline");
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .map(|i| args.get(i + 1).expect("--compare requires a path").clone());
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if std::env::var("LCR_NUM_THREADS").is_err() {
        rayon::initialize_pool(host_parallelism.max(4));
    }
    let pool_threads = rayon::pool_threads();
    if pool_threads > host_parallelism {
        println!(
            "note: pool has {pool_threads} threads on {host_parallelism} hardware \
             thread(s) — speedups across thread counts measure oversubscription"
        );
    }
    let mut thread_counts = vec![1usize, 2, pool_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t <= pool_threads);

    let (grids, steps, reps) = if quick {
        (vec![16usize, 24], 12usize, 2usize)
    } else {
        (vec![40usize, 64], 30usize, 3usize)
    };

    let mut rows: Vec<ThroughputRow> = Vec::new();
    for &grid in &grids {
        let (spd, plain) = systems(grid);
        let n = spd.dim();
        // Reference trace fingerprints from the 1-thread runs.
        let mut reference_fp: std::collections::HashMap<&str, u64> =
            std::collections::HashMap::new();

        for &threads in &thread_counts {
            rayon::set_max_active_threads(threads);

            // (solver, fused iters/s, unfused iters/s, fused trace fp)
            let mut measured: Vec<(&str, f64, f64, u64)> = Vec::new();

            // --- CG ----------------------------------------------------
            let mut fp = 0u64;
            let fused = median(
                (0..reps)
                    .map(|_| {
                        let mut cg = ConjugateGradient::unpreconditioned(
                            spd.clone(),
                            Vector::zeros(n),
                            open_criteria(),
                        );
                        let t = Instant::now();
                        for _ in 0..steps {
                            cg.step();
                        }
                        let secs = t.elapsed().as_secs_f64();
                        fp = trace_fingerprint(cg.history().residuals());
                        steps as f64 / secs
                    })
                    .collect(),
            );
            let unfused = median(
                (0..reps)
                    .map(|_| {
                        let mut cg = UnfusedCg::new(spd.clone(), Vector::zeros(n));
                        let t = Instant::now();
                        for _ in 0..steps {
                            cg.step();
                        }
                        steps as f64 / t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            measured.push(("cg", fused, unfused, fp));

            // --- BiCGStab ----------------------------------------------
            let mut fp = 0u64;
            let fused = median(
                (0..reps)
                    .map(|_| {
                        let mut solver = BiCgStab::unpreconditioned(
                            plain.clone(),
                            Vector::zeros(n),
                            open_criteria(),
                        );
                        let t = Instant::now();
                        for _ in 0..steps {
                            solver.step();
                        }
                        let secs = t.elapsed().as_secs_f64();
                        fp = trace_fingerprint(solver.history().residuals());
                        steps as f64 / secs
                    })
                    .collect(),
            );
            let unfused = median(
                (0..reps)
                    .map(|_| {
                        let mut solver = UnfusedBiCgStab::new(plain.clone(), Vector::zeros(n));
                        let t = Instant::now();
                        for _ in 0..steps {
                            solver.step();
                        }
                        steps as f64 / t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            measured.push(("bicgstab", fused, unfused, fp));

            // --- GMRES(30) ---------------------------------------------
            let mut fp = 0u64;
            let fused = median(
                (0..reps)
                    .map(|_| {
                        let mut solver = Gmres::unpreconditioned(
                            plain.clone(),
                            Vector::zeros(n),
                            30,
                            open_criteria(),
                        );
                        let t = Instant::now();
                        for _ in 0..steps {
                            solver.step();
                        }
                        let secs = t.elapsed().as_secs_f64();
                        fp = trace_fingerprint(solver.history().residuals());
                        steps as f64 / secs
                    })
                    .collect(),
            );
            let unfused = median(
                (0..reps)
                    .map(|_| {
                        let mut solver = UnfusedGmres::new(plain.clone(), Vector::zeros(n), 30);
                        let t = Instant::now();
                        for _ in 0..steps {
                            solver.step();
                        }
                        steps as f64 / t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            measured.push(("gmres", fused, unfused, fp));

            for (solver, fused, unfused, fp) in measured {
                let base = *reference_fp.entry(solver).or_insert(fp);
                rows.push(ThroughputRow {
                    solver: solver.to_string(),
                    grid,
                    unknowns: n,
                    threads,
                    fused_iters_per_s: fused,
                    unfused_iters_per_s: unfused,
                    fused_speedup: fused / unfused,
                    trace_bit_identical: fp == base,
                });
            }
        }
    }
    rayon::set_max_active_threads(0);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.solver.clone(),
                r.grid.to_string(),
                r.unknowns.to_string(),
                r.threads.to_string(),
                fmt(r.fused_iters_per_s, 1),
                fmt(r.unfused_iters_per_s, 1),
                fmt(r.fused_speedup, 2),
                if r.trace_bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Solver throughput: fused kernels vs seed composition",
        &[
            "solver",
            "grid",
            "unknowns",
            "threads",
            "fused it/s",
            "unfused it/s",
            "speedup",
            "trace bit-identical",
        ],
        &table,
    );
    print_json("fig_solver_throughput", &rows);

    // The determinism contract is load-bearing (CI runs this with --quick):
    // the fused residual traces must not depend on the thread count.
    assert!(
        rows.iter().all(|r| r.trace_bit_identical),
        "determinism violation: a fused solver trace changed with the thread count"
    );

    // Perf-regression gate: reduce to unknown-updates/s (size-normalised)
    // and compare against the committed baseline.
    if let Some(path) = compare_path {
        let mut current: Vec<perfgate::Measurement> = Vec::new();
        for r in &rows {
            perfgate::merge_best(
                &mut current,
                perfgate::Measurement::new(
                    r.solver.clone(),
                    r.threads,
                    r.fused_iters_per_s * r.unknowns as f64,
                ),
            );
        }
        if perfgate::run_gate(
            &path,
            &current,
            host_parallelism,
            perfgate::solver_baseline,
        ) {
            std::process::exit(1);
        }
    }

    if no_json || (quick && !force_json) {
        return;
    }
    // Same stale-host guard as scaling_kernels: don't silently replace a
    // baseline from a different host class.
    if !force_baseline
        && perfgate::baseline_host_mismatch("BENCH_solvers.json", host_parallelism)
    {
        eprintln!(
            "refusing to overwrite BENCH_solvers.json: committed baseline was measured \
             on a different host class (host_parallelism mismatch); pass --force-baseline \
             to re-baseline on this host"
        );
        std::process::exit(1);
    }
    let file = BenchFile {
        bench: "fig_solver_throughput".to_string(),
        quick,
        pool_threads,
        host_parallelism,
        rows,
    };
    match serde_json::to_string(&file) {
        Ok(json) => {
            if let Err(err) = std::fs::write("BENCH_solvers.json", json) {
                eprintln!("failed to write BENCH_solvers.json: {err}");
            } else {
                println!(
                    "\nwrote BENCH_solvers.json ({pool_threads}-thread pool, \
                     {host_parallelism} hardware thread(s))"
                );
            }
        }
        Err(err) => eprintln!("failed to serialise BENCH_solvers.json: {err}"),
    }
}
