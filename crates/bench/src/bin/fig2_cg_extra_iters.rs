//! Figure 2: average extra iterations of the CG method per lossy recovery
//! as a function of the relative error bound (§4.4.3).
//!
//! The paper reports 10 %–25 % extra iterations over bounds 1e-6 … 1e-3.

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_core::impact::figure2_sweep;
use lcr_core::workload::PaperWorkload;
use lcr_solvers::SolverKind;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let workload = PaperWorkload::poisson(2048, scale.local_grid_edge);
    let problem = workload.build();

    let bounds = [1e-3, 1e-4, 1e-5, 1e-6];
    let rows = figure2_sweep(
        &workload,
        &problem,
        SolverKind::Cg,
        &bounds,
        scale.repetitions.max(3),
        20180611,
        scale.max_iterations,
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0e}", r.error_bound),
                r.clean_iterations.to_string(),
                fmt(r.mean_extra_iterations, 1),
                format!("{:.1}%", r.mean_extra_fraction * 100.0),
                r.max_extra_iterations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 2 — average extra CG iterations per lossy recovery",
        &[
            "rel. error bound",
            "clean iters",
            "mean extra",
            "mean extra %",
            "max extra",
        ],
        &table,
    );
    println!(
        "\nPaper reference: 10%–25% extra iterations across bounds 1e-6 … 1e-3 \
         (tighter bound → smaller delay)."
    );
    print_json("figure2", &rows);
}
