//! Figure 9: residual-versus-iteration traces of the Jacobi method — a
//! failure-free execution compared with lossy-checkpointed executions that
//! suffer one and two failures/restarts.
//!
//! The paper's point: after a lossy recovery the Jacobi residual rejoins the
//! failure-free trajectory almost immediately (no extra iterations).

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lcr_core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lcr_core::strategy::CheckpointStrategy;
use lcr_core::workload::PaperWorkload;
use lcr_solvers::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Trace {
    label: String,
    failures: usize,
    restart_iterations: Vec<usize>,
    convergence_iterations: usize,
    residuals: Vec<f64>,
}

fn run_trace(
    workload: &PaperWorkload,
    scale: &BenchScale,
    mtti: f64,
    seed: Option<u64>,
    max_failures: usize,
) -> Fig9Trace {
    let problem = workload.build();
    let mut solver = workload.build_solver(&problem, SolverKind::Jacobi, scale.max_iterations);
    let report = FaultTolerantRunner::new(RunConfig {
        strategy: CheckpointStrategy::lossy_default(),
        checkpoint_interval_iterations: 10,
        anchor_interval_snapshots: 0,
        cluster: ClusterConfig::bebop_like(2048, 1.0),
        pfs: PfsModel::bebop_like(),
        level: CheckpointLevel::Pfs,
        mtti_seconds: mtti,
        failure_seed: seed,
        max_failures,
        max_executed_iterations: scale.max_iterations,
        num_threads: 0,
        persistence: Persistence::InMemory,
        backend: ExecutionBackend::Simulated,
    })
    .run(solver.as_mut(), &problem);
    Fig9Trace {
        label: format!("{} failure(s)", report.failures),
        failures: report.failures,
        restart_iterations: report.restart_iterations,
        convergence_iterations: report.convergence_iterations,
        residuals: report.residual_history,
    }
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let workload = PaperWorkload::poisson(2048, scale.local_grid_edge);

    // Failure-free, one-failure and two-failure executions.  The MTTI is
    // set relative to the run length so the requested number of failures
    // actually lands inside the execution.
    let clean = run_trace(&workload, &scale, f64::MAX, None, 0);
    let run_seconds = clean.convergence_iterations as f64 * 1.0;
    let one = run_trace(&workload, &scale, run_seconds / 2.0, Some(7), 1);
    let two = run_trace(&workload, &scale, run_seconds / 3.0, Some(11), 2);

    let traces = vec![clean, one, two];
    let table: Vec<Vec<String>> = traces
        .iter()
        .map(|t| {
            vec![
                t.label.clone(),
                t.failures.to_string(),
                format!("{:?}", t.restart_iterations),
                t.convergence_iterations.to_string(),
                fmt(*t.residuals.last().unwrap_or(&f64::NAN), 8),
            ]
        })
        .collect();
    print_table(
        "Figure 9 — Jacobi executions with lossy checkpointing",
        &[
            "execution",
            "failures",
            "restart at iters",
            "iters to converge",
            "final residual",
        ],
        &table,
    );

    // A compact view of the traces: residual every ~10% of the run.
    println!("\nResidual traces (sampled):");
    for t in &traces {
        let n = t.residuals.len().max(1);
        let samples: Vec<String> = (0..=10)
            .map(|k| {
                let idx = (k * (n - 1)) / 10;
                format!("{:.2e}", t.residuals.get(idx).copied().unwrap_or(f64::NAN))
            })
            .collect();
        println!("  {:>12}: {}", t.label, samples.join(" "));
    }
    println!(
        "\nPaper reference: all three executions converge in the same number of \
         iterations; the residual after each lossy restart returns to the \
         failure-free trajectory immediately."
    );
    print_json("figure9", &traces);
}
