//! Figure 1: expected fault-tolerance overhead as a function of the failure
//! rate and the time of one checkpoint (Equation 5 of the paper).
//!
//! The paper plots the surface over 0–3.5 failures/hour and 0–140 s; this
//! binary prints a coarse grid of the same surface plus the two slices the
//! paper's text highlights (T_ckp = 120 s at MTTI = 1 h and 3 h).

use lcr_bench::{fmt, print_json, print_table};
use lcr_perfmodel::{traditional_overhead_ratio, ExpectedOverheadSurface};

fn main() {
    let surface = ExpectedOverheadSurface::generate(3.5, 7, 140.0, 7);

    // Render the surface as a grid: rows = failure rate, columns = T_ckp.
    let ckpt_steps = 8usize;
    let rate_steps = 8usize;
    let headers_owned: Vec<String> = std::iter::once("fail/h \\ T_ckp(s)".to_string())
        .chain((0..ckpt_steps).map(|j| format!("{:.0}", 140.0 * j as f64 / 7.0)))
        .collect();
    let headers: Vec<&str> = headers_owned.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for i in 0..rate_steps {
        let rate = 3.5 * i as f64 / 7.0;
        let mut row = vec![fmt(rate, 2)];
        for j in 0..ckpt_steps {
            let t_ckp = 140.0 * j as f64 / 7.0;
            let overhead = traditional_overhead_ratio(t_ckp, rate / 3600.0);
            row.push(format!("{:.1}%", overhead * 100.0));
        }
        rows.push(row);
    }
    print_table(
        "Figure 1 — expected fault tolerance overhead (Equation 5)",
        &headers,
        &rows,
    );

    // The slices called out in §4.1.
    let hourly = traditional_overhead_ratio(120.0, 1.0 / 3600.0);
    let three_hourly = traditional_overhead_ratio(120.0, 1.0 / (3.0 * 3600.0));
    println!(
        "\nT_ckp = 120 s: expected overhead {:.1}% at MTTI = 1 h, {:.1}% at MTTI = 3 h \
         (paper: ≈40% at hourly MTTI)",
        hourly * 100.0,
        three_hourly * 100.0
    );

    print_json("figure1", &surface.points);
}
