//! Figure 7: expected fault-tolerance overhead of the three checkpointing
//! schemes for Jacobi, GMRES and CG, across 256–2,048 processes, at
//! MTTI = 1 hour (a) and MTTI = 3 hours (b), from the performance model of
//! Section 4.3 fed with the Figure 4–6 checkpoint times.

use lcr_bench::{print_json, print_table, BenchScale};
use lcr_ckpt::PfsModel;
use lcr_core::experiment::{expected_overhead, PAPER_PROCESS_COUNTS};
use lcr_solvers::SolverKind;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let pfs = PfsModel::bebop_like();
    let solvers = [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg];

    let mut all = Vec::new();
    for mtti_hours in [1.0, 3.0] {
        let rows = expected_overhead(
            &solvers,
            PAPER_PROCESS_COUNTS,
            mtti_hours,
            scale.local_grid_edge,
            &pfs,
            scale.max_iterations,
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.processes.to_string(),
                    r.solver.clone(),
                    r.strategy.clone(),
                    format!("{:.1}%", r.expected_overhead * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 7 — expected overhead, MTTI = {mtti_hours} h"),
            &["processes", "solver", "scheme", "expected overhead"],
            &table,
        );
        all.extend(rows);
    }
    println!(
        "\nPaper reference: lossy is lowest for Jacobi and GMRES at every scale; for \
         CG it wins beyond ≈1,536 procs (MTTI 1 h) / ≈768 procs (MTTI 3 h); lossy \
         curves grow much more slowly with scale than the other two."
    );
    print_json("figure7", &all);
}
