//! Shard-scaling benchmark for the domain-decomposed execution backend.
//!
//! Runs checkpoint-free sharded CG on the paper's 3-D Poisson stencil at
//! 1/2/4 shards and reports, per shard count, iterations/s plus the
//! halo-exchange overhead the decomposition pays for them: doubles (and
//! kB) crossing shard boundaries per iteration and lockstep reduction
//! rounds per iteration.  The 1-shard row is the no-communication
//! reference, so `speedup vs 1` isolates what concurrency buys net of the
//! halo traffic.
//!
//! Along the way it asserts the sharded determinism contract: every
//! multi-shard residual trace must be bit-identical to the 1-shard trace
//! of the same grid (fixed reduction-block size).  CI runs `--quick` and
//! fails if shard-count invariance breaks.
//!
//! Prints the usual aligned table + `JSON:` line and writes
//! `BENCH_shards.json` into the current directory (the repo root) on full
//! runs, so later PRs can track the sharded-backend trajectory.
//!
//! `--compare <baseline.json>` runs the perf-regression gate: rows reduce
//! to unknown-updates/s (`iters/s × unknowns`, best grid per
//! `(solver, shards)`, so quick grids gate against full-run baselines)
//! and a >15 % drop on a same-host-class baseline exits 1.  Overwriting a
//! committed baseline measured on a different host class requires
//! `--force-baseline`.

use lcr_bench::{fmt, perfgate, print_json, print_table};
use lcr_core::sharded::{run_sharded, ShardedReport, ShardedRunConfig};
use lcr_solvers::ShardedMethod;
use lcr_sparse::poisson::poisson3d;
use lcr_sparse::{CsrMatrix, Vector};
use serde::Serialize;
use std::time::Instant;

/// One measured (grid, shard-count) point.
#[derive(Debug, Clone, Serialize)]
struct ShardRow {
    /// Solver family (always sharded CG here).
    solver: String,
    /// Local grid edge (the system has `grid³` unknowns).
    grid: usize,
    /// Number of unknowns.
    unknowns: usize,
    /// Shard count the system was decomposed into.
    shards: usize,
    /// Solver iterations per second (median over repetitions).
    iters_per_s: f64,
    /// `iters_per_s` relative to the 1-shard row of the same grid.
    speedup_vs_1: f64,
    /// Halo doubles sent per iteration, summed over all shards.
    halo_doubles_per_iter: f64,
    /// The same traffic in kB per iteration.
    halo_kb_per_iter: f64,
    /// Lockstep reduction rounds per iteration (per shard).
    reduce_rounds_per_iter: f64,
    /// Whether the residual trace is bit-identical to the 1-shard trace.
    trace_bit_identical: bool,
}

/// The emitted `BENCH_shards.json` document.
#[derive(Debug, Serialize)]
struct BenchFile {
    bench: String,
    quick: bool,
    pool_threads: usize,
    /// Hardware threads of the measuring host (shard concurrency measures
    /// oversubscription, not scaling, when above this).
    host_parallelism: usize,
    rows: Vec<ShardRow>,
}

/// Best (smallest) time over the repetitions.  Every sample pays the full
/// setup cost (CSR partition, shard spawn, channel wiring) before the
/// iterations start, so min-time is the least-biased estimate of the
/// steady-state rate on a loaded host.
fn best(samples: Vec<f64>) -> f64 {
    samples.into_iter().fold(f64::INFINITY, f64::min)
}

/// The paper's Poisson operator is negative definite; CG needs SPD.
fn spd_poisson(edge: usize) -> (CsrMatrix, Vector) {
    let mut a = poisson3d(edge);
    for v in a.values_mut() {
        *v = -*v;
    }
    let b = Vector::filled(a.nrows(), 1.0);
    (a, b)
}

fn run_once(
    a: &CsrMatrix,
    b: &Vector,
    shards: usize,
    reduce_block: usize,
    iterations: usize,
) -> (ShardedReport, f64) {
    let mut cfg = ShardedRunConfig::new(shards, ShardedMethod::Cg);
    // Fixed iteration count (tolerance unreachable): every shard count
    // does identical numerical work, so wall time is comparable.
    cfg.rtol = 1e-30;
    cfg.max_iterations = iterations;
    cfg.reduce_block = reduce_block;
    let start = Instant::now();
    let report = run_sharded(a, b, &cfg);
    let seconds = start.elapsed().as_secs_f64();
    (report, seconds)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("LCR_QUICK").map(|v| v == "1").unwrap_or(false);
    let no_json = args.iter().any(|a| a == "--no-json");
    let force_json = args.iter().any(|a| a == "--json");
    let force_baseline = args.iter().any(|a| a == "--force-baseline");
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .map(|i| args.get(i + 1).expect("--compare requires a path").clone());
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool_threads = rayon::pool_threads();

    // Long iteration windows: every sample pays the one-time partition +
    // shard-spawn cost up front, so the window must dwarf it or quick runs
    // would systematically under-report rates vs the full-run baseline.
    let (grids, repetitions, iterations) = if quick {
        (vec![12usize, 16], 2usize, 150usize)
    } else {
        (vec![16usize, 24, 32], 3usize, 250usize)
    };
    let shard_counts = [1usize, 2, 4];

    let mut rows: Vec<ShardRow> = Vec::new();
    for &grid in &grids {
        let (a, b) = spd_poisson(grid);
        let unknowns = a.nrows();
        // Enough reduction blocks that every shard count owns several;
        // fixed per grid so traces are comparable across shard counts.
        let reduce_block = (unknowns / 16).clamp(32, 1024);
        let mut base: Option<ShardedReport> = None;
        let mut base_rate = 0.0;
        for &shards in &shard_counts {
            let mut samples = Vec::with_capacity(repetitions);
            let mut report = None;
            for _ in 0..repetitions {
                let (r, seconds) = run_once(&a, &b, shards, reduce_block, iterations);
                samples.push(seconds);
                report = Some(r);
            }
            let report = report.expect("at least one repetition");
            let iters = report.iterations.max(1) as f64;
            let iters_per_s = iters / best(samples);
            let halo_doubles: u64 = report.shards.iter().map(|s| s.halo_doubles_sent).sum();
            let reduce_rounds = report
                .shards
                .iter()
                .map(|s| s.reduce_rounds)
                .max()
                .unwrap_or(0);
            let trace_bit_identical = match &base {
                None => true,
                Some(base) => {
                    report.residual_trace.len() == base.residual_trace.len()
                        && report
                            .residual_trace
                            .iter()
                            .zip(&base.residual_trace)
                            .all(|(x, y)| x.to_bits() == y.to_bits())
                }
            };
            if shards == 1 {
                base_rate = iters_per_s;
                base = Some(report);
            }
            rows.push(ShardRow {
                solver: "sharded-cg".to_string(),
                grid,
                unknowns,
                shards,
                iters_per_s,
                speedup_vs_1: iters_per_s / base_rate,
                halo_doubles_per_iter: halo_doubles as f64 / iters,
                halo_kb_per_iter: halo_doubles as f64 * 8.0 / 1e3 / iters,
                reduce_rounds_per_iter: reduce_rounds as f64 / iters,
                trace_bit_identical,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.grid.to_string(),
                r.unknowns.to_string(),
                r.shards.to_string(),
                fmt(r.iters_per_s, 1),
                fmt(r.speedup_vs_1, 2),
                fmt(r.halo_doubles_per_iter, 0),
                fmt(r.halo_kb_per_iter, 1),
                fmt(r.reduce_rounds_per_iter, 1),
                if r.trace_bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Shard scaling: sharded CG throughput and halo-exchange overhead",
        &[
            "grid",
            "unknowns",
            "shards",
            "iters/s",
            "speedup vs 1",
            "halo dbl/it",
            "halo kB/it",
            "reduce/it",
            "trace bit-identical",
        ],
        &table,
    );
    print_json("fig_shard_scaling", &rows);

    // The determinism contract is load-bearing (CI runs this with --quick):
    // residual traces must not depend on the shard count.
    assert!(
        rows.iter().all(|r| r.trace_bit_identical),
        "determinism violation: a sharded CG trace changed with the shard count"
    );

    // Perf-regression gate: reduce to unknown-updates/s (size-normalised)
    // and compare against the committed baseline.
    if let Some(path) = compare_path {
        let mut current: Vec<perfgate::Measurement> = Vec::new();
        for r in &rows {
            perfgate::merge_best(
                &mut current,
                perfgate::Measurement::new(
                    r.solver.clone(),
                    r.shards,
                    r.iters_per_s * r.unknowns as f64,
                ),
            );
        }
        if perfgate::run_gate(&path, &current, host_parallelism, perfgate::shard_baseline) {
            std::process::exit(1);
        }
    }

    if no_json || (quick && !force_json) {
        return;
    }
    // Same stale-host guard as the other baseline writers: don't silently
    // replace a baseline from a different host class.
    if !force_baseline && perfgate::baseline_host_mismatch("BENCH_shards.json", host_parallelism) {
        eprintln!(
            "refusing to overwrite BENCH_shards.json: committed baseline was measured \
             on a different host class (host_parallelism mismatch); pass --force-baseline \
             to re-baseline on this host"
        );
        std::process::exit(1);
    }
    let file = BenchFile {
        bench: "fig_shard_scaling".to_string(),
        quick,
        pool_threads,
        host_parallelism,
        rows,
    };
    match serde_json::to_string(&file) {
        Ok(json) => {
            if let Err(err) = std::fs::write("BENCH_shards.json", json) {
                eprintln!("failed to write BENCH_shards.json: {err}");
            } else {
                println!(
                    "\nwrote BENCH_shards.json ({pool_threads}-thread pool, \
                     {host_parallelism} hardware thread(s))"
                );
            }
        }
        Err(err) => eprintln!("failed to serialise BENCH_shards.json: {err}"),
    }
}
