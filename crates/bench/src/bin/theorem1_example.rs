//! The worked example of Section 4.3: the Theorem-1 budget of extra
//! iterations for GMRES on the Bebop-like configuration.
//!
//! The paper: checkpoint time drops from 120 s to 25 s with lossy
//! compression, MTTI = 1 hour, GMRES needs 5,875 iterations in 7,160 s
//! (T_it ≈ 1.2 s) → lossy checkpointing wins as long as one recovery costs
//! at most ≈500 extra iterations (≈9 % of the total).

use lcr_bench::print_json;
use lcr_perfmodel::{
    lossy_overhead_ratio, theorem1_max_extra_iterations, traditional_overhead_ratio,
    Theorem1Inputs,
};
use serde::Serialize;

#[derive(Serialize)]
struct Theorem1Report {
    t_trad_ckp: f64,
    t_lossy_ckp: f64,
    mtti_hours: f64,
    iterations: usize,
    t_it: f64,
    max_extra_iterations: f64,
    max_extra_fraction: f64,
    traditional_overhead: f64,
    lossy_overhead_at_bound: f64,
}

fn main() {
    let iterations = 5875usize;
    let total_seconds = 7160.0;
    let inputs = Theorem1Inputs {
        t_trad_ckp: 120.0,
        t_lossy_ckp: 25.0,
        lambda: 1.0 / 3600.0,
        t_it: total_seconds / iterations as f64,
    };
    let n_max = theorem1_max_extra_iterations(&inputs);
    let report = Theorem1Report {
        t_trad_ckp: inputs.t_trad_ckp,
        t_lossy_ckp: inputs.t_lossy_ckp,
        mtti_hours: 1.0,
        iterations,
        t_it: inputs.t_it,
        max_extra_iterations: n_max,
        max_extra_fraction: n_max / iterations as f64,
        traditional_overhead: traditional_overhead_ratio(inputs.t_trad_ckp, inputs.lambda),
        lossy_overhead_at_bound: lossy_overhead_ratio(
            inputs.t_lossy_ckp,
            inputs.lambda,
            n_max,
            inputs.t_it,
        ),
    };

    println!("=== Theorem 1 worked example (Section 4.3) ===");
    println!(
        "Traditional checkpoint {:.0} s → lossy checkpoint {:.0} s, MTTI 1 h, T_it {:.2} s",
        report.t_trad_ckp, report.t_lossy_ckp, report.t_it
    );
    println!(
        "Maximum acceptable extra iterations per lossy recovery: {:.0} ({:.1}% of {} iterations; paper: ≈500 / ≈9%)",
        report.max_extra_iterations,
        report.max_extra_fraction * 100.0,
        report.iterations
    );
    println!(
        "Expected overhead: traditional {:.1}%, lossy at the bound {:.1}% (they meet at the bound, as Theorem 1 states)",
        report.traditional_overhead * 100.0,
        report.lossy_overhead_at_bound * 100.0
    );
    print_json("theorem1", &report);
}
