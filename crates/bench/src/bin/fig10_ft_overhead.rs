//! Figure 10: experimental versus expected fault-tolerance overhead for
//! Jacobi, GMRES and CG under traditional, lossless and lossy checkpointing
//! with their optimal (Young) checkpoint intervals, at 2,048 processes and
//! MTTI = 1 hour.
//!
//! The paper's headline numbers: lossy checkpointing reduces the fault
//! tolerance overhead by 23 %–70 % versus traditional checkpointing and
//! 20 %–58 % versus lossless checkpointing.

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_ckpt::PfsModel;
use lcr_core::experiment::{fault_tolerance_overhead, OverheadExperimentConfig};
use lcr_solvers::SolverKind;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let pfs = PfsModel::bebop_like();
    let solvers = [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg];

    let mut all = Vec::new();
    for kind in solvers {
        let cfg = OverheadExperimentConfig {
            processes: 2048,
            local_grid_edge: scale.local_grid_edge,
            mtti_seconds: 3600.0,
            runs: scale.repetitions.max(3),
            seed: 20180611,
            max_iterations: scale.max_iterations,
            num_threads: 0,
        };
        let rows = fault_tolerance_overhead(kind, &cfg, &pfs);
        all.extend(rows);
    }

    let table: Vec<Vec<String>> = all
        .iter()
        .map(|r| {
            vec![
                r.solver.clone(),
                r.strategy.clone(),
                fmt(r.checkpoint_interval_seconds / 60.0, 1),
                format!("{:.1}%", r.experimental_overhead * 100.0),
                format!("{:.1}%", r.expected_overhead * 100.0),
                fmt(r.mean_failures, 1),
                fmt(r.mean_convergence_iterations, 0),
                r.baseline_iterations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 10 — experimental vs expected fault-tolerance overhead (2,048 procs, MTTI = 1 h)",
        &[
            "solver",
            "scheme",
            "ckpt interval (min)",
            "experimental",
            "expected",
            "mean failures",
            "mean iters",
            "baseline iters",
        ],
        &table,
    );

    // Summarise the headline reductions.
    println!("\nOverhead reduction of lossy checkpointing:");
    for kind in ["jacobi", "gmres", "cg"] {
        let find = |strategy: &str| {
            all.iter()
                .find(|r| r.solver == kind && r.strategy == strategy)
                .map(|r| r.experimental_overhead)
        };
        if let (Some(trad), Some(lossless), Some(lossy)) =
            (find("traditional"), find("lossless"), find("lossy"))
        {
            let vs_trad = 100.0 * (trad - lossy) / trad.max(f64::MIN_POSITIVE);
            let vs_lossless = 100.0 * (lossless - lossy) / lossless.max(f64::MIN_POSITIVE);
            println!(
                "  {kind:>7}: {vs_trad:.0}% vs traditional, {vs_lossless:.0}% vs lossless \
                 (paper: 23–70% and 20–58% across the three solvers)"
            );
        }
    }
    print_json("figure10", &all);
}
