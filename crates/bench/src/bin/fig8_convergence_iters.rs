//! Figure 8: number of convergence iterations with lossy checkpointing
//! versus the failure-free baseline, for Jacobi, GMRES and CG across
//! process counts (the paper shows 256–2,048), under MTTI = 1 hour.
//!
//! The paper's finding: Jacobi sees no delay, GMRES is sometimes slightly
//! *accelerated*, and CG is delayed by ≈25 % on average.

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_ckpt::{CheckpointLevel, ClusterConfig, PfsModel};
use lcr_core::experiment::{
    checkpoint_recovery_times, paper_baseline_seconds,
};
use lcr_core::runner::{ExecutionBackend, FaultTolerantRunner, Persistence, RunConfig};
use lcr_core::strategy::CheckpointStrategy;
use lcr_core::workload::PaperWorkload;
use lcr_perfmodel::young_optimal_interval_iterations;
use lcr_solvers::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Row {
    processes: usize,
    solver: String,
    failure_free_iterations: usize,
    lossy_iterations: f64,
    delay_percent: f64,
    mean_failures: f64,
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let pfs = PfsModel::bebop_like();
    let mtti = 3600.0;
    let process_counts = [256usize, 512, 1024, 2048];
    let solvers = [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg];

    let mut rows = Vec::new();
    for kind in solvers {
        for &procs in &process_counts {
            let workload = PaperWorkload::poisson(procs, scale.local_grid_edge);
            let problem = workload.build();
            let mut baseline = workload.build_solver(&problem, kind, scale.max_iterations);
            baseline.run_to_convergence();
            let baseline_iters = baseline.iteration();
            let t_it = paper_baseline_seconds(kind) / baseline_iters.max(1) as f64;
            let cluster = ClusterConfig::bebop_like(procs, t_it);

            let lossy_ckpt_seconds = checkpoint_recovery_times(
                kind,
                &[procs],
                scale.local_grid_edge,
                &pfs,
                scale.max_iterations,
            )
            .into_iter()
            .find(|r| r.strategy == "lossy")
            .map(|r| r.checkpoint_seconds)
            .unwrap_or(25.0);
            let interval = young_optimal_interval_iterations(mtti, lossy_ckpt_seconds, t_it)
                .min(baseline_iters.max(2) / 2)
                .max(1);

            let strategy = if kind == SolverKind::Gmres {
                CheckpointStrategy::lossy_gmres()
            } else {
                CheckpointStrategy::lossy_default()
            };
            let mut iters_sum = 0.0;
            let mut failures_sum = 0.0;
            for rep in 0..scale.repetitions {
                let mut solver = workload.build_solver(&problem, kind, scale.max_iterations);
                let report = FaultTolerantRunner::new(RunConfig {
                    strategy: strategy.clone(),
                    checkpoint_interval_iterations: interval,
                    anchor_interval_snapshots: 0,
                    cluster,
                    pfs,
                    level: CheckpointLevel::Pfs,
                    mtti_seconds: mtti,
                    failure_seed: Some(42 + rep as u64 * 1009 + procs as u64),
                    max_failures: 1000,
                    max_executed_iterations: scale.max_iterations,
                    num_threads: 0,
                    persistence: Persistence::InMemory,
                    backend: ExecutionBackend::Simulated,
                })
                .run(solver.as_mut(), &problem);
                iters_sum += report.convergence_iterations as f64;
                failures_sum += report.failures as f64;
            }
            let lossy_iters = iters_sum / scale.repetitions as f64;
            rows.push(Fig8Row {
                processes: procs,
                solver: kind.name().to_string(),
                failure_free_iterations: baseline_iters,
                lossy_iterations: lossy_iters,
                delay_percent: 100.0 * (lossy_iters - baseline_iters as f64)
                    / baseline_iters.max(1) as f64,
                mean_failures: failures_sum / scale.repetitions as f64,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.processes.to_string(),
                r.solver.clone(),
                r.failure_free_iterations.to_string(),
                fmt(r.lossy_iterations, 1),
                format!("{:+.1}%", r.delay_percent),
                fmt(r.mean_failures, 1),
            ]
        })
        .collect();
    print_table(
        "Figure 8 — convergence iterations: failure-free vs lossy checkpointing (MTTI = 1 h)",
        &[
            "processes",
            "solver",
            "failure-free iters",
            "lossy iters",
            "delay",
            "mean failures",
        ],
        &table,
    );
    println!(
        "\nPaper reference: Jacobi shows no delay, GMRES no delay (occasionally a \
         slight acceleration), CG ≈+25% iterations on average."
    );
    print_json("figure8", &rows);
}
