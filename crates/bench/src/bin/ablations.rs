//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Compressor choice** (SZ vs ZFP vs lossless) on a solver's solution
//!    vector — the paper's §5.1 justification for choosing SZ on 1-D data.
//! 2. **Restarted vs non-restarted CG under a lossy recovery** — §4.2's
//!    argument for restarting the Krylov space from the decompressed `x`.
//! 3. **Checkpointing `x` only vs `x` and `p` for CG** — the storage/time
//!    saving of the lossy scheme's variable selection.
//! 4. **Theorem-3 adaptive bound vs a fixed bound for GMRES** — the
//!    convergence-delay difference after a lossy recovery.

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_compress::{
    CompressionStats, ErrorBound, LosslessCompressor, LosslessPipeline, LossyCompressor,
    SzCompressor, ZfpCompressor,
};
use lcr_core::strategy::{CheckpointStrategy, ErrorBoundPolicy, LossyCodecKind};
use lcr_core::workload::PaperWorkload;
use lcr_solvers::{ConjugateGradient, IterativeMethod, LinearSystem, StoppingCriteria};
use lcr_sparse::Vector;
use serde::Serialize;

#[derive(Serialize)]
struct CompressorRow {
    codec: String,
    ratio: f64,
    max_abs_error: f64,
    compress_mb_per_s: f64,
    decompress_mb_per_s: f64,
}

#[derive(Serialize)]
struct AblationSummary {
    compressors: Vec<CompressorRow>,
    restarted_cg_extra_iters: f64,
    nonrestarted_cg_extra_iters: f64,
    cg_x_only_bytes: usize,
    cg_x_and_p_bytes: usize,
    gmres_adaptive_extra_iters: f64,
    gmres_loose_fixed_extra_iters: f64,
}

fn compressor_ablation(x: &[f64]) -> Vec<CompressorRow> {
    let mb = (x.len() * 8) as f64 / 1e6;
    let mut rows = Vec::new();
    for (name, codec) in [
        ("sz", Box::new(SzCompressor::new()) as Box<dyn LossyCompressor>),
        ("zfp", Box::new(ZfpCompressor::new())),
    ] {
        let (stats, _) =
            CompressionStats::measure_lossy(codec.as_ref(), x, ErrorBound::PointwiseRel(1e-4))
                .expect("lossy compression");
        rows.push(CompressorRow {
            codec: name.to_string(),
            ratio: stats.ratio,
            max_abs_error: stats.max_abs_error,
            compress_mb_per_s: mb / stats.compress_seconds.max(1e-9),
            decompress_mb_per_s: mb / stats.decompress_seconds.max(1e-9),
        });
    }
    let lossless = LosslessPipeline::new();
    let (stats, _) = CompressionStats::measure_lossless(&lossless, x).expect("lossless");
    rows.push(CompressorRow {
        codec: lossless.name().to_string(),
        ratio: stats.ratio,
        max_abs_error: 0.0,
        compress_mb_per_s: mb / stats.compress_seconds.max(1e-9),
        decompress_mb_per_s: mb / stats.decompress_seconds.max(1e-9),
    });
    rows
}

/// Extra iterations of CG after one mid-run lossy recovery, either with the
/// restart-style recovery (paper's scheme) or by keeping the stale Krylov
/// direction `p` (non-restarted).
fn cg_recovery_ablation(system: &LinearSystem, restart: bool) -> f64 {
    let n = system.dim();
    let criteria = StoppingCriteria::new(1e-7, 200_000);
    let mut clean = ConjugateGradient::unpreconditioned(system.clone(), Vector::zeros(n), criteria);
    clean.run_to_convergence();
    let clean_iters = clean.iteration();

    let mut solver =
        ConjugateGradient::unpreconditioned(system.clone(), Vector::zeros(n), criteria);
    for _ in 0..clean_iters / 2 {
        solver.step();
    }
    // Lossy-compress x with the paper's bound.
    let sz = SzCompressor::new();
    let compressed = sz
        .compress(solver.solution().as_slice(), ErrorBound::PointwiseRel(1e-4))
        .expect("compress");
    let x = Vector::from_vec(sz.decompress(&compressed).expect("decompress"));
    if restart {
        solver.restart_from_solution(x, clean_iters / 2);
    } else {
        // Keep the stale p and rho: restore a state whose x is perturbed
        // but whose Krylov direction predates the perturbation.
        let mut state = solver.capture_state();
        for (name, vec) in state.vectors.iter_mut() {
            if name == "x" {
                *vec = x.clone();
            }
        }
        solver.restore_state(&state);
    }
    solver.run_to_convergence();
    (solver.iteration() as f64 - clean_iters as f64).max(0.0)
}

/// Extra GMRES iterations after a lossy recovery under the Theorem-3
/// adaptive bound versus a loose fixed bound.
fn gmres_bound_ablation(workload: &PaperWorkload, adaptive: bool, max_iterations: usize) -> f64 {
    let problem = workload.build();
    let mut clean = workload.build_solver(&problem, lcr_solvers::SolverKind::Gmres, max_iterations);
    clean.run_to_convergence();
    let clean_iters = clean.iteration();

    let mut solver = workload.build_solver(&problem, lcr_solvers::SolverKind::Gmres, max_iterations);
    for _ in 0..clean_iters / 2 {
        solver.step();
    }
    let strategy = CheckpointStrategy::Lossy {
        codec: LossyCodecKind::Sz,
        policy: if adaptive {
            ErrorBoundPolicy::adaptive_gmres()
        } else {
            ErrorBoundPolicy::Fixed(ErrorBound::PointwiseRel(1e-2))
        },
    };
    let enc = strategy.encode(solver.as_ref()).expect("encode");
    strategy
        .recover(solver.as_mut(), &enc.payloads, enc.iteration, &enc.scalars)
        .expect("recover");
    solver.run_to_convergence();
    (solver.iteration() as f64 - clean_iters as f64).max(0.0)
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let workload = PaperWorkload::poisson(2048, scale.local_grid_edge);
    let problem = workload.build();

    // 1. Compressor ablation on a converged Jacobi solution vector.
    let mut jacobi = workload.build_solver(&problem, lcr_solvers::SolverKind::Jacobi, scale.max_iterations);
    jacobi.run_to_convergence();
    let compressors = compressor_ablation(jacobi.solution().as_slice());
    let table: Vec<Vec<String>> = compressors
        .iter()
        .map(|r| {
            vec![
                r.codec.clone(),
                fmt(r.ratio, 2),
                format!("{:.2e}", r.max_abs_error),
                fmt(r.compress_mb_per_s, 0),
                fmt(r.decompress_mb_per_s, 0),
            ]
        })
        .collect();
    print_table(
        "Ablation 1 — compressor choice on the solution vector (rel. bound 1e-4)",
        &["codec", "ratio", "max abs err", "comp MB/s", "decomp MB/s"],
        &table,
    );

    // 2. Restarted vs non-restarted CG recovery.
    let spd_system = {
        let mut a = (*problem.system.a).clone();
        for v in a.values_mut() {
            *v = -*v;
        }
        let mut b = (*problem.system.b).clone();
        b.scale(-1.0);
        LinearSystem::new(a, b)
    };
    let restarted = cg_recovery_ablation(&spd_system, true);
    let nonrestarted = cg_recovery_ablation(&spd_system, false);
    print_table(
        "Ablation 2 — CG recovery style after one lossy recovery",
        &["recovery", "extra iterations"],
        &[
            vec!["restart Krylov space (paper)".into(), fmt(restarted, 1)],
            vec!["keep stale p/rho".into(), fmt(nonrestarted, 1)],
        ],
    );

    // 3. Checkpoint payload: x only vs x and p.
    let mut cg = ConjugateGradient::unpreconditioned(
        spd_system.clone(),
        Vector::zeros(spd_system.dim()),
        StoppingCriteria::new(1e-7, 200_000),
    );
    for _ in 0..10 {
        cg.step();
    }
    let x_only = CheckpointStrategy::lossy_default()
        .encode(&cg)
        .expect("encode x")
        .encoded_bytes();
    let x_and_p = CheckpointStrategy::Traditional
        .encode(&cg)
        .expect("encode x+p")
        .encoded_bytes();
    print_table(
        "Ablation 3 — CG checkpoint payload",
        &["payload", "bytes"],
        &[
            vec!["lossy, x only".into(), x_only.to_string()],
            vec!["traditional, x and p".into(), x_and_p.to_string()],
        ],
    );

    // 4. GMRES error-bound policy.
    let adaptive = gmres_bound_ablation(&workload, true, scale.max_iterations);
    let loose = gmres_bound_ablation(&workload, false, scale.max_iterations);
    print_table(
        "Ablation 4 — GMRES lossy-recovery error bound",
        &["policy", "extra iterations"],
        &[
            vec!["Theorem 3 adaptive ‖r‖/‖b‖".into(), fmt(adaptive, 1)],
            vec!["fixed 1e-2 relative".into(), fmt(loose, 1)],
        ],
    );

    let summary = AblationSummary {
        compressors,
        restarted_cg_extra_iters: restarted,
        nonrestarted_cg_extra_iters: nonrestarted,
        cg_x_only_bytes: x_only,
        cg_x_and_p_bytes: x_and_p,
        gmres_adaptive_extra_iters: adaptive,
        gmres_loose_fixed_extra_iters: loose,
    };
    print_json("ablations", &summary);
}
