//! Table 3: problem sizes and average checkpoint sizes per process for the
//! three checkpointing schemes and the three solvers across the paper's
//! weak-scaling grid (256–2,048 processes).

use lcr_bench::{fmt, print_json, print_table, BenchScale};
use lcr_core::experiment::{table3, PAPER_PROCESS_COUNTS};
use lcr_solvers::SolverKind;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let solvers = [SolverKind::Jacobi, SolverKind::Gmres, SolverKind::Cg];
    let rows = table3(
        &solvers,
        PAPER_PROCESS_COUNTS,
        scale.local_grid_edge,
        scale.max_iterations,
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.processes.to_string(),
                format!("{}^3", r.problem_edge),
                r.solver.clone(),
                fmt(r.traditional_mb, 1),
                fmt(r.lossless_mb, 2),
                fmt(r.lossy_mb, 2),
                r.measured_shard_mb.map_or_else(|| "—".to_string(), |mb| fmt(mb, 2)),
                fmt(r.lossy_delta_mb, 2),
                format!("{:.2}x", r.lossy_mb / r.lossy_delta_mb.max(f64::MIN_POSITIVE)),
            ]
        })
        .collect();
    print_table(
        "Table 3 — checkpoint size per process (MB)",
        &[
            "processes",
            "problem size",
            "solver",
            "traditional",
            "lossless",
            "lossy (est)",
            "lossy (measured)",
            "lossy delta",
            "delta vs direct",
        ],
        &table,
    );
    println!(
        "\nPaper reference (2,048 procs): traditional 39.4/39.4/78.8 MB, lossless \
         6.2/32.7/67.9 MB, lossy 1.2/1.2/1.3 MB for Jacobi/GMRES/CG.\n\
         Reproduction note: compression ratios are measured on the locally solved \
         instance and extrapolated to the paper-scale vector sizes; the lossless \
         ratio for Jacobi is the one quantity that differs qualitatively (see \
         EXPERIMENTS.md).  The \"lossy delta\" column is this repo's anchored \
         delta-chain extension (not in the paper): average per-checkpoint size \
         when successive snapshots delta-code against their predecessor, anchors \
         included.  The \"lossy (measured)\" column replaces the even-division \
         estimate with the per-shard SZ segment sizes actually written by the \
         sharded checkpoint path (— where the sharded backend does not run the \
         solver, e.g. GMRES)."
    );
    print_json("table3", &rows);
}
