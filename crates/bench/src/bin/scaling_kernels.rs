//! Kernel scaling benchmark: the perf-trajectory baseline for the threaded
//! execution layer.
//!
//! Measures `dot`/`norm2`/`spmv` — plus the fused solver kernels
//! `spmv_dot`, `axpy2_norm2` and `residual_norm2` that the Krylov inner
//! loops now run on — on a large 3-D Poisson problem, SZ
//! compression *and decompression* of a ≥1M-element smooth buffer, ZFP
//! compression of the same buffer, single-stream Huffman decoding of
//! SZ-like quantization codes, the order-2 temporal delta codec of the
//! version-5 checkpoint streams (`delta_encode`/`delta_decode` over the
//! same codes against two simulated prior snapshots), and the durable
//! checkpoint tier
//! (`disk_ckpt_write`: arena → crash-consistent file with CRCs + fsync +
//! rename; `disk_ckpt_read`: read-back with full CRC validation), at 1, 2
//! and N pool threads — verifying along the way that every result is
//! **bit-identical** across thread counts (the deterministic fixed-chunk
//! scheduling guarantee; the disk rows are single-threaded I/O measured
//! like-for-like).  The decompression rows are what the fig456
//! recovery-time experiments rest on.
//!
//! Prints the usual aligned table + `JSON:` line and additionally writes
//! `BENCH_kernels.json` into the current directory (the repo root in CI) so
//! later PRs can track the throughput trajectory.
//!
//! `--quick` / `LCR_QUICK=1` shrinks sizes and repetitions.  The pool is
//! sized by `LCR_NUM_THREADS` when set; otherwise it is forced to at least
//! 4 threads so the scaling series exists even on small CI hosts.
//!
//! `--compare <baseline.json>` runs the perf-regression gate against a
//! committed baseline (exit 1 on a >15 % Melem/s drop for any
//! `(kernel, threads)` pair measured on the same host class; skipped with
//! a warning across host classes).  Overwriting a committed baseline that
//! was measured on a different host class requires `--force-baseline` —
//! otherwise the write is refused so a CI runner can't silently replace
//! the recorded trajectory with incomparable numbers.

use lcr_bench::{fmt, perfgate, print_json, print_table};
use lcr_ckpt::disk::crc32;
use lcr_ckpt::{CheckpointBuffer, CheckpointLevel, DiskStore};
use lcr_compress::{delta, huffman, ErrorBound, LossyCompressor, SzCompressor, ZfpCompressor};
use lcr_sparse::kernels;
use lcr_sparse::poisson::poisson3d;
use lcr_sparse::vector::{dot, norm2};
use lcr_sparse::{CsrMatrix, Vector};
use serde::Serialize;
use std::time::Instant;

/// One measured (kernel, thread-count) point.
#[derive(Debug, Clone, Serialize)]
struct ScalingRow {
    /// Kernel name.
    kernel: String,
    /// Threads the pool was capped to.
    threads: usize,
    /// Problem size (elements; non-zeros for spmv).
    elements: usize,
    /// Median seconds per invocation.
    seconds: f64,
    /// Throughput in millions of elements per second.
    melem_per_s: f64,
    /// Speedup relative to the 1-thread row of the same kernel.
    speedup_vs_1t: f64,
    /// Whether the result was bit-identical to the 1-thread result.
    bit_identical: bool,
}

/// The emitted `BENCH_kernels.json` document.
#[derive(Debug, Serialize)]
struct BenchFile {
    bench: String,
    quick: bool,
    pool_threads: usize,
    /// Hardware threads of the measuring host.  When this is below
    /// `pool_threads` the pool is oversubscribed and the speedup column
    /// reflects scheduling noise, not scaling — consumers tracking the
    /// perf trajectory must compare like-for-like hosts.
    host_parallelism: usize,
    rows: Vec<ScalingRow>,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `reps` invocations of `f`, returning the median seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up (first touch, pool spin-up)
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

/// Order-sensitive bit fingerprint of an `f64` buffer.
fn bits_fingerprint(data: &[f64]) -> u64 {
    data.iter()
        .fold(0u64, |h, v| h.rotate_left(13) ^ v.to_bits())
}

fn smooth_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            (2.0 * std::f64::consts::PI * t).sin() + 0.3 * (211.0 * t).cos() + 2.0
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("LCR_QUICK").map(|v| v == "1").unwrap_or(false);
    // `--no-json` measures without overwriting the committed baseline file.
    let no_json = args.iter().any(|a| a == "--no-json");
    let force_baseline = args.iter().any(|a| a == "--force-baseline");
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .map(|i| args.get(i + 1).expect("--compare requires a path").clone());
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Respect an explicit LCR_NUM_THREADS; otherwise make sure the pool has
    // at least 4 threads so the 1/2/N series is exercised everywhere.
    if std::env::var("LCR_NUM_THREADS").is_err() {
        rayon::initialize_pool(host_parallelism.max(4));
    }
    let pool_threads = rayon::pool_threads();
    if pool_threads > host_parallelism {
        println!(
            "note: pool has {pool_threads} threads on {host_parallelism} hardware \
             thread(s) — speedups below measure oversubscription, not scaling"
        );
    }
    let mut thread_counts = vec![1usize, 2, pool_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    thread_counts.retain(|&t| t <= pool_threads);

    let (vec_len, grid_edge, sz_len, reps) = if quick {
        (1 << 20, 40, 1 << 20, 3)
    } else {
        (1 << 22, 64, 1 << 21, 7)
    };

    // --- problem setup ----------------------------------------------------
    let mut a_vec = Vector::zeros(vec_len);
    let mut b_vec = Vector::zeros(vec_len);
    a_vec.fill_random(1, -1.0, 1.0);
    b_vec.fill_random(2, -1.0, 1.0);

    let matrix: CsrMatrix = poisson3d(grid_edge);
    let n = matrix.nrows();
    let mut x = Vector::zeros(n);
    x.fill_random(3, -1.0, 1.0);
    let mut y = Vector::zeros(n);
    // Inputs for the fused kernels: a right-hand side for residual_norm2
    // and stable scratch targets for the fused x/r update.
    let mut pb = Vector::zeros(n);
    pb.fill_random(4, -1.0, 1.0);
    let mut ax_scratch = a_vec.clone();
    let mut rx_scratch = b_vec.clone();

    let sz_data = smooth_signal(sz_len);
    let sz = SzCompressor::new();
    let sz_bound = ErrorBound::ValueRangeRel(1e-4);
    let zfp = ZfpCompressor::new();
    let zfp_bound = ErrorBound::Abs(1e-6);
    // Decompression input: one reference stream, decoded at every thread
    // count so the rows are comparable.
    let sz_compressed = sz.compress(&sz_data, sz_bound).expect("SZ compression failed");
    // Huffman input: SZ-like quantization codes (second differences of the
    // smooth buffer on a 2e-4 grid, shifted into the SZ code range).
    let quantize_codes = |data: &[f64]| -> Vec<u32> {
        let inv = 1.0 / 2e-4;
        let grid: Vec<f64> = data.iter().map(|&x| (x * inv).round()).collect();
        (0..grid.len())
            .map(|i| {
                let pred = match i {
                    0 => 0.0,
                    1 => grid[0],
                    _ => 2.0 * grid[i - 1] - grid[i - 2],
                };
                ((grid[i] - pred) as i64 + 32_769).clamp(0, 65_537) as u32
            })
            .collect()
    };
    let huff_symbols = quantize_codes(&sz_data);
    let huff_blob = huffman::encode_block(&huff_symbols);
    // Temporal-delta inputs: the codes of two slightly earlier "snapshots"
    // of the same buffer (small multiplicative drift, as a converging
    // solver state would show between checkpoints).
    let delta_prev1 = quantize_codes(
        &sz_data.iter().map(|&x| x * (1.0 - 3e-5)).collect::<Vec<f64>>(),
    );
    let delta_prev2 = quantize_codes(
        &sz_data.iter().map(|&x| x * (1.0 - 6e-5)).collect::<Vec<f64>>(),
    );
    // Durable-tier input: the smooth buffer as raw little-endian doubles in
    // a checkpoint arena, written through the crash-consistent file format
    // (header + CRCs + fsync + rename) into a scratch directory.
    let disk_dir = std::env::temp_dir().join(format!("lcr-scaling-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let mut disk_buffer = CheckpointBuffer::new();
    disk_buffer.push_with("x", |out| {
        out.reserve(sz_data.len() * 8);
        for v in &sz_data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    });

    // --- measurement ------------------------------------------------------
    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut baseline: std::collections::HashMap<String, (f64, u64)> =
        std::collections::HashMap::new();
    // Compressed reference bytes at 1 thread, for the bit-identity check.
    let mut sz_reference: Vec<u8> = Vec::new();
    let mut zfp_reference: Vec<u8> = Vec::new();

    for &threads in &thread_counts {
        rayon::set_max_active_threads(threads);

        // (name, elements, result fingerprint, median seconds)
        let mut measured: Vec<(&str, usize, u64, f64)> = Vec::new();

        let mut dot_result = 0.0f64;
        let secs = time_median(reps, || {
            dot_result = dot(a_vec.as_slice(), b_vec.as_slice());
        });
        measured.push(("dot", vec_len, dot_result.to_bits(), secs));

        let mut norm_result = 0.0f64;
        let secs = time_median(reps, || {
            norm_result = norm2(a_vec.as_slice());
        });
        measured.push(("norm2", vec_len, norm_result.to_bits(), secs));

        let secs = time_median(reps, || {
            matrix.spmv(x.as_slice(), y.as_mut_slice());
        });
        measured.push(("spmv", matrix.nnz(), bits_fingerprint(y.as_slice()), secs));

        // Fused solver kernels (the CG/BiCGStab inner-loop primitives):
        // q = A·x with xᵀq in the same traversal, the fused x/r update
        // returning ‖r‖², and the fused residual + norm.  All follow the
        // matrix's SpmvPlan / the deterministic length chunking, so their
        // fingerprints must be thread-count independent too.
        let mut spmv_dot_result = 0.0f64;
        let secs = time_median(reps, || {
            spmv_dot_result = kernels::spmv_dot(&matrix, x.as_slice(), y.as_mut_slice(), x.as_slice());
        });
        measured.push((
            "spmv_dot",
            matrix.nnz(),
            bits_fingerprint(y.as_slice()) ^ spmv_dot_result.to_bits(),
            secs,
        ));

        // α = 0 keeps the buffers (and therefore the fingerprint) stable
        // across repetitions while exercising the full fused read/write
        // traffic of the real update.
        let mut fused_rr = 0.0f64;
        let secs = time_median(reps, || {
            fused_rr = kernels::axpy2_norm2(
                0.0,
                a_vec.as_slice(),
                b_vec.as_slice(),
                ax_scratch.as_mut_slice(),
                rx_scratch.as_mut_slice(),
            );
        });
        measured.push(("axpy2_norm2", vec_len, fused_rr.to_bits(), secs));

        let mut resid_rr = 0.0f64;
        let secs = time_median(reps, || {
            resid_rr =
                kernels::residual_norm2(&matrix, x.as_slice(), pb.as_slice(), y.as_mut_slice());
        });
        measured.push((
            "residual_norm2",
            matrix.nnz(),
            bits_fingerprint(y.as_slice()) ^ resid_rr.to_bits(),
            secs,
        ));

        let mut compressed_bytes: Vec<u8> = Vec::new();
        let secs = time_median(reps, || {
            compressed_bytes = sz
                .compress(&sz_data, sz_bound)
                .expect("SZ compression failed")
                .bytes;
        });
        if threads == 1 {
            sz_reference = compressed_bytes.clone();
        }
        let sz_fp = u64::from(compressed_bytes == sz_reference);
        measured.push(("sz_compress", sz_len, sz_fp, secs));

        let mut restored: Vec<f64> = Vec::new();
        let secs = time_median(reps, || {
            restored = sz
                .decompress(&sz_compressed)
                .expect("SZ decompression failed");
        });
        measured.push(("sz_decompress", sz_len, bits_fingerprint(&restored), secs));

        let mut zfp_bytes: Vec<u8> = Vec::new();
        let secs = time_median(reps, || {
            zfp_bytes = zfp
                .compress(&sz_data, zfp_bound)
                .expect("ZFP compression failed")
                .bytes;
        });
        if threads == 1 {
            zfp_reference = zfp_bytes.clone();
        }
        let zfp_fp = u64::from(zfp_bytes == zfp_reference);
        measured.push(("zfp_compress", sz_len, zfp_fp, secs));

        // Single-stream canonical-Huffman table decode (not pool-parallel;
        // rides along at every thread count as a like-for-like row).
        let mut decoded: Vec<u32> = Vec::new();
        let secs = time_median(reps, || {
            let mut pos = 0usize;
            decoded = huffman::decode_block(&huff_blob, &mut pos).expect("Huffman decode failed");
        });
        let huff_fp = decoded
            .iter()
            .fold(0u64, |h, &v| h.rotate_left(13) ^ u64::from(v));
        measured.push(("huffman_decode", huff_symbols.len(), huff_fp, secs));

        // Temporal delta codec of the version-5 streams: order-2 symbols
        // of this snapshot's codes against the two priors, and the
        // inverse.  The chunk-of-8 kernels are single-stream; like the
        // Huffman row they ride along at every thread count.
        let mut delta_syms: Vec<u32> = Vec::new();
        let secs = time_median(reps, || {
            delta::encode_order2(&huff_symbols, &delta_prev1, &delta_prev2, &mut delta_syms);
        });
        let delta_enc_fp = delta_syms
            .iter()
            .fold(0u64, |h, &v| h.rotate_left(13) ^ u64::from(v));
        measured.push(("delta_encode", huff_symbols.len(), delta_enc_fp, secs));

        let mut delta_codes: Vec<u32> = Vec::new();
        let secs = time_median(reps, || {
            delta::decode_order2(&delta_syms, &delta_prev1, &delta_prev2, &mut delta_codes);
        });
        assert_eq!(
            delta_codes, huff_symbols,
            "temporal delta round-trip must reproduce the codes exactly"
        );
        let delta_dec_fp = delta_codes
            .iter()
            .fold(0u64, |h, &v| h.rotate_left(13) ^ u64::from(v));
        measured.push(("delta_decode", huff_symbols.len(), delta_dec_fp, secs));

        // Durable disk tier: single-threaded file I/O, measured at every
        // thread count as a like-for-like row.  The write streams the
        // arena through the crash-consistent format (CRCs + fsync +
        // rename); the read re-validates every CRC.
        let mut disk_store =
            DiskStore::open(&disk_dir, 2).expect("opening the scratch checkpoint directory");
        let mut iteration = 0usize;
        let secs = time_median(reps, || {
            disk_store
                .push_from_buffer(
                    iteration,
                    iteration as f64,
                    CheckpointLevel::Pfs,
                    sz_len * 8,
                    None,
                    "traditional",
                    &[],
                    &disk_buffer,
                )
                .expect("disk checkpoint write failed");
            iteration += 1;
        });
        let written = disk_store
            .latest_valid()
            .expect("reading back the benchmark checkpoint");
        let disk_fp = u64::from(crc32(&written.payloads[0].1));
        measured.push(("disk_ckpt_write", sz_len, disk_fp, secs));

        let mut read_back = written;
        let secs = time_median(reps, || {
            read_back = disk_store
                .latest_valid()
                .expect("validating the benchmark checkpoint");
        });
        let disk_read_fp = u64::from(crc32(&read_back.payloads[0].1));
        measured.push(("disk_ckpt_read", sz_len, disk_read_fp, secs));

        for (name, elements, fingerprint, seconds) in measured {
            let (base_secs, base_fp) = *baseline
                .entry(name.to_string())
                .or_insert((seconds, fingerprint));
            rows.push(ScalingRow {
                kernel: name.to_string(),
                threads,
                elements,
                seconds,
                melem_per_s: elements as f64 / seconds / 1e6,
                speedup_vs_1t: base_secs / seconds,
                bit_identical: fingerprint == base_fp,
            });
        }
    }
    rayon::set_max_active_threads(0);
    let _ = std::fs::remove_dir_all(&disk_dir);

    // --- reporting --------------------------------------------------------
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.threads.to_string(),
                r.elements.to_string(),
                fmt(r.seconds * 1e3, 3),
                fmt(r.melem_per_s, 1),
                fmt(r.speedup_vs_1t, 2),
                if r.bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Kernel scaling (deterministic pool)",
        &[
            "kernel",
            "threads",
            "elements",
            "ms",
            "Melem/s",
            "speedup",
            "bit-identical",
        ],
        &table,
    );
    print_json("scaling_kernels", &rows);

    let every_result_identical = rows.iter().all(|r| r.bit_identical);
    assert!(
        every_result_identical,
        "determinism violation: some kernel result changed with the thread count"
    );

    // Perf-regression gate: compare this run's Melem/s against a committed
    // baseline (Melem/s is size-independent for these streaming kernels, so
    // quick runs gate against full baselines).
    if let Some(path) = compare_path {
        let current: Vec<perfgate::Measurement> = rows
            .iter()
            .map(|r| perfgate::Measurement::new(r.kernel.clone(), r.threads, r.melem_per_s))
            .collect();
        if perfgate::run_gate(
            &path,
            &current,
            host_parallelism,
            perfgate::kernel_baseline,
        ) {
            std::process::exit(1);
        }
    }

    // Only a full-size run may replace the committed baseline: quick-mode
    // numbers are not comparable (smaller inputs, fewer reps), so `--quick`
    // skips the write unless `--json` explicitly asks for it.
    let force_json = args.iter().any(|a| a == "--json");
    if no_json || (quick && !force_json) {
        return;
    }
    // Refuse to replace a baseline measured on a different host class: the
    // numbers would not be comparable and the perf trajectory would silently
    // reset.  `--force-baseline` overrides (intentional re-baselining).
    if !force_baseline
        && perfgate::baseline_host_mismatch("BENCH_kernels.json", host_parallelism)
    {
        eprintln!(
            "refusing to overwrite BENCH_kernels.json: committed baseline was measured \
             on a different host class (host_parallelism mismatch); pass --force-baseline \
             to re-baseline on this host"
        );
        std::process::exit(1);
    }
    let file = BenchFile {
        bench: "scaling_kernels".to_string(),
        quick,
        pool_threads,
        host_parallelism,
        rows,
    };
    match serde_json::to_string(&file) {
        Ok(json) => {
            if let Err(err) = std::fs::write("BENCH_kernels.json", json) {
                eprintln!("failed to write BENCH_kernels.json: {err}");
            } else {
                println!(
                    "\nwrote BENCH_kernels.json ({pool_threads}-thread pool, \
                     {host_parallelism} hardware thread(s))"
                );
            }
        }
        Err(err) => eprintln!("failed to serialise BENCH_kernels.json: {err}"),
    }
}
