//! # lcr-chaos
//!
//! Deterministic chaos engine for the lossy-checkpointing reproduction:
//! seeded fault injection across the storage tier, the shard communication
//! fabric and the recovery paths.
//!
//! Everything is driven by a [`ChaosPlan`] — a plain value holding a seed
//! and per-operation fault probabilities.  From one plan the campaign
//! derives:
//!
//! * [`FaultyBackend`] — a [`StorageBackend`] wrapper injecting transient
//!   `EIO`, torn writes, short writes, fsync lies, post-commit bit flips
//!   and persistent device death into every file operation the
//!   [`DiskStore`](lcr_ckpt::DiskStore) performs;
//! * [`ChaosInterposer`] — a [`CommInterposer`] injecting message delay,
//!   message drops and a one-shot peer stall into the halo exchange.
//!
//! Both draw their schedule from a `ChaCha8Rng` seeded *only* by the plan
//! (plus a caller-supplied salt so each shard gets an independent stream):
//! the same plan replays the same faults at the same operation indices,
//! every time.  Each injected fault is recorded in an ordered
//! [`FaultRecord`] log, so a failing schedule can be replayed and
//! diff'd bit-for-bit from nothing but its seed.
//!
//! The safety invariant this crate exists to prove: under any plan, a run
//! either converges with a correct residual or fails with a *typed* error
//! — injected corruption is always detected (CRC/chain validation), never
//! silently returned as an answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lcr_ckpt::{OsBackend, StorageBackend};
use lcr_sparse::{CommAction, CommInterposer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded fault-injection schedule: probabilities per storage operation
/// and per halo message, plus one-shot scenario triggers.  Two runs with
/// the same plan (and salts) observe identical fault sequences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Master seed; every injector stream derives from it.
    pub seed: u64,
    /// Probability of a transient `EIO` on any storage operation
    /// (retryable: the next attempt redraws).
    pub transient_io: f64,
    /// Probability that a `write_file` tears: a prefix lands on disk and
    /// the call fails with `EIO`.
    pub torn_write: f64,
    /// Probability that a `write_file` is silently short: a prefix lands
    /// and the call *succeeds* — only CRC validation can catch it later.
    pub short_write: f64,
    /// Probability that an `fsync` lies: it reports success but the tail
    /// of the file is lost (modelled by truncating it), as a dying disk's
    /// volatile cache would.
    pub fsync_lie: f64,
    /// Probability that a committed (renamed) file gets one bit flipped
    /// right after its rename — post-commit media corruption.
    pub bit_flip: f64,
    /// After this many storage operations the device dies for good: every
    /// subsequent *mutating* operation fails with a hard `EIO`.  `None`
    /// keeps the device alive.
    pub persistent_fail_after: Option<u64>,
    /// Probability that a halo message is dropped (the receiver times out
    /// with a typed error).
    pub msg_drop: f64,
    /// Probability that a halo message is delayed by [`ChaosPlan::delay`].
    pub msg_delay: f64,
    /// Delay applied to delayed messages.
    pub delay: Duration,
    /// One-shot peer stall: before sending halo message number `n`
    /// (0-based, per shard), the shard sleeps [`ChaosPlan::stall`] —
    /// long enough to trip the coordinator heartbeat.
    pub stall_at_msg: Option<u64>,
    /// Sleep length of the one-shot stall.
    pub stall: Duration,
}

impl ChaosPlan {
    /// A fault-free plan (baseline / control runs).
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            transient_io: 0.0,
            torn_write: 0.0,
            short_write: 0.0,
            fsync_lie: 0.0,
            bit_flip: 0.0,
            persistent_fail_after: None,
            msg_drop: 0.0,
            msg_delay: 0.0,
            delay: Duration::from_millis(1),
            stall_at_msg: None,
            stall: Duration::from_millis(200),
        }
    }

    /// A moderate storage-fault mix: occasional transient `EIO`, rare torn
    /// / short writes, fsync lies and bit flips — the soak's bread and
    /// butter.
    pub fn storage_mix(seed: u64) -> Self {
        ChaosPlan {
            transient_io: 0.05,
            torn_write: 0.02,
            short_write: 0.02,
            fsync_lie: 0.02,
            bit_flip: 0.02,
            ..ChaosPlan::quiet(seed)
        }
    }

    /// A plan whose disk dies for good after `ops` operations — the
    /// degrade-to-memory scenario.
    pub fn dying_disk(seed: u64, ops: u64) -> Self {
        ChaosPlan {
            persistent_fail_after: Some(ops),
            ..ChaosPlan::storage_mix(seed)
        }
    }

    /// Builds the seeded fault-injecting storage backend for this plan.
    /// `salt` decorrelates streams (use the shard index); the returned
    /// `Arc` can be cloned into a [`DiskStore`] while the caller keeps a
    /// handle for [`FaultyBackend::fault_log`] inspection.
    pub fn backend(&self, salt: u64) -> Arc<FaultyBackend> {
        Arc::new(FaultyBackend::new(*self, salt))
    }

    /// Builds the seeded comm interposer for this plan (`salt` = shard).
    pub fn interposer(&self, salt: u64) -> Box<ChaosInterposer> {
        Box::new(ChaosInterposer::new(*self, salt))
    }

    fn rng(&self, salt: u64) -> ChaCha8Rng {
        // SplitMix-style decorrelation so shard 0/salt 0 is not the plain
        // seed stream shared with other components.
        ChaCha8Rng::seed_from_u64(
            self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5),
        )
    }
}

/// What kind of fault an injector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient `EIO`; a retry may succeed.
    TransientIo,
    /// Torn write: prefix persisted, call failed.
    TornWrite,
    /// Short write: prefix persisted, call *succeeded*.
    ShortWrite,
    /// Fsync lie: success reported, file tail lost.
    FsyncLie,
    /// Post-commit bit flip in a committed file.
    BitFlip,
    /// Persistent device failure (every mutation fails from now on).
    PersistentIo,
    /// Halo message dropped.
    MsgDrop,
    /// Halo message delayed.
    MsgDelay,
    /// One-shot peer stall.
    Stall,
}

/// One injected fault, in schedule order — the replayable evidence trail.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Operation index (per injector) at which the fault fired.
    pub op: u64,
    /// The operation that was hit (e.g. `"write_file"`, `"halo_send"`).
    pub operation: &'static str,
    /// Path of the affected file (empty for comm faults).
    pub path: PathBuf,
    /// What was injected.
    pub kind: FaultKind,
}

struct FaultyState {
    rng: ChaCha8Rng,
    ops: u64,
    log: Vec<FaultRecord>,
    corrupted: BTreeSet<PathBuf>,
}

/// A [`StorageBackend`] wrapper injecting seeded faults into every file
/// operation, while delegating the real I/O to an inner backend
/// ([`OsBackend`]).
///
/// Determinism: the fault schedule is a pure function of the plan, the
/// salt and the *operation sequence*.  Use synchronous stores (no
/// write-behind) when bit-identical replay matters — a background I/O
/// thread interleaves its operations nondeterministically.
pub struct FaultyBackend {
    inner: OsBackend,
    plan: ChaosPlan,
    state: Mutex<FaultyState>,
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("chaos state poisoned");
        f.debug_struct("FaultyBackend")
            .field("plan", &self.plan)
            .field("ops", &state.ops)
            .field("faults", &state.log.len())
            .finish()
    }
}

impl FaultyBackend {
    /// Creates the injector for `plan`, decorrelated by `salt`.
    pub fn new(plan: ChaosPlan, salt: u64) -> Self {
        FaultyBackend {
            inner: OsBackend,
            plan,
            state: Mutex::new(FaultyState {
                rng: plan.rng(salt),
                ops: 0,
                log: Vec::new(),
                corrupted: BTreeSet::new(),
            }),
        }
    }

    /// The ordered log of every fault injected so far.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.state.lock().expect("chaos state poisoned").log.clone()
    }

    /// Paths of committed files this injector corrupted post-commit
    /// (bit flips) — each of these MUST later fail validation.
    pub fn corrupted_files(&self) -> Vec<PathBuf> {
        self.state
            .lock()
            .expect("chaos state poisoned")
            .corrupted
            .iter()
            .cloned()
            .collect()
    }

    /// Number of storage operations observed.
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("chaos state poisoned").ops
    }

    /// Draws the fault decision for one operation.  `mutating` gates the
    /// persistent-death mode (reads keep working off the page cache).
    fn decide(&self, operation: &'static str, path: &Path, mutating: bool) -> Option<FaultKind> {
        let mut state = self.state.lock().expect("chaos state poisoned");
        state.ops += 1;
        let op = state.ops;
        if mutating {
            if let Some(after) = self.plan.persistent_fail_after {
                if op > after {
                    state.log.push(FaultRecord {
                        op,
                        operation,
                        path: path.to_path_buf(),
                        kind: FaultKind::PersistentIo,
                    });
                    return Some(FaultKind::PersistentIo);
                }
            }
        }
        let kind = if state.rng.gen_bool(self.plan.transient_io) {
            Some(FaultKind::TransientIo)
        } else if operation == "write_file" && state.rng.gen_bool(self.plan.torn_write) {
            Some(FaultKind::TornWrite)
        } else if operation == "write_file" && state.rng.gen_bool(self.plan.short_write) {
            Some(FaultKind::ShortWrite)
        } else if operation == "fsync" && state.rng.gen_bool(self.plan.fsync_lie) {
            Some(FaultKind::FsyncLie)
        } else if operation == "rename" && state.rng.gen_bool(self.plan.bit_flip) {
            Some(FaultKind::BitFlip)
        } else {
            None
        };
        if let Some(kind) = kind {
            state.log.push(FaultRecord {
                op,
                operation,
                path: path.to_path_buf(),
                kind,
            });
        }
        kind
    }

    fn mark_corrupted(&self, path: &Path) {
        self.state
            .lock()
            .expect("chaos state poisoned")
            .corrupted
            .insert(path.to_path_buf());
    }

    fn eio(kind: FaultKind) -> io::Error {
        io::Error::other(format!("chaos-injected {kind:?}"))
    }
}

impl StorageBackend for FaultyBackend {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.decide("create_dir_all", dir, true) {
            Some(k @ (FaultKind::TransientIo | FaultKind::PersistentIo)) => Err(Self::eio(k)),
            _ => self.inner.create_dir_all(dir),
        }
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.decide("list_dir", dir, false) {
            Some(FaultKind::TransientIo) => Err(Self::eio(FaultKind::TransientIo)),
            _ => self.inner.list_dir(dir),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        match self.decide("file_len", path, false) {
            Some(FaultKind::TransientIo) => Err(Self::eio(FaultKind::TransientIo)),
            _ => self.inner.file_len(path),
        }
    }

    fn read_prefix(&self, path: &Path, len: usize) -> io::Result<Vec<u8>> {
        match self.decide("read_prefix", path, false) {
            Some(FaultKind::TransientIo) => Err(Self::eio(FaultKind::TransientIo)),
            _ => self.inner.read_prefix(path, len),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide("read", path, false) {
            Some(FaultKind::TransientIo) => Err(Self::eio(FaultKind::TransientIo)),
            _ => self.inner.read(path),
        }
    }

    fn write_file(&self, path: &Path, parts: &[&[u8]]) -> io::Result<()> {
        match self.decide("write_file", path, true) {
            Some(k @ (FaultKind::TransientIo | FaultKind::PersistentIo)) => Err(Self::eio(k)),
            Some(FaultKind::TornWrite) => {
                // A prefix lands, then the write fails: the caller sees the
                // error and retries or aborts; the torn temp file must
                // never become a valid checkpoint.
                let flat: Vec<u8> = parts.concat();
                let cut = flat.len() / 2;
                self.inner.write_file(path, &[&flat[..cut]])?;
                Err(Self::eio(FaultKind::TornWrite))
            }
            Some(FaultKind::ShortWrite) => {
                // A prefix lands and the call *succeeds* — the classic
                // silent short write.  Detection is deferred to CRC/length
                // validation on the read side.
                let flat: Vec<u8> = parts.concat();
                let cut = flat.len().saturating_sub(1 + flat.len() / 4);
                self.inner.write_file(path, &[&flat[..cut]])?;
                self.mark_corrupted(path);
                Ok(())
            }
            _ => self.inner.write_file(path, parts),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.decide("fsync", path, true) {
            Some(k @ (FaultKind::TransientIo | FaultKind::PersistentIo)) => Err(Self::eio(k)),
            Some(FaultKind::FsyncLie) => {
                // The drive acks the flush but its volatile cache never hit
                // the platter: model the lost tail by truncating, then
                // report success.
                let bytes = self.inner.read(path)?;
                let keep = bytes.len().saturating_sub(1 + bytes.len() / 8);
                self.inner.write_file(path, &[&bytes[..keep]])?;
                self.mark_corrupted(path);
                Ok(())
            }
            _ => self.inner.fsync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide("rename", to, true) {
            Some(k @ (FaultKind::TransientIo | FaultKind::PersistentIo)) => Err(Self::eio(k)),
            Some(FaultKind::BitFlip) => {
                // Commit succeeds, then the medium flips one bit in the
                // committed file: CRC validation must reject it on read.
                self.inner.rename(from, to)?;
                let mut bytes = self.inner.read(to)?;
                if !bytes.is_empty() {
                    let (pos, bit) = {
                        let mut state = self.state.lock().expect("chaos state poisoned");
                        // Flip strictly inside the payload region (past the
                        // 16-byte header) when possible so the flip can
                        // never be mistaken for a wrong-magic file.
                        let lo = 16.min(bytes.len() - 1);
                        (state.rng.gen_range(lo..bytes.len()), state.rng.gen_range(0..8u32))
                    };
                    bytes[pos] ^= 1 << bit;
                    self.inner.write_file(to, &[&bytes])?;
                }
                self.mark_corrupted(to);
                Ok(())
            }
            _ => self.inner.rename(from, to),
        }
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.decide("fsync_dir", dir, true) {
            Some(k @ (FaultKind::TransientIo | FaultKind::PersistentIo)) => Err(Self::eio(k)),
            _ => self.inner.fsync_dir(dir),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.decide("remove_file", path, true) {
            Some(k @ (FaultKind::TransientIo | FaultKind::PersistentIo)) => Err(Self::eio(k)),
            _ => self.inner.remove_file(path),
        }
    }
}

/// A [`CommInterposer`] injecting seeded message delay, drops and a
/// one-shot stall into a shard's halo sends.
pub struct ChaosInterposer {
    plan: ChaosPlan,
    rng: ChaCha8Rng,
    stalled: bool,
    log: Vec<FaultRecord>,
}

impl ChaosInterposer {
    /// Creates the interposer for `plan`, decorrelated by `salt` (use the
    /// shard index).
    pub fn new(plan: ChaosPlan, salt: u64) -> Self {
        ChaosInterposer {
            plan,
            // Offset the salt so the comm stream never mirrors the storage
            // stream of the same shard.
            rng: plan.rng(salt.wrapping_add(0x5EED_C0DE)),
            stalled: false,
            log: Vec::new(),
        }
    }

    /// The ordered log of injected comm faults.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.log
    }
}

impl CommInterposer for ChaosInterposer {
    fn on_halo_send(&mut self, _from: usize, _to: usize, seq: u64) -> CommAction {
        if !self.stalled && self.plan.stall_at_msg == Some(seq) {
            self.stalled = true;
            self.log.push(FaultRecord {
                op: seq,
                operation: "halo_send",
                path: PathBuf::new(),
                kind: FaultKind::Stall,
            });
            std::thread::sleep(self.plan.stall);
        } else if self.plan.msg_delay > 0.0 && self.rng.gen_bool(self.plan.msg_delay) {
            self.log.push(FaultRecord {
                op: seq,
                operation: "halo_send",
                path: PathBuf::new(),
                kind: FaultKind::MsgDelay,
            });
            std::thread::sleep(self.plan.delay);
        }
        if self.plan.msg_drop > 0.0 && self.rng.gen_bool(self.plan.msg_drop) {
            self.log.push(FaultRecord {
                op: seq,
                operation: "halo_send",
                path: PathBuf::new(),
                kind: FaultKind::MsgDrop,
            });
            return CommAction::Drop;
        }
        CommAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lcr-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let plan = ChaosPlan::storage_mix(42);
        let dir = tempdir("replay");
        OsBackend.create_dir_all(&dir).unwrap();
        let runs: Vec<Vec<FaultRecord>> = (0..2)
            .map(|_| {
                let fb = plan.backend(0);
                for i in 0..200u32 {
                    let path = dir.join(format!("f{i}.tmp"));
                    let _ = fb.write_file(&path, &[&i.to_le_bytes()]);
                    let _ = fb.fsync(&path);
                    let _ = fb.rename(&path, &dir.join(format!("f{i}.bin")));
                }
                fb.fault_log()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "fault schedule must replay bit-identically");
        assert!(!runs[0].is_empty(), "a 5% mix over 600 ops fires");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_salts_decorrelate_streams() {
        let plan = ChaosPlan::storage_mix(7);
        let dir = tempdir("salt");
        OsBackend.create_dir_all(&dir).unwrap();
        let logs: Vec<Vec<FaultRecord>> = [0u64, 1].iter().map(|&salt| {
            let fb = plan.backend(salt);
            for i in 0..200u32 {
                let path = dir.join(format!("s{salt}-{i}.tmp"));
                let _ = fb.write_file(&path, &[&i.to_le_bytes()]);
            }
            fb.fault_log()
        }).collect();
        assert_ne!(logs[0], logs[1], "salted streams must differ");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_death_fails_every_later_mutation() {
        let plan = ChaosPlan {
            persistent_fail_after: Some(3),
            ..ChaosPlan::quiet(1)
        };
        let dir = tempdir("death");
        OsBackend.create_dir_all(&dir).unwrap();
        let fb = plan.backend(0);
        let p = dir.join("x.tmp");
        assert!(fb.write_file(&p, &[b"a"]).is_ok()); // op 1
        assert!(fb.fsync(&p).is_ok()); // op 2
        assert!(fb.write_file(&p, &[b"b"]).is_ok()); // op 3
        for _ in 0..5 {
            assert!(fb.write_file(&p, &[b"c"]).is_err(), "device stays dead");
        }
        // Reads keep working (page-cache semantics).
        assert!(fb.read(&p).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_recorded_and_visible_on_disk() {
        let plan = ChaosPlan {
            bit_flip: 1.0,
            ..ChaosPlan::quiet(9)
        };
        let dir = tempdir("flip");
        OsBackend.create_dir_all(&dir).unwrap();
        let fb = plan.backend(0);
        let tmp = dir.join("c.tmp");
        let fin = dir.join("c.bin");
        let payload = vec![0u8; 64];
        fb.write_file(&tmp, &[&payload]).unwrap();
        fb.rename(&tmp, &fin).unwrap();
        assert_eq!(fb.corrupted_files(), vec![fin.clone()]);
        let bytes = OsBackend.read(&fin).unwrap();
        assert_ne!(bytes, payload, "one bit must differ post-commit");
        assert_eq!(bytes.len(), payload.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interposer_drop_schedule_is_deterministic() {
        let plan = ChaosPlan {
            msg_drop: 0.3,
            ..ChaosPlan::quiet(5)
        };
        let decisions: Vec<Vec<CommAction>> = (0..2)
            .map(|_| {
                let mut ip = plan.interposer(2);
                (0..100).map(|seq| ip.on_halo_send(0, 1, seq)).collect()
            })
            .collect();
        assert_eq!(decisions[0], decisions[1]);
        assert!(decisions[0].contains(&CommAction::Drop));
        assert!(decisions[0].contains(&CommAction::Deliver));
    }
}
