//! Durable on-disk checkpoint tier with a crash-consistent file format.
//!
//! The in-memory [`CheckpointStore`](crate::store::CheckpointStore) models
//! FTI's metadata handling but evaporates with the process — useless for
//! the one scenario checkpointing exists for.  [`DiskStore`] adds the
//! durable tier: every committed checkpoint becomes one self-describing
//! file that a *fresh* process can reopen, validate and resume from.
//!
//! # File format (version 2, all integers little-endian)
//!
//! | offset | field |
//! |---|---|
//! | 0  | magic `LCRCKPT0` (8 bytes) |
//! | 8  | format version `u32` |
//! | 12 | metadata length `M` `u32` |
//! | 16 | metadata block (`M` bytes, layout below) |
//! | 16+M | metadata CRC32 `u32` over bytes `[0, 16+M)` |
//! | 20+M | payloads, concatenated in segment-table order |
//!
//! Metadata block: checkpoint id `u64` · iteration `u64` · completed-at
//! `f64` bits · storage level `u8` · original bytes `u64` · **encoding tag
//! `u8`** (0 = anchor, 1/2 = temporal delta of that order; *version ≥ 2
//! only*) · **base checkpoint id `u64`** (*only when the tag is 1 or 2*) ·
//! strategy tag (`u16` length + UTF-8) · scalar count `u32` + per scalar
//! (`u16` name length + name + `f64` bits) · segment count `u32` + per
//! segment (`u16` name length + name + payload length `u64` + payload
//! CRC32 `u32`).
//!
//! Version-1 files (no encoding tag, every checkpoint self-contained)
//! still parse; they are treated as anchors.
//!
//! # Delta chains (version 2)
//!
//! A delta-encoded checkpoint stores temporally delta-coded payload
//! streams that decode only against its base checkpoint's streams
//! (see `lcr-compress`); the base link is recorded in the header.
//! Two rules keep the durable tier consistent with that dependency:
//!
//! * **Retention** evicts whole chains: the oldest file is deleted only
//!   together with every file that (transitively) delta-depends on it, so
//!   a live delta never loses its base — the window temporarily stretches
//!   past `retain` instead ([`DiskStore::register`]).
//! * **Recovery** returns whole chains: [`DiskStore::latest_valid_chain`]
//!   walks candidates newest→oldest, follows base links back to the
//!   nearest anchor, and CRC-validates *every* member.  If any member is
//!   corrupt the whole dependent chain is abandoned and recovery falls
//!   back to the newest older complete chain.
//!
//! # Atomicity and crash consistency
//!
//! * A checkpoint is written to `<name>.tmp`, `fsync`ed, then `rename`d to
//!   its final name (and the directory is fsynced best-effort): the rename
//!   is the commit point, so a crash mid-write leaves only a `.tmp` file
//!   that [`DiskStore::open`] discards.  A complete file never coexists
//!   with a partial one under the same final name.
//! * The segment table pins the exact file length, the metadata CRC covers
//!   everything up to the payloads and each payload carries its own CRC32
//!   — a truncated, extended or bit-flipped file is rejected, and
//!   [`DiskStore::latest_valid`] falls back to the next-newest complete
//!   checkpoint (FTI's rule: only a *completed* write is recoverable).
//!
//! # Write-behind
//!
//! With [`DiskStore::set_write_behind`] the store hands the whole
//! [`CheckpointBuffer`] arena to a background I/O thread and immediately
//! returns a recycled arena, so file I/O overlaps the next solver
//! iterations.  At most one write is in flight (double buffering): a
//! second push, [`DiskStore::flush`] or any recovery first joins the
//! outstanding write, so recovery never races a half-written file.

use crate::backend::{OsBackend, RetryPolicy, StorageBackend};
use crate::pfs::CheckpointLevel;
use crate::store::{CheckpointBuffer, CheckpointEncoding, CheckpointMetadata};
use crate::{CkptError, Result};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"LCRCKPT0";
/// Current on-disk format version (2 added the anchor-vs-delta encoding
/// fields; version-1 files still parse as all-anchor stores).
pub const FORMAT_VERSION: u32 = 2;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// IEEE CRC-32 (the zip/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn level_to_u8(level: CheckpointLevel) -> u8 {
    match level {
        CheckpointLevel::Local => 0,
        CheckpointLevel::Partner => 1,
        CheckpointLevel::ReedSolomon => 2,
        CheckpointLevel::Pfs => 3,
    }
}

fn level_from_u8(v: u8) -> Result<CheckpointLevel> {
    Ok(match v {
        0 => CheckpointLevel::Local,
        1 => CheckpointLevel::Partner,
        2 => CheckpointLevel::ReedSolomon,
        3 => CheckpointLevel::Pfs,
        _ => return Err(CkptError::Corrupt(format!("unknown storage level {v}"))),
    })
}

fn io_err(context: &str, err: std::io::Error) -> CkptError {
    CkptError::Io(format!("{context}: {err}"))
}

/// One checkpoint read back from the durable tier: everything a fresh
/// process needs to resume — metadata, the strategy tag recorded by the
/// writer, the checkpointed scalars, and the encoded payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskCheckpoint {
    /// Descriptive metadata (unscaled: real stored byte counts).
    pub metadata: CheckpointMetadata,
    /// Name of the strategy that encoded the payloads
    /// (`CheckpointStrategy::name()` in `lcr-core`).
    pub tag: String,
    /// Scalars captured alongside the vectors (exact-recovery state).
    pub scalars: Vec<(String, f64)>,
    /// Encoded payload per variable id.
    pub payloads: Vec<(String, Vec<u8>)>,
}

/// Everything the serializer needs to produce one checkpoint file.
#[derive(Debug, Clone)]
struct FileMeta {
    id: u64,
    iteration: usize,
    completed_at: f64,
    level: CheckpointLevel,
    original_bytes: usize,
    encoding: CheckpointEncoding,
    tag: String,
    scalars: Vec<(String, f64)>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("name longer than 65535 bytes");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes the header (magic + version + metadata + metadata CRC) for a
/// checkpoint whose payloads are the segments of `buffer`.
fn encode_header(meta: &FileMeta, buffer: &CheckpointBuffer) -> Vec<u8> {
    let mut block = Vec::with_capacity(64 + 32 * buffer.n_variables());
    block.extend_from_slice(&meta.id.to_le_bytes());
    block.extend_from_slice(&(meta.iteration as u64).to_le_bytes());
    block.extend_from_slice(&meta.completed_at.to_bits().to_le_bytes());
    block.push(level_to_u8(meta.level));
    block.extend_from_slice(&(meta.original_bytes as u64).to_le_bytes());
    match meta.encoding {
        CheckpointEncoding::Anchor => block.push(0),
        CheckpointEncoding::Delta { base_id, order } => {
            block.push(order);
            block.extend_from_slice(&base_id.to_le_bytes());
        }
    }
    put_str(&mut block, &meta.tag);
    block.extend_from_slice(&(meta.scalars.len() as u32).to_le_bytes());
    for (name, value) in &meta.scalars {
        put_str(&mut block, name);
        block.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    block.extend_from_slice(&(buffer.n_variables() as u32).to_le_bytes());
    for (name, payload) in buffer.segments() {
        put_str(&mut block, name);
        block.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        block.extend_from_slice(&crc32(payload).to_le_bytes());
    }

    let mut out = Vec::with_capacity(16 + block.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(block.len() as u32).to_le_bytes());
    out.extend_from_slice(&block);
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CkptError::Corrupt("metadata block truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CkptError::Corrupt("non-UTF-8 name in metadata".into()))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parsed header plus where each payload lives in the file.
struct ParsedHeader {
    meta: FileMeta,
    /// `(variable id, offset-in-file, length, crc)` per segment.
    segments: Vec<(String, usize, usize, u32)>,
    /// Expected total file length.
    file_len: usize,
}

fn parse_header(bytes: &[u8], path: &Path) -> Result<ParsedHeader> {
    let corrupt = |msg: &str| CkptError::Corrupt(format!("{}: {msg}", path.display()));
    if bytes.len() < 20 {
        return Err(corrupt("shorter than the fixed header"));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > FORMAT_VERSION {
        return Err(corrupt(&format!("unsupported format version {version}")));
    }
    let meta_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let crc_at = 16usize
        .checked_add(meta_len)
        .filter(|&e| e + 4 <= bytes.len())
        .ok_or_else(|| corrupt("metadata length exceeds file"))?;
    let stored_crc = u32::from_le_bytes(bytes[crc_at..crc_at + 4].try_into().expect("4 bytes"));
    if crc32(&bytes[..crc_at]) != stored_crc {
        return Err(corrupt("metadata CRC mismatch"));
    }

    let mut r = Reader::new(&bytes[16..crc_at]);
    let id = r.u64()?;
    let iteration = usize::try_from(r.u64()?)
        .map_err(|_| corrupt("iteration does not fit in usize"))?;
    let completed_at = r.f64()?;
    let level = level_from_u8(r.u8()?)?;
    let original_bytes = usize::try_from(r.u64()?)
        .map_err(|_| corrupt("original size does not fit in usize"))?;
    let encoding = if version >= 2 {
        match r.u8()? {
            0 => CheckpointEncoding::Anchor,
            order @ (1 | 2) => CheckpointEncoding::Delta {
                base_id: r.u64()?,
                order,
            },
            other => return Err(corrupt(&format!("unknown encoding tag {other}"))),
        }
    } else {
        // Version-1 files predate delta chains: every checkpoint is
        // self-contained.
        CheckpointEncoding::Anchor
    };
    let tag = r.string()?;
    let n_scalars = r.u32()? as usize;
    let mut scalars = Vec::with_capacity(n_scalars.min(1024));
    for _ in 0..n_scalars {
        let name = r.string()?;
        let value = r.f64()?;
        scalars.push((name, value));
    }
    let n_segments = r.u32()? as usize;
    let mut segments = Vec::with_capacity(n_segments.min(1024));
    let mut offset = crc_at + 4;
    for _ in 0..n_segments {
        let name = r.string()?;
        let len = usize::try_from(r.u64()?)
            .map_err(|_| corrupt("payload length does not fit in usize"))?;
        let crc = r.u32()?;
        segments.push((name, offset, len, crc));
        offset = offset
            .checked_add(len)
            .ok_or_else(|| corrupt("payload lengths overflow"))?;
    }
    if !r.finished() {
        return Err(corrupt("trailing bytes in metadata block"));
    }
    Ok(ParsedHeader {
        meta: FileMeta {
            id,
            iteration,
            completed_at,
            level,
            original_bytes,
            encoding,
            tag,
            scalars,
        },
        segments,
        file_len: offset,
    })
}

/// Reads and fully validates one checkpoint file: magic, version, metadata
/// CRC, exact file length from the segment table, and every payload CRC.
///
/// # Errors
/// [`CkptError::Io`] if the file cannot be read, [`CkptError::Corrupt`] if
/// any validation fails (a partially written or bit-flipped checkpoint is
/// never returned).
pub fn read_checkpoint_file(path: &Path) -> Result<DiskCheckpoint> {
    read_checkpoint_with(&OsBackend, path)
}

/// [`read_checkpoint_file`] routed through an explicit [`StorageBackend`]
/// (the seam fault injectors and alternative storage tiers plug into).
///
/// # Errors
/// Same contract as [`read_checkpoint_file`].
pub fn read_checkpoint_with(backend: &dyn StorageBackend, path: &Path) -> Result<DiskCheckpoint> {
    let bytes = backend
        .read(path)
        .map_err(|e| io_err("reading checkpoint", e))?;
    parse_checkpoint_bytes(&bytes, path)
}

/// Validates and decodes one fully-read checkpoint image.
fn parse_checkpoint_bytes(bytes: &[u8], path: &Path) -> Result<DiskCheckpoint> {
    let parsed = parse_header(bytes, path)?;
    if bytes.len() != parsed.file_len {
        return Err(CkptError::Corrupt(format!(
            "{}: file is {} bytes, segment table requires {}",
            path.display(),
            bytes.len(),
            parsed.file_len
        )));
    }
    let mut payloads = Vec::with_capacity(parsed.segments.len());
    let mut variable_bytes = Vec::with_capacity(parsed.segments.len());
    for (name, offset, len, expected_crc) in parsed.segments {
        let payload = &bytes[offset..offset + len];
        if crc32(payload) != expected_crc {
            return Err(CkptError::Corrupt(format!(
                "{}: payload CRC mismatch for variable {name:?}",
                path.display()
            )));
        }
        variable_bytes.push((name.clone(), len));
        payloads.push((name, payload.to_vec()));
    }
    let total_bytes = variable_bytes.iter().map(|(_, b)| *b).sum();
    Ok(DiskCheckpoint {
        metadata: CheckpointMetadata {
            id: parsed.meta.id,
            iteration: parsed.meta.iteration,
            completed_at: parsed.meta.completed_at,
            level: parsed.meta.level,
            total_bytes,
            original_bytes: parsed.meta.original_bytes,
            encoding: parsed.meta.encoding,
            variable_bytes,
        },
        tag: parsed.meta.tag,
        scalars: parsed.meta.scalars,
        payloads,
    })
}

/// Writes `header` + `payload` to `tmp`, fsyncs, and renames to `fin` (the
/// commit point); the directory is fsynced best-effort afterwards.  All
/// file I/O goes through `backend` so faults can be injected at each step.
fn write_atomic(
    backend: &dyn StorageBackend,
    tmp: &Path,
    fin: &Path,
    header: &[u8],
    payload: &[u8],
) -> std::io::Result<()> {
    backend.write_file(tmp, &[header, payload])?;
    backend.fsync(tmp)?;
    backend.rename(tmp, fin)?;
    if let Some(dir) = fin.parent() {
        let _ = backend.fsync_dir(dir);
    }
    Ok(())
}

/// Runs one write-behind job with retries; returns the result plus the
/// retry count and backoff schedule so the owning store can account for
/// the supervision work done on the I/O thread.
fn write_job(job: &Job) -> (std::result::Result<(), String>, u32, Vec<f64>) {
    let header = encode_header(&job.meta, &job.buffer);
    let (result, retries, backoff) = job.retry.run(|| {
        write_atomic(
            job.backend.as_ref(),
            &job.tmp,
            &job.fin,
            &header,
            job.buffer.arena_bytes(),
        )
    });
    (
        result.map_err(|e| format!("writing {}: {e}", job.fin.display())),
        retries,
        backoff,
    )
}

struct Job {
    tmp: PathBuf,
    fin: PathBuf,
    meta: FileMeta,
    buffer: CheckpointBuffer,
    backend: Arc<dyn StorageBackend>,
    retry: RetryPolicy,
}

struct JobDone {
    id: u64,
    buffer: CheckpointBuffer,
    result: std::result::Result<(), String>,
    retries: u32,
    backoff: Vec<f64>,
}

struct WriteBehind {
    tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<JobDone>,
    handle: Option<thread::JoinHandle<()>>,
    in_flight: usize,
}

impl WriteBehind {
    fn spawn() -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<JobDone>();
        let handle = thread::Builder::new()
            .name("lcr-ckpt-io".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let (result, retries, backoff) = write_job(&job);
                    let done = JobDone {
                        id: job.meta.id,
                        buffer: job.buffer,
                        result,
                        retries,
                        backoff,
                    };
                    if done_tx.send(done).is_err() {
                        break;
                    }
                }
            })
            .expect("spawning the checkpoint I/O thread");
        WriteBehind {
            tx,
            done_rx,
            handle: Some(handle),
            in_flight: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct DiskEntry {
    id: u64,
    path: PathBuf,
    metadata: CheckpointMetadata,
    /// Header-validated; cleared when a full read later finds corruption or
    /// the write-behind write for this entry fails.
    valid: bool,
}

/// Durable on-disk checkpoint store mirroring the in-memory
/// [`CheckpointStore`](crate::store::CheckpointStore) API: push from a
/// [`CheckpointBuffer`], read the newest *complete* checkpoint back, and
/// evict stale files beyond the retention limit.
pub struct DiskStore {
    dir: PathBuf,
    retain: usize,
    next_id: u64,
    entries: VecDeque<DiskEntry>,
    write_behind: Option<WriteBehind>,
    first_error: Option<String>,
    backend: Arc<dyn StorageBackend>,
    retry: RetryPolicy,
    /// Total transient-I/O retries performed (sync and write-behind).
    io_retries: u64,
    /// Pushes that needed at least one retry but ultimately committed.
    retried_pushes: u64,
    /// Seconds slept before each retry, in order (the backoff schedule).
    backoff_log: Vec<f64>,
    /// Memoized result of the last newest-valid-chain scan; invalidated
    /// on push, eviction, or any entry invalidation.
    chain_cache: Option<Vec<DiskCheckpoint>>,
    /// Cold (uncached) newest-valid scans performed.
    chain_scans: u64,
    /// Cumulative bytes handed to the durable tier (payloads only).
    pub total_bytes_written: u64,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("dir", &self.dir)
            .field("retain", &self.retain)
            .field("next_id", &self.next_id)
            .field("entries", &self.entries.len())
            .field("write_behind", &self.write_behind.is_some())
            .field("io_retries", &self.io_retries)
            .field("total_bytes_written", &self.total_bytes_written)
            .finish()
    }
}

impl DiskStore {
    /// Opens (creating if needed) a checkpoint directory, keeping the
    /// `retain` most recent checkpoints.
    ///
    /// Stray `.tmp` files — the residue of a crash mid-write — are deleted;
    /// existing checkpoint files are header-validated and indexed so a
    /// fresh process can resume from [`DiskStore::latest_valid`].
    /// Corrupt or incomplete files are kept on disk but never selected.
    ///
    /// # Errors
    /// [`CkptError::Io`] if the directory cannot be created or scanned.
    ///
    /// # Panics
    /// Panics if `retain` is zero.
    pub fn open(dir: impl AsRef<Path>, retain: usize) -> Result<Self> {
        Self::open_with_backend(dir, retain, Arc::new(OsBackend))
    }

    /// [`DiskStore::open`] over an explicit [`StorageBackend`] — the seam
    /// the chaos engine (and any future remote tier) plugs into.  All
    /// subsequent file I/O of this store, including the write-behind
    /// thread's, goes through `backend`.
    ///
    /// # Errors
    /// [`CkptError::Io`] if the directory cannot be created or scanned.
    ///
    /// # Panics
    /// Panics if `retain` is zero.
    pub fn open_with_backend(
        dir: impl AsRef<Path>,
        retain: usize,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self> {
        assert!(retain > 0, "must retain at least one checkpoint");
        let dir = dir.as_ref().to_path_buf();
        backend
            .create_dir_all(&dir)
            .map_err(|e| io_err("creating checkpoint directory", e))?;

        let mut entries: Vec<DiskEntry> = Vec::new();
        let listing = backend
            .list_dir(&dir)
            .map_err(|e| io_err("scanning checkpoint directory", e))?;
        for path in listing {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // A crash interrupted this write before the rename commit
                // point — by construction it is not a checkpoint.
                let _ = backend.remove_file(&path);
                continue;
            }
            let Some(id) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".lcr"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            let (metadata, valid) = match Self::validate_header(backend.as_ref(), &path) {
                Ok(metadata) => (metadata, true),
                Err(_) => (
                    CheckpointMetadata {
                        id,
                        iteration: 0,
                        completed_at: 0.0,
                        level: CheckpointLevel::Pfs,
                        total_bytes: 0,
                        original_bytes: 0,
                        encoding: CheckpointEncoding::Anchor,
                        variable_bytes: Vec::new(),
                    },
                    false,
                ),
            };
            entries.push(DiskEntry {
                id,
                path,
                metadata,
                valid,
            });
        }
        entries.sort_by_key(|e| e.id);
        let next_id = entries.last().map(|e| e.id + 1).unwrap_or(0);
        Ok(DiskStore {
            dir,
            retain,
            next_id,
            entries: entries.into(),
            write_behind: None,
            first_error: None,
            backend,
            retry: RetryPolicy::default(),
            io_retries: 0,
            retried_pushes: 0,
            backoff_log: Vec::new(),
            chain_cache: None,
            chain_scans: 0,
            total_bytes_written: 0,
        })
    }

    /// Header validation (magic, version, metadata CRC, file length):
    /// cheap enough for the open-time scan — only the header is read, the
    /// payload region is length-checked via the file size; payload CRCs
    /// are checked when a checkpoint is actually read for recovery.
    fn validate_header(backend: &dyn StorageBackend, path: &Path) -> Result<CheckpointMetadata> {
        let file_len = backend
            .file_len(path)
            .map_err(|e| io_err("statting checkpoint", e))?;
        if file_len < 16 {
            return Err(CkptError::Corrupt(format!(
                "{}: shorter than the fixed header",
                path.display()
            )));
        }
        let fixed = backend
            .read_prefix(path, 16)
            .map_err(|e| io_err("reading checkpoint header", e))?;
        let meta_len = u64::from(u32::from_le_bytes(
            fixed[12..16].try_into().expect("4 bytes"),
        ));
        // Bound the header allocation by the real file size before trusting
        // the length field.
        let header_len = 16 + meta_len + 4;
        if header_len > file_len {
            return Err(CkptError::Corrupt(format!(
                "{}: metadata length exceeds file",
                path.display()
            )));
        }
        let header = backend
            .read_prefix(path, header_len as usize)
            .map_err(|e| io_err("reading checkpoint header", e))?;
        let parsed = parse_header(&header, path)?;
        if file_len != parsed.file_len as u64 {
            return Err(CkptError::Corrupt(format!(
                "{}: incomplete checkpoint ({} of {} bytes)",
                path.display(),
                file_len,
                parsed.file_len
            )));
        }
        let variable_bytes: Vec<(String, usize)> = parsed
            .segments
            .iter()
            .map(|(name, _, len, _)| (name.clone(), *len))
            .collect();
        let total_bytes = variable_bytes.iter().map(|(_, b)| *b).sum();
        Ok(CheckpointMetadata {
            id: parsed.meta.id,
            iteration: parsed.meta.iteration,
            completed_at: parsed.meta.completed_at,
            level: parsed.meta.level,
            total_bytes,
            original_bytes: parsed.meta.original_bytes,
            encoding: parsed.meta.encoding,
            variable_bytes,
        })
    }

    /// The directory this store writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The retention limit.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// The storage backend every file operation of this store goes
    /// through.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Replaces the transient-error retry policy (default:
    /// [`RetryPolicy::default`]).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active transient-error retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Total transient-I/O retries performed so far (reads and writes,
    /// sync and write-behind).
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Pushes that needed at least one retry but ultimately committed.
    pub fn retried_pushes(&self) -> u64 {
        self.retried_pushes
    }

    /// Seconds slept before each retry, in order — the realized backoff
    /// schedule.
    pub fn backoff_log(&self) -> &[f64] {
        &self.backoff_log
    }

    /// Cold newest-valid-chain scans performed (cache misses).  The
    /// memoized result is served in between, so repeated recoveries
    /// without new pushes cost one scan.
    pub fn chain_scans(&self) -> u64 {
        self.chain_scans
    }

    /// Number of (header-)valid checkpoints currently indexed.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Whether no valid checkpoint is available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metadata of every valid checkpoint, oldest first.
    pub fn metadata(&self) -> Vec<&CheckpointMetadata> {
        self.entries
            .iter()
            .filter(|e| e.valid)
            .map(|e| &e.metadata)
            .collect()
    }

    /// Enables or disables write-behind.  Disabling joins the outstanding
    /// write first and surfaces any deferred I/O error.
    ///
    /// # Errors
    /// [`CkptError::Io`] if a deferred write failed while disabling.
    pub fn set_write_behind(&mut self, enabled: bool) -> Result<()> {
        if enabled {
            if self.write_behind.is_none() {
                self.write_behind = Some(WriteBehind::spawn());
            }
            Ok(())
        } else {
            let result = self.flush();
            if let Some(wb) = self.write_behind.take() {
                Self::shutdown_worker(wb);
            }
            result
        }
    }

    /// Whether a background I/O thread handles the writes.
    pub fn write_behind_enabled(&self) -> bool {
        self.write_behind.is_some()
    }

    fn paths_for(&self, id: u64) -> (PathBuf, PathBuf) {
        let fin = self.dir.join(format!("ckpt-{id:010}.lcr"));
        let tmp = self.dir.join(format!("ckpt-{id:010}.lcr.tmp"));
        (fin, tmp)
    }

    fn record_done(&mut self, done: JobDone) -> CheckpointBuffer {
        self.io_retries += u64::from(done.retries);
        self.backoff_log.extend_from_slice(&done.backoff);
        match done.result {
            Ok(()) => {
                if done.retries > 0 {
                    self.retried_pushes += 1;
                }
            }
            Err(msg) => {
                if let Some(entry) = self.entries.iter_mut().find(|e| e.id == done.id) {
                    entry.valid = false;
                }
                self.chain_cache = None;
                self.first_error.get_or_insert(msg);
            }
        }
        done.buffer
    }

    /// Joins the outstanding write-behind job, if any, returning its
    /// recycled buffer.
    fn join_one(&mut self) -> Option<CheckpointBuffer> {
        let done = {
            let wb = self.write_behind.as_mut()?;
            if wb.in_flight == 0 {
                return None;
            }
            wb.in_flight -= 1;
            wb.done_rx.recv().ok()
        };
        done.map(|d| self.record_done(d))
    }

    fn join_all(&mut self) {
        while self.join_one().is_some() {}
    }

    /// Waits for all in-flight writes to reach disk.
    ///
    /// # Errors
    /// [`CkptError::Io`] carrying the first deferred write error, if any
    /// write failed since the last flush (the failed checkpoint is marked
    /// invalid and will never be selected for recovery).
    pub fn flush(&mut self) -> Result<()> {
        self.join_all();
        match self.first_error.take() {
            Some(msg) => Err(CkptError::Io(msg)),
            None => Ok(()),
        }
    }

    fn register(&mut self, id: u64, path: PathBuf, metadata: CheckpointMetadata) {
        self.total_bytes_written += metadata.total_bytes as u64;
        self.chain_cache = None;
        self.entries.push_back(DiskEntry {
            id,
            path,
            metadata,
            valid: true,
        });
        // Retention: drop oldest files until at most `retain` valid
        // checkpoints remain — but only whole dependency chains.  Deleting
        // an anchor while a retained delta still decodes against it would
        // orphan that delta, so the front chain is evicted all-or-nothing
        // and the window temporarily stretches past `retain` when the
        // front chain reaches the newest entry.  Only entries strictly
        // older than the newest are ever popped, and pushes join the
        // previous async write first, so an in-flight file is never
        // evicted.
        while self.len() > self.retain {
            let chain_len = self.front_chain_len();
            if chain_len >= self.entries.len() {
                break;
            }
            for _ in 0..chain_len {
                if let Some(old) = self.entries.pop_front() {
                    let _ = self.backend.remove_file(&old.path);
                }
            }
        }
    }

    /// Length of the dependency chain at the front of the index: the
    /// oldest file plus every following file that (directly or
    /// transitively) delta-depends on it.
    fn front_chain_len(&self) -> usize {
        let mut len = 1;
        while len < self.entries.len() {
            let prev_id = self.entries[len - 1].id;
            match self.entries[len].metadata.encoding {
                CheckpointEncoding::Delta { base_id, .. } if base_id == prev_id => len += 1,
                _ => break,
            }
        }
        len
    }

    /// Resolves `delta_order` into the encoding recorded in the header: a
    /// delta is always coded against the checkpoint pushed immediately
    /// before it (the newest indexed entry at push time).
    ///
    /// # Panics
    /// Panics if a delta is pushed into an empty store — a delta without a
    /// base is undecodable by construction, so this is a caller bug.
    fn encoding_for(&self, delta_order: Option<u8>) -> CheckpointEncoding {
        match delta_order {
            None => CheckpointEncoding::Anchor,
            Some(order) => {
                let base = self
                    .entries
                    .back()
                    .expect("delta checkpoint pushed into an empty disk store");
                CheckpointEncoding::Delta {
                    base_id: base.id,
                    order,
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn file_meta(
        &self,
        id: u64,
        iteration: usize,
        completed_at: f64,
        level: CheckpointLevel,
        original_bytes: usize,
        encoding: CheckpointEncoding,
        tag: &str,
        scalars: &[(String, f64)],
    ) -> FileMeta {
        FileMeta {
            id,
            iteration,
            completed_at,
            level,
            original_bytes,
            encoding,
            tag: tag.to_string(),
            scalars: scalars.to_vec(),
        }
    }

    fn metadata_for(
        meta: &FileMeta,
        buffer: &CheckpointBuffer,
    ) -> CheckpointMetadata {
        let variable_bytes: Vec<(String, usize)> = buffer
            .segments()
            .map(|(name, payload)| (name.to_string(), payload.len()))
            .collect();
        CheckpointMetadata {
            id: meta.id,
            iteration: meta.iteration,
            completed_at: meta.completed_at,
            level: meta.level,
            total_bytes: buffer.total_bytes(),
            original_bytes: meta.original_bytes,
            encoding: meta.encoding,
            variable_bytes,
        }
    }

    /// Writes one checkpoint synchronously (temp file + fsync + rename),
    /// registers it, and evicts checkpoints beyond the retention limit.
    ///
    /// `delta_order` of `Some(1 | 2)` records the payloads as temporal
    /// deltas of that order against the newest checkpoint in the store
    /// (see the module docs on delta chains); `None` records an anchor.
    ///
    /// # Errors
    /// [`CkptError::Io`] if the write fails (nothing is registered), or if
    /// a previously deferred write-behind error is pending.
    ///
    /// # Panics
    /// Panics if a delta is pushed into an empty store.
    #[allow(clippy::too_many_arguments)]
    pub fn push_from_buffer(
        &mut self,
        iteration: usize,
        completed_at: f64,
        level: CheckpointLevel,
        original_bytes: usize,
        delta_order: Option<u8>,
        tag: &str,
        scalars: &[(String, f64)],
        buffer: &CheckpointBuffer,
    ) -> Result<CheckpointMetadata> {
        self.flush()?;
        let encoding = self.encoding_for(delta_order);
        let id = self.next_id;
        let meta = self.file_meta(
            id,
            iteration,
            completed_at,
            level,
            original_bytes,
            encoding,
            tag,
            scalars,
        );
        let (fin, tmp) = self.paths_for(id);
        let header = encode_header(&meta, buffer);
        let (result, retries, backoff) = self
            .retry
            .run(|| write_atomic(self.backend.as_ref(), &tmp, &fin, &header, buffer.arena_bytes()));
        self.io_retries += u64::from(retries);
        self.backoff_log.extend_from_slice(&backoff);
        match result {
            Ok(()) if retries > 0 => self.retried_pushes += 1,
            Ok(()) => {}
            Err(e) => return Err(io_err("writing checkpoint", e)),
        }
        self.next_id += 1;
        let metadata = Self::metadata_for(&meta, buffer);
        self.register(id, fin, metadata.clone());
        Ok(metadata)
    }

    /// Hands the buffer to the background I/O thread and returns
    /// immediately with a recycled buffer to encode the next checkpoint
    /// into (double buffering).  If write-behind is not enabled, falls back
    /// to a synchronous write and returns the same buffer.
    ///
    /// At most one write is in flight: a second push joins the previous
    /// one first, so checkpoint I/O overlaps at most one checkpoint
    /// interval of solver iterations.
    ///
    /// # Errors
    /// [`CkptError::Io`] if the *previous* deferred write failed (the new
    /// checkpoint is still enqueued) or, in the synchronous fallback, if
    /// this write fails.
    #[allow(clippy::too_many_arguments)]
    pub fn push_from_buffer_async(
        &mut self,
        iteration: usize,
        completed_at: f64,
        level: CheckpointLevel,
        original_bytes: usize,
        delta_order: Option<u8>,
        tag: &str,
        scalars: &[(String, f64)],
        buffer: CheckpointBuffer,
    ) -> (Result<CheckpointMetadata>, CheckpointBuffer) {
        if self.write_behind.is_none() {
            let result = self.push_from_buffer(
                iteration,
                completed_at,
                level,
                original_bytes,
                delta_order,
                tag,
                scalars,
                &buffer,
            );
            return (result, buffer);
        }
        let recycled = self.join_one().unwrap_or_default();
        let deferred_error = self.first_error.take();
        let encoding = self.encoding_for(delta_order);

        let id = self.next_id;
        self.next_id += 1;
        let meta = self.file_meta(
            id,
            iteration,
            completed_at,
            level,
            original_bytes,
            encoding,
            tag,
            scalars,
        );
        let (fin, tmp) = self.paths_for(id);
        let metadata = Self::metadata_for(&meta, &buffer);
        let backend = Arc::clone(&self.backend);
        let retry = self.retry;
        let sent = {
            let wb = self.write_behind.as_mut().expect("write-behind checked above");
            let sent = wb.tx.send(Job {
                tmp,
                fin: fin.clone(),
                meta,
                buffer,
                backend,
                retry,
            });
            if sent.is_ok() {
                wb.in_flight += 1;
            }
            sent
        };
        if sent.is_err() {
            // Nothing was enqueued — register nothing, count nothing.
            return (
                Err(CkptError::Io("checkpoint I/O thread is gone".into())),
                recycled,
            );
        }
        self.register(id, fin, metadata.clone());
        let result = match deferred_error {
            // Surface the *previous* checkpoint's deferred write failure on
            // the first push after it (its entry is already invalidated);
            // the current checkpoint is enqueued and will persist.
            Some(msg) => Err(CkptError::Io(msg)),
            None => Ok(metadata),
        };
        (result, recycled)
    }

    /// The newest *complete* checkpoint: the last link of
    /// [`DiskStore::latest_valid_chain`].  For anchor-only stores this is
    /// the historical single-file behaviour; a delta checkpoint returned
    /// here still needs the rest of its chain to decode, so chain-aware
    /// callers should use [`DiskStore::latest_valid_chain`] directly.
    ///
    /// # Errors
    /// [`CkptError::NoCheckpoint`] if no complete checkpoint exists.
    pub fn latest_valid(&mut self) -> Result<DiskCheckpoint> {
        let mut chain = self.latest_valid_chain()?;
        Ok(chain.pop().expect("a recovered chain is never empty"))
    }

    /// The newest *complete* checkpoint chain, anchor first: joins any
    /// in-flight write, then scans candidates newest-to-oldest.  For each
    /// candidate the base links are followed back to the nearest anchor
    /// and every member file is fully CRC-validated; the first candidate
    /// whose whole chain passes is returned.  A member that fails
    /// validation is marked invalid, which abandons every chain that
    /// depends on it, and the scan restarts — so a bit-flipped or
    /// truncated anchor makes recovery fall back to the newest older
    /// complete chain rather than returning undecodable deltas.
    ///
    /// # Errors
    /// [`CkptError::NoCheckpoint`] if no complete chain exists.
    pub fn latest_valid_chain(&mut self) -> Result<Vec<DiskCheckpoint>> {
        // Serve the memoized scan when nothing changed since: recovery can
        // run hundreds of times per soak and each cold scan re-reads and
        // re-CRCs every chain member.  The cache is dropped on push,
        // eviction, and any entry invalidation, and a cache hit implies no
        // push since the last scan, so no write can be in flight either.
        if let Some(chain) = &self.chain_cache {
            return Ok(chain.clone());
        }
        // Deferred write errors only invalidate their own entry; older
        // checkpoints remain recoverable, so do not surface them here.
        self.join_all();
        self.chain_scans += 1;
        // Each restart invalidates at least one previously valid entry, so
        // the scan terminates.
        'scan: loop {
            for idx in (0..self.entries.len()).rev() {
                if !self.entries[idx].valid {
                    continue;
                }
                let Some(member_idx) = self.chain_indices(idx) else {
                    // A base link is missing or invalid — this candidate
                    // can never decode; try the next-newest.
                    continue;
                };
                let mut links = Vec::with_capacity(member_idx.len());
                for &i in &member_idx {
                    let path = self.entries[i].path.clone();
                    match self.read_with_retry(&path) {
                        Ok(ckpt) => links.push(ckpt),
                        Err(_) => {
                            self.entries[i].valid = false;
                            self.chain_cache = None;
                            continue 'scan;
                        }
                    }
                }
                self.chain_cache = Some(links.clone());
                return Ok(links);
            }
            return Err(CkptError::NoCheckpoint);
        }
    }

    /// Fully reads and validates one checkpoint file through the backend,
    /// retrying *transient* read errors per the store's retry policy.
    /// Validation failures (CRC/format) are deterministic and never
    /// retried.
    fn read_with_retry(&mut self, path: &Path) -> Result<DiskCheckpoint> {
        let retry = self.retry;
        let (bytes, retries, backoff) = retry.run(|| self.backend.read(path));
        self.io_retries += u64::from(retries);
        self.backoff_log.extend_from_slice(&backoff);
        let bytes = bytes.map_err(|e| io_err("reading checkpoint", e))?;
        parse_checkpoint_bytes(&bytes, path)
    }

    /// Reads one *specific* self-contained checkpoint back by id,
    /// CRC-validating it — the per-shard epoch-recovery read: a failed
    /// shard must restore the newest *globally committed* epoch, which is
    /// not necessarily this store's newest file (a later epoch may have
    /// failed its commit barrier on another shard).
    ///
    /// Only anchor checkpoints can be addressed this way; a delta link
    /// needs its chain and must go through
    /// [`DiskStore::latest_valid_chain`].
    ///
    /// # Errors
    /// [`CkptError::NoCheckpoint`] if `id` is unknown or already marked
    /// invalid, [`CkptError::Corrupt`] if it names a delta link, or the
    /// validation error if the file fails its CRC check (the entry is
    /// marked invalid so later scans skip it).
    pub fn read_valid_by_id(&mut self, id: u64) -> Result<DiskCheckpoint> {
        self.join_all();
        let Some(idx) = self.entries.iter().position(|e| e.id == id && e.valid) else {
            return Err(CkptError::NoCheckpoint);
        };
        if self.entries[idx].metadata.encoding.is_delta() {
            return Err(CkptError::Corrupt(format!(
                "checkpoint {id} is a delta link; recover via latest_valid_chain"
            )));
        }
        let path = self.entries[idx].path.clone();
        match self.read_with_retry(&path) {
            Ok(ckpt) => Ok(ckpt),
            Err(e) => {
                self.entries[idx].valid = false;
                self.chain_cache = None;
                Err(e)
            }
        }
    }

    /// Entry indices of the chain ending at `idx`, anchor first, or `None`
    /// if any base link is missing from the index or marked invalid.
    fn chain_indices(&self, idx: usize) -> Option<Vec<usize>> {
        let mut chain = vec![idx];
        let mut cur = idx;
        while let CheckpointEncoding::Delta { base_id, .. } = self.entries[cur].metadata.encoding {
            let base = (0..cur)
                .rev()
                .find(|&i| self.entries[i].id == base_id && self.entries[i].valid)?;
            chain.push(base);
            cur = base;
        }
        chain.reverse();
        Some(chain)
    }

    fn shutdown_worker(wb: WriteBehind) {
        let WriteBehind {
            tx,
            done_rx,
            handle,
            ..
        } = wb;
        drop(tx);
        // Drain any completed jobs so the worker's sends do not block.
        while done_rx.recv().is_ok() {}
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if let Some(wb) = self.write_behind.take() {
            Self::shutdown_worker(wb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lcr-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_buffer() -> CheckpointBuffer {
        let mut buf = CheckpointBuffer::new();
        buf.push_with("x", |out| out.extend_from_slice(&[1u8, 2, 3, 4, 5]));
        buf.push_with("p", |out| out.extend_from_slice(&[9u8; 40]));
        buf.push_with("empty", |_| ());
        buf
    }

    fn push_sample(store: &mut DiskStore, iteration: usize) -> CheckpointMetadata {
        push_sample_delta(store, iteration, None)
    }

    fn push_sample_delta(
        store: &mut DiskStore,
        iteration: usize,
        delta_order: Option<u8>,
    ) -> CheckpointMetadata {
        let buf = sample_buffer();
        store
            .push_from_buffer(
                iteration,
                iteration as f64,
                CheckpointLevel::Pfs,
                800,
                delta_order,
                "traditional",
                &[("rho".to_string(), 0.25), ("beta".to_string(), -3.5)],
                &buf,
            )
            .unwrap()
    }

    fn newest_file(dir: &Path) -> PathBuf {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().map(|e| e == "lcr").unwrap_or(false))
            .collect();
        files.sort();
        files.pop().expect("at least one checkpoint file")
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = tempdir("roundtrip");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        assert!(store.is_empty());
        let meta = push_sample(&mut store, 7);
        assert_eq!(meta.iteration, 7);
        assert_eq!(meta.total_bytes, 45);
        assert_eq!(meta.original_bytes, 800);

        let ckpt = store.latest_valid().unwrap();
        assert_eq!(ckpt.metadata, meta);
        assert_eq!(ckpt.tag, "traditional");
        assert_eq!(
            ckpt.scalars,
            vec![("rho".to_string(), 0.25), ("beta".to_string(), -3.5)]
        );
        assert_eq!(
            ckpt.payloads,
            vec![
                ("x".to_string(), vec![1u8, 2, 3, 4, 5]),
                ("p".to_string(), vec![9u8; 40]),
                ("empty".to_string(), vec![]),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_evicts_stale_files() {
        let dir = tempdir("retention");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        for i in 0..5 {
            push_sample(&mut store, i);
        }
        assert_eq!(store.len(), 2);
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![3, 4]);
        // Only two files remain on disk.
        let n_files = fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_files, 2);
        assert_eq!(store.total_bytes_written, 5 * 45);
        assert_eq!(store.latest_valid().unwrap().metadata.iteration, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_ids_and_recovers() {
        let dir = tempdir("reopen");
        {
            let mut store = DiskStore::open(&dir, 2).unwrap();
            for i in 0..3 {
                push_sample(&mut store, 10 * (i + 1));
            }
        }
        let mut reopened = DiskStore::open(&dir, 2).unwrap();
        assert_eq!(reopened.len(), 2);
        let ckpt = reopened.latest_valid().unwrap();
        assert_eq!(ckpt.metadata.iteration, 30);
        assert_eq!(ckpt.scalars.len(), 2);
        // Ids continue after the highest existing one.
        let meta = push_sample(&mut reopened, 40);
        assert_eq!(meta.id, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_bit_flip_falls_back_to_older_checkpoint() {
        let dir = tempdir("bitflip");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        push_sample(&mut store, 10);
        push_sample(&mut store, 20);
        // Flip one payload bit in the newest file (the last byte is payload
        // because `empty` contributes none and `p` ends the region).
        let path = newest_file(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let mut reopened = DiskStore::open(&dir, 2).unwrap();
        let ckpt = reopened.latest_valid().unwrap();
        assert_eq!(ckpt.metadata.iteration, 10, "must skip the corrupt newest");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_never_selected() {
        let dir = tempdir("truncate");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        push_sample(&mut store, 10);
        push_sample(&mut store, 20);
        let path = newest_file(&dir);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let mut reopened = DiskStore::open(&dir, 2).unwrap();
        assert_eq!(reopened.len(), 1, "truncated file fails header validation");
        assert_eq!(reopened.latest_valid().unwrap().metadata.iteration, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_corruption_is_rejected() {
        let dir = tempdir("header");
        let mut store = DiskStore::open(&dir, 1).unwrap();
        push_sample(&mut store, 10);
        let path = newest_file(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[20] ^= 0x01; // inside the metadata block
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint_file(&path),
            Err(CkptError::Corrupt(_))
        ));
        let mut reopened = DiskStore::open(&dir, 1).unwrap();
        assert!(reopened.latest_valid().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let dir = tempdir("trailing");
        let mut store = DiskStore::open(&dir, 1).unwrap();
        push_sample(&mut store, 10);
        let path = newest_file(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint_file(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_cleaned_on_open() {
        let dir = tempdir("straytmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ckpt-0000000009.lcr.tmp"), b"half a checkpoint").unwrap();
        fs::write(dir.join("unrelated.txt"), b"left alone").unwrap();
        let store = DiskStore::open(&dir, 1).unwrap();
        assert!(store.is_empty());
        assert!(!dir.join("ckpt-0000000009.lcr.tmp").exists());
        assert!(dir.join("unrelated.txt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_behind_overlaps_and_flushes() {
        let dir = tempdir("writebehind");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        store.set_write_behind(true).unwrap();
        assert!(store.write_behind_enabled());

        let mut buffer = CheckpointBuffer::new();
        for i in 0..4usize {
            buffer.clear();
            buffer.push_with("x", |out| out.extend_from_slice(&[i as u8; 100]));
            let (result, recycled) = store.push_from_buffer_async(
                i,
                i as f64,
                CheckpointLevel::Pfs,
                100,
                None,
                "lossy",
                &[],
                buffer,
            );
            result.unwrap();
            buffer = recycled;
        }
        store.flush().unwrap();
        assert_eq!(store.len(), 2);
        let ckpt = store.latest_valid().unwrap();
        assert_eq!(ckpt.metadata.iteration, 3);
        assert_eq!(ckpt.payloads[0].1, vec![3u8; 100]);
        assert_eq!(ckpt.tag, "lossy");

        // Everything is also visible to a fresh store (i.e. on disk).
        store.set_write_behind(false).unwrap();
        let mut reopened = DiskStore::open(&dir, 2).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.latest_valid().unwrap().metadata.iteration, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_joins_outstanding_writes() {
        let dir = tempdir("dropjoin");
        {
            let mut store = DiskStore::open(&dir, 1).unwrap();
            store.set_write_behind(true).unwrap();
            let mut buffer = CheckpointBuffer::new();
            buffer.push_with("x", |out| out.extend_from_slice(&[7u8; 64]));
            let (result, _) = store.push_from_buffer_async(
                1,
                1.0,
                CheckpointLevel::Pfs,
                64,
                None,
                "lossy",
                &[],
                buffer,
            );
            result.unwrap();
            // Dropped with the write possibly still in flight.
        }
        let mut reopened = DiskStore::open(&dir, 1).unwrap();
        assert_eq!(reopened.latest_valid().unwrap().payloads[0].1, vec![7u8; 64]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "retain at least one")]
    fn zero_retention_panics() {
        let _ = DiskStore::open(std::env::temp_dir().join("lcr-disk-zero"), 0);
    }

    #[test]
    fn delta_encoding_roundtrips_through_the_file_format() {
        let dir = tempdir("deltameta");
        let mut store = DiskStore::open(&dir, 4).unwrap();
        push_sample(&mut store, 10);
        push_sample_delta(&mut store, 20, Some(1));
        push_sample_delta(&mut store, 30, Some(2));

        // Both the live index and a fresh open agree on the chain links.
        for mut s in [store, DiskStore::open(&dir, 4).unwrap()] {
            let encodings: Vec<CheckpointEncoding> =
                s.metadata().iter().map(|m| m.encoding).collect();
            assert_eq!(
                encodings,
                vec![
                    CheckpointEncoding::Anchor,
                    CheckpointEncoding::Delta { base_id: 0, order: 1 },
                    CheckpointEncoding::Delta { base_id: 1, order: 2 },
                ]
            );
            let chain = s.latest_valid_chain().unwrap();
            let ids: Vec<u64> = chain.iter().map(|c| c.metadata.id).collect();
            assert_eq!(ids, vec![0, 1, 2], "anchor first, newest last");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_never_orphans_a_delta_whose_anchor_left_the_window() {
        let dir = tempdir("chainretention");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        push_sample(&mut store, 0);
        for i in 1..4 {
            push_sample_delta(&mut store, i, Some(1));
        }
        // The whole chain depends on the anchor, so nothing could be
        // evicted: the window stretched to hold all four files.
        assert_eq!(store.len(), 4, "anchor kept alive by its dependents");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 4);
        let chain = store.latest_valid_chain().unwrap();
        assert_eq!(chain.len(), 4);

        // A new anchor releases the old chain wholesale.
        push_sample(&mut store, 4);
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![4], "old chain evicted as one unit");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(store.latest_valid_chain().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_anchor_invalidates_dependents_and_falls_back() {
        let dir = tempdir("chaincorrupt");
        let mut store = DiskStore::open(&dir, 4).unwrap();
        push_sample(&mut store, 10); // id 0, anchor
        push_sample(&mut store, 20); // id 1, anchor
        push_sample_delta(&mut store, 30, Some(1)); // id 2, delta on 1

        // Flip a payload bit in the *anchor* of the newest chain (id 1).
        let path = dir.join("ckpt-0000000001.lcr");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        // The delta (id 2) is intact but undecodable without its base;
        // recovery must fall back to the older standalone anchor.
        let mut reopened = DiskStore::open(&dir, 4).unwrap();
        let chain = reopened.latest_valid_chain().unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].metadata.iteration, 10, "fell back past the broken chain");
        assert_eq!(reopened.latest_valid().unwrap().metadata.iteration, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_delta_falls_back_to_its_base_chain() {
        let dir = tempdir("chaintruncate");
        let mut store = DiskStore::open(&dir, 4).unwrap();
        push_sample(&mut store, 10); // id 0, anchor
        push_sample_delta(&mut store, 20, Some(1)); // id 1, delta on 0
        let path = dir.join("ckpt-0000000001.lcr");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let mut reopened = DiskStore::open(&dir, 4).unwrap();
        let chain = reopened.latest_valid_chain().unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].metadata.iteration, 10, "anchor alone still recovers");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "empty disk store")]
    fn delta_into_empty_disk_store_panics() {
        let dir = tempdir("deltaempty");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        let _ = push_sample_delta(&mut store, 0, Some(1));
    }

    #[test]
    fn chain_scan_is_memoized_until_the_index_changes() {
        let dir = tempdir("memoize");
        let mut store = DiskStore::open(&dir, 4).unwrap();
        push_sample(&mut store, 10);
        push_sample_delta(&mut store, 20, Some(1));
        assert_eq!(store.chain_scans(), 0);

        // Repeated recoveries hit the cache: exactly one cold scan.
        for _ in 0..3 {
            let chain = store.latest_valid_chain().unwrap();
            assert_eq!(chain.len(), 2);
            assert_eq!(chain.last().unwrap().metadata.iteration, 20);
        }
        assert_eq!(store.latest_valid().unwrap().metadata.iteration, 20);
        assert_eq!(store.chain_scans(), 1, "cache served repeated recoveries");

        // A push invalidates the memo and the next recovery rescans.
        push_sample(&mut store, 30);
        assert_eq!(store.latest_valid().unwrap().metadata.iteration, 30);
        assert_eq!(store.chain_scans(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_read_errors_are_retried_and_counted() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Debug)]
        struct FlakyReads {
            inner: OsBackend,
            fail_next_reads: AtomicUsize,
        }
        impl StorageBackend for FlakyReads {
            fn create_dir_all(&self, d: &Path) -> std::io::Result<()> {
                self.inner.create_dir_all(d)
            }
            fn list_dir(&self, d: &Path) -> std::io::Result<Vec<PathBuf>> {
                self.inner.list_dir(d)
            }
            fn file_len(&self, p: &Path) -> std::io::Result<u64> {
                self.inner.file_len(p)
            }
            fn read_prefix(&self, p: &Path, n: usize) -> std::io::Result<Vec<u8>> {
                self.inner.read_prefix(p, n)
            }
            fn read(&self, p: &Path) -> std::io::Result<Vec<u8>> {
                if self
                    .fail_next_reads
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(std::io::Error::other("injected transient EIO"));
                }
                self.inner.read(p)
            }
            fn write_file(&self, p: &Path, parts: &[&[u8]]) -> std::io::Result<()> {
                self.inner.write_file(p, parts)
            }
            fn fsync(&self, p: &Path) -> std::io::Result<()> {
                self.inner.fsync(p)
            }
            fn rename(&self, a: &Path, b: &Path) -> std::io::Result<()> {
                self.inner.rename(a, b)
            }
            fn fsync_dir(&self, d: &Path) -> std::io::Result<()> {
                self.inner.fsync_dir(d)
            }
            fn remove_file(&self, p: &Path) -> std::io::Result<()> {
                self.inner.remove_file(p)
            }
        }

        let dir = tempdir("flakyread");
        let backend = Arc::new(FlakyReads {
            inner: OsBackend,
            fail_next_reads: AtomicUsize::new(0),
        });
        let mut store = DiskStore::open_with_backend(&dir, 2, backend.clone()).unwrap();
        store.set_retry_policy(RetryPolicy {
            max_retries: 3,
            base_delay_seconds: 0.0,
            multiplier: 2.0,
        });
        push_sample(&mut store, 10);
        backend.fail_next_reads.store(2, Ordering::SeqCst);
        let ckpt = store.latest_valid().unwrap();
        assert_eq!(ckpt.metadata.iteration, 10);
        assert_eq!(store.io_retries(), 2, "both transient read errors retried");
        assert_eq!(store.backoff_log().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_1_files_parse_as_anchors() {
        let dir = tempdir("v1compat");
        let mut store = DiskStore::open(&dir, 2).unwrap();
        let meta = push_sample(&mut store, 10);
        drop(store);

        // Rewrite the file as format version 1: drop the encoding tag byte
        // (offset 49 = 16-byte fixed header + id/iteration/completed-at
        // u64s + level u8 + original-bytes u64), patch the version and
        // metadata length, and recompute the metadata CRC.
        let path = dir.join("ckpt-0000000000.lcr");
        let mut bytes = fs::read(&path).unwrap();
        bytes.remove(49);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let meta_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) - 1;
        bytes[12..16].copy_from_slice(&meta_len.to_le_bytes());
        let crc_at = 16 + meta_len as usize;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).unwrap();

        let ckpt = read_checkpoint_file(&path).unwrap();
        assert_eq!(ckpt.metadata.encoding, CheckpointEncoding::Anchor);
        assert_eq!(ckpt.metadata.iteration, meta.iteration);
        assert_eq!(ckpt.payloads[0].1, vec![1u8, 2, 3, 4, 5]);

        let mut reopened = DiskStore::open(&dir, 2).unwrap();
        assert_eq!(reopened.latest_valid().unwrap().metadata.iteration, 10);
        let _ = fs::remove_dir_all(&dir);
    }
}
