//! Simulated cluster description.
//!
//! The paper's weak-scaling study runs the same per-rank problem size on
//! 256–2,048 processes of the Bebop cluster.  Nothing in the numerics of
//! the reproduction needs real MPI ranks — what matters for the performance
//! results is (a) how much checkpoint data the ranks collectively produce,
//! (b) how fast they can compress it, and (c) how fast the shared file
//! system absorbs it.  [`ClusterConfig`] carries (a)–(b); the PFS model in
//! [`crate::pfs`] carries (c).

use serde::{Deserialize, Serialize};

/// Description of the simulated machine for one experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of MPI ranks (processes) in the simulated run.
    pub ranks: usize,
    /// Aggregate compression throughput in bytes/second across all ranks.
    ///
    /// The paper reports SZ compressing at ≈80 GB/s and decompressing at
    /// ≈180 GB/s on 1,024 cores with ≈90 % parallel efficiency (§5.3), so
    /// the default scales 78 MB/s/core for compression.
    pub compression_throughput_per_rank: f64,
    /// Aggregate decompression throughput in bytes/second per rank.
    pub decompression_throughput_per_rank: f64,
    /// Mean time of one solver iteration on this machine, in seconds.  The
    /// experiment harness either measures this on the host and rescales it
    /// or sets it from the paper's reported values (e.g. GMRES ≈1.2 s per
    /// iteration at 2,048 ranks).
    pub iteration_seconds: f64,
}

impl ClusterConfig {
    /// A Bebop-like configuration with the given rank count and
    /// per-iteration cost.
    pub fn bebop_like(ranks: usize, iteration_seconds: f64) -> Self {
        ClusterConfig {
            ranks,
            compression_throughput_per_rank: 78.0e6,
            decompression_throughput_per_rank: 176.0e6,
            iteration_seconds,
        }
    }

    /// Seconds to compress `bytes` of checkpoint data in parallel across
    /// all ranks (the paper: ≈0.5 s for 78.8 GB at 2,048 ranks).
    pub fn compression_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / (self.compression_throughput_per_rank * self.ranks.max(1) as f64)
    }

    /// Seconds to decompress `bytes` of checkpoint data in parallel (the
    /// paper: ≈0.2 s for 78.8 GB at 2,048 ranks).
    pub fn decompression_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / (self.decompression_throughput_per_rank * self.ranks.max(1) as f64)
    }

    /// Seconds of computation for `iterations` solver iterations.
    pub fn compute_seconds(&self, iterations: usize) -> f64 {
        self.iteration_seconds * iterations as f64
    }

    /// Per-rank share of `total_bytes`, rounded up (the per-process
    /// checkpoint sizes of Table 3).
    pub fn per_rank_bytes(&self, total_bytes: usize) -> usize {
        total_bytes.div_ceil(self.ranks.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_time_matches_paper_order() {
        // 78.8 GB at 2,048 ranks: ≈0.5 s compression, ≈0.2 s decompression.
        let c = ClusterConfig::bebop_like(2048, 1.2);
        let comp = c.compression_seconds(78_800_000_000);
        let decomp = c.decompression_seconds(78_800_000_000);
        assert!(comp > 0.3 && comp < 0.8, "compression {comp}");
        assert!(decomp > 0.1 && decomp < 0.4, "decompression {decomp}");
    }

    #[test]
    fn compute_time_scales_with_iterations() {
        let c = ClusterConfig::bebop_like(1024, 0.5);
        assert_eq!(c.compute_seconds(10), 5.0);
        assert_eq!(c.compute_seconds(0), 0.0);
    }

    #[test]
    fn per_rank_bytes_rounds_up() {
        let c = ClusterConfig::bebop_like(256, 1.0);
        assert_eq!(c.per_rank_bytes(256_000), 1000);
        assert_eq!(c.per_rank_bytes(256_001), 1001);
        let single = ClusterConfig::bebop_like(1, 1.0);
        assert_eq!(single.per_rank_bytes(5), 5);
    }

    #[test]
    fn more_ranks_compress_faster() {
        let small = ClusterConfig::bebop_like(256, 1.0);
        let large = ClusterConfig::bebop_like(2048, 1.0);
        let bytes = 10_000_000_000;
        assert!(large.compression_seconds(bytes) < small.compression_seconds(bytes));
    }
}
