//! Multi-level checkpoint planning (FTI-style L1–L4).
//!
//! The FTI library the paper builds on supports four checkpoint levels —
//! node-local, partner copy, Reed–Solomon, and the parallel file system —
//! and prior work by Di et al. (cited in §2) optimises the interval of
//! each level against the failure classes it protects from.  The paper's
//! evaluation writes all checkpoints to the PFS (the only level that
//! survives whole-system failures), but the planner here exposes the full
//! multi-level mechanism so the lossy scheme can be combined with cheaper
//! intermediate levels.
//!
//! The planner takes, per level, (a) the cost of one checkpoint at that
//! level and (b) the rate of the failures that this level can recover
//! from, and derives each level's optimal interval with Young's formula.
//! Levels are then scheduled hierarchically: a deeper (more durable,
//! more expensive) level replaces a cheaper one whenever both are due.

use crate::pfs::CheckpointLevel;
use serde::{Deserialize, Serialize};

/// Per-level configuration for the planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelConfig {
    /// Which storage level this entry describes.
    pub level: CheckpointLevel,
    /// Mean cost of one checkpoint at this level, in seconds.
    pub checkpoint_seconds: f64,
    /// Rate (per second) of the failure class this level protects against
    /// (e.g. single-process crashes for L1, whole-system outages for L4).
    pub failure_rate: f64,
}

/// A multi-level checkpoint schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLevelPlan {
    /// Levels ordered from cheapest/most-frequent to most durable.
    levels: Vec<LevelConfig>,
    /// Optimal interval of each level, in seconds.
    intervals: Vec<f64>,
}

impl MultiLevelPlan {
    /// Builds a plan from per-level costs and failure rates.
    ///
    /// # Panics
    /// Panics if `levels` is empty, or if any cost/rate is negative or
    /// non-finite.
    pub fn new(mut levels: Vec<LevelConfig>) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        for l in &levels {
            assert!(
                l.checkpoint_seconds.is_finite() && l.checkpoint_seconds >= 0.0,
                "invalid checkpoint cost"
            );
            assert!(
                l.failure_rate.is_finite() && l.failure_rate >= 0.0,
                "invalid failure rate"
            );
        }
        // Cheapest level first.
        levels.sort_by(|a, b| {
            a.checkpoint_seconds
                .partial_cmp(&b.checkpoint_seconds)
                .expect("finite costs")
        });
        let intervals = levels
            .iter()
            .map(|l| {
                if l.failure_rate <= 0.0 {
                    f64::INFINITY
                } else {
                    (2.0 * l.checkpoint_seconds / l.failure_rate).sqrt()
                }
            })
            .collect();
        MultiLevelPlan { levels, intervals }
    }

    /// The FTI-like default: L1 local and L4 PFS, with local failures ten
    /// times as frequent as system-wide ones.
    pub fn fti_default(local_ckpt_seconds: f64, pfs_ckpt_seconds: f64, mtti_seconds: f64) -> Self {
        Self::new(vec![
            LevelConfig {
                level: CheckpointLevel::Local,
                checkpoint_seconds: local_ckpt_seconds,
                failure_rate: 10.0 / mtti_seconds,
            },
            LevelConfig {
                level: CheckpointLevel::Pfs,
                checkpoint_seconds: pfs_ckpt_seconds,
                failure_rate: 1.0 / mtti_seconds,
            },
        ])
    }

    /// The levels in scheduling order (cheapest first).
    pub fn levels(&self) -> &[LevelConfig] {
        &self.levels
    }

    /// The optimal interval (seconds) of each level, aligned with
    /// [`MultiLevelPlan::levels`].
    pub fn intervals(&self) -> &[f64] {
        &self.intervals
    }

    /// Which level is due at simulated time `now`, given the time of the
    /// last checkpoint taken at each level (aligned with `levels()`).
    /// Returns the *deepest* level that is due, or `None` if none is.
    pub fn level_due(&self, now: f64, last_taken: &[f64]) -> Option<CheckpointLevel> {
        assert_eq!(
            last_taken.len(),
            self.levels.len(),
            "last_taken must have one entry per level"
        );
        let mut due = None;
        for (i, level) in self.levels.iter().enumerate() {
            if self.intervals[i].is_finite() && now - last_taken[i] >= self.intervals[i] {
                due = Some(level.level);
            }
        }
        due
    }

    /// Expected steady-state checkpointing overhead per second of execution
    /// (the sum over levels of cost / interval).
    pub fn steady_state_overhead(&self) -> f64 {
        self.levels
            .iter()
            .zip(self.intervals.iter())
            .map(|(l, &interval)| {
                if interval.is_finite() && interval > 0.0 {
                    l.checkpoint_seconds / interval
                } else {
                    0.0
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_follow_youngs_formula() {
        let plan = MultiLevelPlan::fti_default(5.0, 120.0, 3600.0);
        assert_eq!(plan.levels().len(), 2);
        // Local: sqrt(2*5/(10/3600)) = 60 s; PFS: sqrt(2*120*3600) ≈ 929 s.
        assert!((plan.intervals()[0] - 60.0).abs() < 1.0);
        assert!((plan.intervals()[1] - (2.0f64 * 120.0 * 3600.0).sqrt()).abs() < 1.0);
        // The cheaper level checkpoints more often.
        assert!(plan.intervals()[0] < plan.intervals()[1]);
    }

    #[test]
    fn deepest_due_level_wins() {
        let plan = MultiLevelPlan::fti_default(5.0, 120.0, 3600.0);
        let l_interval = plan.intervals()[0];
        let p_interval = plan.intervals()[1];
        // Nothing due right after both checkpoints.
        assert_eq!(plan.level_due(10.0, &[10.0, 10.0]), None);
        // Only the local level due.
        assert_eq!(
            plan.level_due(l_interval + 1.0, &[0.0, 0.0]),
            Some(CheckpointLevel::Local)
        );
        // Both due → the PFS level is chosen.
        assert_eq!(
            plan.level_due(p_interval + 1.0, &[0.0, 0.0]),
            Some(CheckpointLevel::Pfs)
        );
    }

    #[test]
    fn zero_failure_rate_disables_a_level() {
        let plan = MultiLevelPlan::new(vec![LevelConfig {
            level: CheckpointLevel::Local,
            checkpoint_seconds: 5.0,
            failure_rate: 0.0,
        }]);
        assert!(plan.intervals()[0].is_infinite());
        assert_eq!(plan.level_due(1e12, &[0.0]), None);
        assert_eq!(plan.steady_state_overhead(), 0.0);
    }

    #[test]
    fn steady_state_overhead_decreases_with_cheaper_checkpoints() {
        let expensive = MultiLevelPlan::fti_default(5.0, 120.0, 3600.0).steady_state_overhead();
        let cheap = MultiLevelPlan::fti_default(5.0, 25.0, 3600.0).steady_state_overhead();
        assert!(cheap < expensive);
        assert!(cheap > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_plan_panics() {
        let _ = MultiLevelPlan::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "one entry per level")]
    fn mismatched_last_taken_panics() {
        let plan = MultiLevelPlan::fti_default(5.0, 120.0, 3600.0);
        let _ = plan.level_due(0.0, &[0.0]);
    }
}
