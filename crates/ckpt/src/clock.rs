//! Simulated wall clock.
//!
//! All performance accounting in the reproduction flows through this clock:
//! solver iterations advance it by a modelled per-iteration cost, checkpoint
//! and recovery I/O advance it by the PFS model's predictions, and the
//! failure injector compares its event times against it.  Using simulated
//! time is what lets a 2,048-rank study with hour-scale MTTIs run in
//! seconds on one node while keeping the *relative* overheads faithful.

use serde::{Deserialize, Serialize};

/// A simulated wall clock measured in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: 0.0 }
    }

    /// Creates a clock starting at `start` seconds.
    ///
    /// # Panics
    /// Panics if `start` is negative or not finite.
    pub fn starting_at(start: f64) -> Self {
        assert!(start.is_finite() && start >= 0.0, "invalid start time");
        SimClock { now: start }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `seconds`.
    ///
    /// # Panics
    /// Panics if `seconds` is negative or not finite (a negative advance is
    /// always a logic error in the harness).
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "cannot advance clock by {seconds}"
        );
        self.now += seconds;
    }

    /// Advances the clock to an absolute time, which must not be in the
    /// past.
    ///
    /// # Panics
    /// Panics if `time < now`.
    pub fn advance_to(&mut self, time: f64) {
        assert!(
            time >= self.now,
            "cannot move clock backwards from {} to {}",
            self.now,
            time
        );
        self.now = time;
    }

    /// Elapsed seconds since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is in the future.
    pub fn elapsed_since(&self, earlier: f64) -> f64 {
        assert!(earlier <= self.now, "reference time is in the future");
        self.now - earlier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(2.5);
        assert_eq!(c.now(), 4.0);
        assert_eq!(c.elapsed_since(1.5), 2.5);
    }

    #[test]
    fn advance_to_absolute() {
        let mut c = SimClock::starting_at(10.0);
        c.advance_to(12.0);
        assert_eq!(c.now(), 12.0);
        c.advance_to(12.0);
        assert_eq!(c.now(), 12.0);
    }

    #[test]
    #[should_panic(expected = "cannot advance clock")]
    fn negative_advance_panics() {
        let mut c = SimClock::new();
        c.advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn backwards_advance_to_panics() {
        let mut c = SimClock::starting_at(5.0);
        c.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "invalid start time")]
    fn invalid_start_panics() {
        let _ = SimClock::starting_at(f64::NAN);
    }
}
