//! Checkpoint storage and metadata.
//!
//! Stores the encoded checkpoint payloads (already compressed or raw —
//! encoding is the business of the checkpoint *strategy* in `lcr-core`)
//! together with the metadata the experiment harness reports: per-variable
//! sizes, total bytes, the simulated time the write finished, and which
//! storage level holds it.  Only the most recent `retain` checkpoints are
//! kept, mirroring FTI's behaviour of discarding superseded checkpoints.
//!
//! ## Delta chains
//!
//! A checkpoint may be stored as a **temporal delta** against the
//! checkpoint pushed immediately before it ([`CheckpointEncoding::Delta`]);
//! such a checkpoint only decodes together with its whole chain back to
//! the nearest self-contained **anchor**.  The store honours the chain
//! invariant everywhere: retention never evicts an anchor (or intermediate
//! delta) that a retained delta still depends on — it evicts whole chains
//! from the front instead, temporarily stretching the window — and
//! [`CheckpointStore::latest_chain`] returns the full decode chain for the
//! newest checkpoint.

use crate::pfs::CheckpointLevel;
use crate::{CkptError, Result};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How one checkpoint's payload streams are encoded relative to earlier
/// checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CheckpointEncoding {
    /// Self-contained anchor: decodes on its own.
    #[default]
    Anchor,
    /// Temporal delta against an earlier checkpoint's streams: decodes
    /// only by replaying the chain from the nearest anchor.
    Delta {
        /// Id of the checkpoint this delta is coded against (always the
        /// checkpoint pushed immediately before this one).
        base_id: u64,
        /// Temporal delta order (1 or 2).
        order: u8,
    },
}

impl CheckpointEncoding {
    /// True for delta-encoded checkpoints.
    pub fn is_delta(&self) -> bool {
        matches!(self, CheckpointEncoding::Delta { .. })
    }

    /// The base checkpoint id a delta depends on (`None` for anchors).
    pub fn base_id(&self) -> Option<u64> {
        match *self {
            CheckpointEncoding::Anchor => None,
            CheckpointEncoding::Delta { base_id, .. } => Some(base_id),
        }
    }
}

/// Metadata describing one stored checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMetadata {
    /// Monotonically increasing checkpoint id.
    pub id: u64,
    /// Solver iteration at which the checkpoint was taken.
    pub iteration: usize,
    /// Simulated time at which the checkpoint write completed.
    pub completed_at: f64,
    /// Storage level holding the checkpoint.
    pub level: CheckpointLevel,
    /// Total encoded bytes across all variables.
    pub total_bytes: usize,
    /// Original (uncompressed) bytes across all variables.
    pub original_bytes: usize,
    /// Anchor-vs-delta encoding of the payload streams.
    pub encoding: CheckpointEncoding,
    /// Per-variable encoded sizes.
    pub variable_bytes: Vec<(String, usize)>,
}

impl CheckpointMetadata {
    /// Compression ratio achieved by the encoding (1.0 when stored raw).
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            return 1.0;
        }
        self.original_bytes as f64 / self.total_bytes as f64
    }
}

/// One stored checkpoint: metadata plus the encoded payload per variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCheckpoint {
    /// Descriptive metadata.
    pub metadata: CheckpointMetadata,
    /// Encoded payload per protected variable id.
    pub payloads: Vec<(String, Vec<u8>)>,
}

impl StoredCheckpoint {
    /// Returns the payload for a variable id.
    ///
    /// # Errors
    /// Returns [`CkptError::UnknownVariable`] if the id is absent.
    pub fn payload(&self, id: &str) -> Result<&[u8]> {
        self.payloads
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, bytes)| bytes.as_slice())
            .ok_or_else(|| CkptError::UnknownVariable(id.to_string()))
    }
}

/// A reusable arena for building one checkpoint's encoded payloads:
/// every variable's bytes are appended to one growing buffer and
/// addressed by range, so compressors write straight into the arena via
/// their `compress_into` entry points with no intermediate per-variable
/// `Vec<u8>`s.  The experiment runner keeps a single `CheckpointBuffer`
/// alive across checkpoints, so after the first snapshot the *encode*
/// side writes into already-sized memory; storing a snapshot
/// ([`CheckpointStore::push_from_buffer`]) still copies each payload once
/// out of the arena into the owned form the store retains.
#[derive(Debug, Clone, Default)]
pub struct CheckpointBuffer {
    bytes: Vec<u8>,
    /// `(variable id, end offset)`; the segment starts at the previous end.
    segments: Vec<(String, usize)>,
}

impl CheckpointBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards all payloads, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.segments.clear();
    }

    /// Appends one variable's payload: `write` receives the underlying byte
    /// buffer positioned at the segment start and appends the encoded
    /// bytes; whatever it appended becomes the payload of `id`.  Returns
    /// `write`'s result so fallible encoders compose with `?`.
    pub fn push_with<R>(&mut self, id: &str, write: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        let result = write(&mut self.bytes);
        self.segments.push((id.to_string(), self.bytes.len()));
        result
    }

    /// Number of variables recorded.
    pub fn n_variables(&self) -> usize {
        self.segments.len()
    }

    /// Whether no variable has been recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total payload bytes across all variables.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw arena: every payload concatenated in insertion order — the
    /// exact byte image the disk tier streams into a checkpoint file after
    /// its segment table.
    pub fn arena_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Iterates over `(variable id, payload bytes)` in insertion order.
    pub fn segments(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.segments.iter().enumerate().map(|(i, (id, end))| {
            let start = if i == 0 { 0 } else { self.segments[i - 1].1 };
            (id.as_str(), &self.bytes[start..*end])
        })
    }

    /// Copies the payloads out into owned per-variable vectors (the form
    /// [`StoredCheckpoint`] retains).
    pub fn to_payloads(&self) -> Vec<(String, Vec<u8>)> {
        self.segments()
            .map(|(id, bytes)| (id.to_string(), bytes.to_vec()))
            .collect()
    }
}

/// In-memory checkpoint store retaining the most recent checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    retain: usize,
    next_id: u64,
    checkpoints: VecDeque<StoredCheckpoint>,
    /// Cumulative number of bytes ever written (for I/O-volume reporting).
    pub total_bytes_written: u64,
}

impl CheckpointStore {
    /// Creates a store keeping the `retain` most recent checkpoints.
    ///
    /// # Panics
    /// Panics if `retain` is zero.
    pub fn new(retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one checkpoint");
        CheckpointStore {
            retain,
            next_id: 0,
            checkpoints: VecDeque::new(),
            total_bytes_written: 0,
        }
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Stores a new checkpoint, evicting whole chains from the front if
    /// over the retention limit, and returns its metadata.
    ///
    /// `delta_order` is `None` for a self-contained anchor; `Some(order)`
    /// marks the payloads as temporal deltas against the checkpoint
    /// pushed immediately before this one (whose id becomes the
    /// [`CheckpointEncoding::Delta`] base).
    ///
    /// # Panics
    /// Panics if `delta_order` is set while the store is empty — a delta
    /// without its base is undecodable, so pushing one is a caller bug.
    pub fn push(
        &mut self,
        iteration: usize,
        completed_at: f64,
        level: CheckpointLevel,
        original_bytes: usize,
        delta_order: Option<u8>,
        payloads: Vec<(String, Vec<u8>)>,
    ) -> CheckpointMetadata {
        let encoding = match delta_order {
            None => CheckpointEncoding::Anchor,
            Some(order) => {
                let base = self
                    .checkpoints
                    .back()
                    .expect("delta checkpoint pushed into an empty store");
                CheckpointEncoding::Delta {
                    base_id: base.metadata.id,
                    order,
                }
            }
        };
        let variable_bytes: Vec<(String, usize)> = payloads
            .iter()
            .map(|(name, bytes)| (name.clone(), bytes.len()))
            .collect();
        let total_bytes: usize = variable_bytes.iter().map(|(_, b)| *b).sum();
        let metadata = CheckpointMetadata {
            id: self.next_id,
            iteration,
            completed_at,
            level,
            total_bytes,
            original_bytes,
            encoding,
            variable_bytes,
        };
        self.next_id += 1;
        self.total_bytes_written += total_bytes as u64;
        self.checkpoints.push_back(StoredCheckpoint {
            metadata: metadata.clone(),
            payloads,
        });
        self.evict_over_retention();
        metadata
    }

    /// Chain-aware retention: evicts the oldest retained *chain* (an
    /// anchor plus every delta transitively based on it) wholesale while
    /// more than `retain` checkpoints are held — never a base that a
    /// retained delta still depends on.  With a live chain longer than
    /// the window, the window stretches until the chain is superseded.
    fn evict_over_retention(&mut self) {
        while self.checkpoints.len() > self.retain {
            let chain_len = self.front_chain_len();
            if chain_len >= self.checkpoints.len() {
                break;
            }
            for _ in 0..chain_len {
                self.checkpoints.pop_front();
            }
        }
    }

    /// Length of the dependency chain at the front of the store: the
    /// oldest checkpoint plus every following checkpoint that (directly
    /// or transitively) delta-depends on it.
    fn front_chain_len(&self) -> usize {
        let mut len = 1;
        while len < self.checkpoints.len() {
            let prev_id = self.checkpoints[len - 1].metadata.id;
            match self.checkpoints[len].metadata.encoding {
                CheckpointEncoding::Delta { base_id, .. } if base_id == prev_id => len += 1,
                _ => break,
            }
        }
        len
    }

    /// Stores a new checkpoint from a [`CheckpointBuffer`], copying each
    /// payload exactly once out of the arena (the buffer itself stays
    /// untouched and reusable).
    pub fn push_from_buffer(
        &mut self,
        iteration: usize,
        completed_at: f64,
        level: CheckpointLevel,
        original_bytes: usize,
        delta_order: Option<u8>,
        buffer: &CheckpointBuffer,
    ) -> CheckpointMetadata {
        self.push(
            iteration,
            completed_at,
            level,
            original_bytes,
            delta_order,
            buffer.to_payloads(),
        )
    }

    /// The most recent checkpoint.
    ///
    /// # Errors
    /// Returns [`CkptError::NoCheckpoint`] if none has been stored yet.
    pub fn latest(&self) -> Result<&StoredCheckpoint> {
        self.checkpoints.back().ok_or(CkptError::NoCheckpoint)
    }

    /// The full decode chain of the most recent checkpoint: its anchor
    /// first, then each dependent delta in order, ending at the newest
    /// checkpoint.  For an anchor checkpoint the chain has length one.
    ///
    /// # Errors
    /// Returns [`CkptError::NoCheckpoint`] if the store is empty, and
    /// [`CkptError::Corrupt`] if the newest checkpoint's chain walks off
    /// the retained window (a retention-invariant violation).
    pub fn latest_chain(&self) -> Result<Vec<&StoredCheckpoint>> {
        if self.checkpoints.is_empty() {
            return Err(CkptError::NoCheckpoint);
        }
        let mut chain: Vec<&StoredCheckpoint> = Vec::new();
        let mut idx = self.checkpoints.len() - 1;
        loop {
            let ckpt = &self.checkpoints[idx];
            chain.push(ckpt);
            match ckpt.metadata.encoding {
                CheckpointEncoding::Anchor => break,
                CheckpointEncoding::Delta { base_id, .. } => {
                    if idx == 0 || self.checkpoints[idx - 1].metadata.id != base_id {
                        return Err(CkptError::Corrupt(format!(
                            "delta checkpoint {} depends on evicted base {base_id}",
                            ckpt.metadata.id
                        )));
                    }
                    idx -= 1;
                }
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// Metadata of every retained checkpoint, oldest first.
    pub fn metadata(&self) -> Vec<&CheckpointMetadata> {
        self.checkpoints.iter().map(|c| &c.metadata).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(name: &str, len: usize) -> (String, Vec<u8>) {
        (name.to_string(), vec![0xAB; len])
    }

    #[test]
    fn push_and_latest() {
        let mut store = CheckpointStore::new(2);
        assert!(store.is_empty());
        assert_eq!(store.latest().unwrap_err(), CkptError::NoCheckpoint);

        let meta = store.push(
            10,
            123.0,
            CheckpointLevel::Pfs,
            800,
            None,
            vec![payload("x", 100), payload("p", 60)],
        );
        assert_eq!(meta.id, 0);
        assert_eq!(meta.total_bytes, 160);
        assert_eq!(meta.original_bytes, 800);
        assert!((meta.compression_ratio() - 5.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);

        let latest = store.latest().unwrap();
        assert_eq!(latest.metadata.iteration, 10);
        assert_eq!(latest.payload("x").unwrap().len(), 100);
        assert!(matches!(
            latest.payload("nope"),
            Err(CkptError::UnknownVariable(_))
        ));
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut store = CheckpointStore::new(2);
        for i in 0..5 {
            store.push(
                i,
                i as f64,
                CheckpointLevel::Pfs,
                10,
                None,
                vec![payload("x", 10)],
            );
        }
        assert_eq!(store.len(), 2);
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(store.latest().unwrap().metadata.iteration, 4);
        assert_eq!(store.total_bytes_written, 50);
    }

    #[test]
    fn chain_retention_never_orphans_a_delta() {
        // Chain [A0, d1, d2, d3] under retain=2: the window stretches to
        // hold the whole chain because evicting A0 (or d1, d2) would
        // orphan the retained tail.
        let mut store = CheckpointStore::new(2);
        store.push(0, 0.0, CheckpointLevel::Pfs, 10, None, vec![payload("x", 10)]);
        for i in 1..4 {
            store.push(
                i,
                i as f64,
                CheckpointLevel::Pfs,
                10,
                Some(1),
                vec![payload("x", 4)],
            );
        }
        assert_eq!(store.len(), 4, "live chain must stretch the window");
        let chain = store.latest_chain().unwrap();
        let ids: Vec<u64> = chain.iter().map(|c| c.metadata.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(chain[0].metadata.encoding, CheckpointEncoding::Anchor);
        assert_eq!(
            chain[3].metadata.encoding,
            CheckpointEncoding::Delta { base_id: 2, order: 1 }
        );

        // A new anchor supersedes the chain: the whole old chain is
        // evicted at once (retain=2 keeps [d3-old-tail?…] — no: the old
        // chain of 4 leaves with the next eviction pass).
        store.push(4, 4.0, CheckpointLevel::Pfs, 10, None, vec![payload("x", 10)]);
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![4], "superseded chain evicts wholesale");
        assert_eq!(store.latest_chain().unwrap().len(), 1);
    }

    #[test]
    fn chain_retention_evicts_anchor_only_prefixes_normally() {
        // Anchors only: behaves exactly like the classic window.
        let mut store = CheckpointStore::new(3);
        for i in 0..5 {
            store.push(
                i,
                i as f64,
                CheckpointLevel::Pfs,
                10,
                None,
                vec![payload("x", 10)],
            );
        }
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);

        // Two chains [A5, d6] [A7, d8]: eviction drops the oldest whole
        // chain, never splitting one — pushing d8 overflows the window
        // while [A5, d6] sits at the front, so both leave together.
        store.push(5, 5.0, CheckpointLevel::Pfs, 10, None, vec![payload("x", 10)]);
        store.push(6, 6.0, CheckpointLevel::Pfs, 10, Some(1), vec![payload("x", 4)]);
        store.push(7, 7.0, CheckpointLevel::Pfs, 10, None, vec![payload("x", 10)]);
        store.push(8, 8.0, CheckpointLevel::Pfs, 10, Some(2), vec![payload("x", 4)]);
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![7, 8], "oldest chain evicted wholesale");
        let chain = store.latest_chain().unwrap();
        let chain_ids: Vec<u64> = chain.iter().map(|c| c.metadata.id).collect();
        assert_eq!(chain_ids, vec![7, 8]);
        assert_eq!(
            chain[1].metadata.encoding,
            CheckpointEncoding::Delta { base_id: 7, order: 2 }
        );
    }

    #[test]
    #[should_panic(expected = "delta checkpoint pushed into an empty store")]
    fn delta_into_empty_store_panics() {
        let mut store = CheckpointStore::new(2);
        store.push(0, 0.0, CheckpointLevel::Pfs, 10, Some(1), vec![payload("x", 4)]);
    }

    #[test]
    fn retain_one_churn_keeps_only_newest_and_accounts_every_byte() {
        // The tightest retention setting under sustained churn: after every
        // push exactly one checkpoint survives, ids keep increasing, and
        // total_bytes_written reflects every byte ever pushed (eviction
        // must not rewind the I/O-volume counter).
        let mut store = CheckpointStore::new(1);
        let mut expected_written = 0u64;
        for i in 0..100usize {
            let len = 1 + (i % 7);
            expected_written += len as u64;
            let meta = store.push(
                i,
                i as f64,
                CheckpointLevel::Local,
                len * 10,
                None,
                vec![payload("x", len)],
            );
            assert_eq!(meta.id, i as u64);
            assert_eq!(store.len(), 1);
            assert_eq!(store.latest().unwrap().metadata.iteration, i);
            assert_eq!(store.total_bytes_written, expected_written);
        }
    }

    #[test]
    fn push_from_buffer_accounts_bytes_like_push() {
        let mut buf = CheckpointBuffer::new();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[1u8; 30]));
        buf.push_with("p", |bytes| bytes.extend_from_slice(&[2u8; 12]));
        let mut store = CheckpointStore::new(2);
        store.push_from_buffer(0, 0.0, CheckpointLevel::Pfs, 100, None, &buf);
        store.push_from_buffer(1, 1.0, CheckpointLevel::Pfs, 100, None, &buf);
        store.push_from_buffer(2, 2.0, CheckpointLevel::Pfs, 100, None, &buf);
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes_written, 3 * 42);
        assert_eq!(buf.arena_bytes().len(), 42);
    }

    #[test]
    fn empty_payload_ratio_is_one() {
        let mut store = CheckpointStore::new(1);
        let meta = store.push(0, 0.0, CheckpointLevel::Local, 0, None, vec![]);
        assert_eq!(meta.compression_ratio(), 1.0);
        assert_eq!(meta.total_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "retain at least one")]
    fn zero_retention_panics() {
        let _ = CheckpointStore::new(0);
    }

    #[test]
    fn checkpoint_buffer_segments() {
        let mut buf = CheckpointBuffer::new();
        assert!(buf.is_empty());
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[1, 2, 3]));
        let res: std::result::Result<(), ()> = buf.push_with("p", |bytes| {
            bytes.extend_from_slice(&[4, 5]);
            Ok(())
        });
        res.unwrap();
        // An empty payload is a valid (zero-length) segment.
        buf.push_with("i", |_| ());

        assert_eq!(buf.n_variables(), 3);
        assert_eq!(buf.total_bytes(), 5);
        let segs: Vec<(String, Vec<u8>)> = buf
            .segments()
            .map(|(id, b)| (id.to_string(), b.to_vec()))
            .collect();
        assert_eq!(
            segs,
            vec![
                ("x".to_string(), vec![1, 2, 3]),
                ("p".to_string(), vec![4, 5]),
                ("i".to_string(), vec![]),
            ]
        );
        assert_eq!(buf.to_payloads(), segs);

        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.total_bytes(), 0);
    }

    #[test]
    fn push_from_buffer_matches_push() {
        let mut buf = CheckpointBuffer::new();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[0xAB; 100]));
        buf.push_with("p", |bytes| bytes.extend_from_slice(&[0xAB; 60]));

        let mut store_a = CheckpointStore::new(2);
        let meta_a = store_a.push_from_buffer(10, 123.0, CheckpointLevel::Pfs, 800, None, &buf);
        let mut store_b = CheckpointStore::new(2);
        let meta_b = store_b.push(
            10,
            123.0,
            CheckpointLevel::Pfs,
            800,
            None,
            vec![payload("x", 100), payload("p", 60)],
        );
        assert_eq!(meta_a, meta_b);
        assert_eq!(
            store_a.latest().unwrap().payloads,
            store_b.latest().unwrap().payloads
        );
    }
}
