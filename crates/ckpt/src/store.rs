//! Checkpoint storage and metadata.
//!
//! Stores the encoded checkpoint payloads (already compressed or raw —
//! encoding is the business of the checkpoint *strategy* in `lcr-core`)
//! together with the metadata the experiment harness reports: per-variable
//! sizes, total bytes, the simulated time the write finished, and which
//! storage level holds it.  Only the most recent `retain` checkpoints are
//! kept, mirroring FTI's behaviour of discarding superseded checkpoints.

use crate::pfs::CheckpointLevel;
use crate::{CkptError, Result};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Metadata describing one stored checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMetadata {
    /// Monotonically increasing checkpoint id.
    pub id: u64,
    /// Solver iteration at which the checkpoint was taken.
    pub iteration: usize,
    /// Simulated time at which the checkpoint write completed.
    pub completed_at: f64,
    /// Storage level holding the checkpoint.
    pub level: CheckpointLevel,
    /// Total encoded bytes across all variables.
    pub total_bytes: usize,
    /// Original (uncompressed) bytes across all variables.
    pub original_bytes: usize,
    /// Per-variable encoded sizes.
    pub variable_bytes: Vec<(String, usize)>,
}

impl CheckpointMetadata {
    /// Compression ratio achieved by the encoding (1.0 when stored raw).
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            return 1.0;
        }
        self.original_bytes as f64 / self.total_bytes as f64
    }
}

/// One stored checkpoint: metadata plus the encoded payload per variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCheckpoint {
    /// Descriptive metadata.
    pub metadata: CheckpointMetadata,
    /// Encoded payload per protected variable id.
    pub payloads: Vec<(String, Vec<u8>)>,
}

impl StoredCheckpoint {
    /// Returns the payload for a variable id.
    ///
    /// # Errors
    /// Returns [`CkptError::UnknownVariable`] if the id is absent.
    pub fn payload(&self, id: &str) -> Result<&[u8]> {
        self.payloads
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, bytes)| bytes.as_slice())
            .ok_or_else(|| CkptError::UnknownVariable(id.to_string()))
    }
}

/// In-memory checkpoint store retaining the most recent checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    retain: usize,
    next_id: u64,
    checkpoints: VecDeque<StoredCheckpoint>,
    /// Cumulative number of bytes ever written (for I/O-volume reporting).
    pub total_bytes_written: u64,
}

impl CheckpointStore {
    /// Creates a store keeping the `retain` most recent checkpoints.
    ///
    /// # Panics
    /// Panics if `retain` is zero.
    pub fn new(retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one checkpoint");
        CheckpointStore {
            retain,
            next_id: 0,
            checkpoints: VecDeque::new(),
            total_bytes_written: 0,
        }
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Stores a new checkpoint, evicting the oldest if over the retention
    /// limit, and returns its metadata.
    pub fn push(
        &mut self,
        iteration: usize,
        completed_at: f64,
        level: CheckpointLevel,
        original_bytes: usize,
        payloads: Vec<(String, Vec<u8>)>,
    ) -> CheckpointMetadata {
        let variable_bytes: Vec<(String, usize)> = payloads
            .iter()
            .map(|(name, bytes)| (name.clone(), bytes.len()))
            .collect();
        let total_bytes: usize = variable_bytes.iter().map(|(_, b)| *b).sum();
        let metadata = CheckpointMetadata {
            id: self.next_id,
            iteration,
            completed_at,
            level,
            total_bytes,
            original_bytes,
            variable_bytes,
        };
        self.next_id += 1;
        self.total_bytes_written += total_bytes as u64;
        self.checkpoints.push_back(StoredCheckpoint {
            metadata: metadata.clone(),
            payloads,
        });
        while self.checkpoints.len() > self.retain {
            self.checkpoints.pop_front();
        }
        metadata
    }

    /// The most recent checkpoint.
    ///
    /// # Errors
    /// Returns [`CkptError::NoCheckpoint`] if none has been stored yet.
    pub fn latest(&self) -> Result<&StoredCheckpoint> {
        self.checkpoints.back().ok_or(CkptError::NoCheckpoint)
    }

    /// Metadata of every retained checkpoint, oldest first.
    pub fn metadata(&self) -> Vec<&CheckpointMetadata> {
        self.checkpoints.iter().map(|c| &c.metadata).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(name: &str, len: usize) -> (String, Vec<u8>) {
        (name.to_string(), vec![0xAB; len])
    }

    #[test]
    fn push_and_latest() {
        let mut store = CheckpointStore::new(2);
        assert!(store.is_empty());
        assert_eq!(store.latest().unwrap_err(), CkptError::NoCheckpoint);

        let meta = store.push(
            10,
            123.0,
            CheckpointLevel::Pfs,
            800,
            vec![payload("x", 100), payload("p", 60)],
        );
        assert_eq!(meta.id, 0);
        assert_eq!(meta.total_bytes, 160);
        assert_eq!(meta.original_bytes, 800);
        assert!((meta.compression_ratio() - 5.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);

        let latest = store.latest().unwrap();
        assert_eq!(latest.metadata.iteration, 10);
        assert_eq!(latest.payload("x").unwrap().len(), 100);
        assert!(matches!(
            latest.payload("nope"),
            Err(CkptError::UnknownVariable(_))
        ));
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut store = CheckpointStore::new(2);
        for i in 0..5 {
            store.push(
                i,
                i as f64,
                CheckpointLevel::Pfs,
                10,
                vec![payload("x", 10)],
            );
        }
        assert_eq!(store.len(), 2);
        let ids: Vec<u64> = store.metadata().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(store.latest().unwrap().metadata.iteration, 4);
        assert_eq!(store.total_bytes_written, 50);
    }

    #[test]
    fn empty_payload_ratio_is_one() {
        let mut store = CheckpointStore::new(1);
        let meta = store.push(0, 0.0, CheckpointLevel::Local, 0, vec![]);
        assert_eq!(meta.compression_ratio(), 1.0);
        assert_eq!(meta.total_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "retain at least one")]
    fn zero_retention_panics() {
        let _ = CheckpointStore::new(0);
    }
}
