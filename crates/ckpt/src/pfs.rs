//! Parallel-file-system performance model.
//!
//! The paper's checkpoint and recovery times are dominated by writing and
//! reading checkpoint data through a shared parallel file system whose
//! aggregate bandwidth is fixed — which is why checkpoint time grows
//! roughly linearly with the number of processes in the weak-scaling study
//! (Figures 4–6: total data grows with scale, bandwidth does not) and why
//! shrinking the data with compression buys an almost proportional time
//! reduction.
//!
//! [`PfsModel`] captures exactly that: a constant aggregate bandwidth, a
//! per-rank bandwidth ceiling (small transfers cannot exceed what one rank's
//! link can push), and a fixed per-operation latency for metadata/open/close
//! costs.  The default calibration reproduces the paper's measurement that
//! one uncompressed ≈78.8 GB checkpoint at 2,048 ranks takes ≈120 s.

use serde::{Deserialize, Serialize};

/// Storage level a checkpoint is written to, following FTI's four levels.
/// Only the relative speeds matter for the reproduction; the defaults give
/// node-local storage a much higher aggregate bandwidth than the PFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckpointLevel {
    /// L1: node-local storage (fast, lost if the node dies).
    Local,
    /// L2: partner copy (local write plus a copy to a partner node).
    Partner,
    /// L3: Reed–Solomon encoded across nodes.
    ReedSolomon,
    /// L4: the shared parallel file system (survives whole-system failures;
    /// the level the paper's evaluation uses).
    Pfs,
}

impl CheckpointLevel {
    /// Bandwidth multiplier relative to the PFS aggregate bandwidth.
    fn bandwidth_factor(&self) -> f64 {
        match self {
            CheckpointLevel::Local => 20.0,
            CheckpointLevel::Partner => 8.0,
            CheckpointLevel::ReedSolomon => 4.0,
            CheckpointLevel::Pfs => 1.0,
        }
    }
}

/// Parameters of the parallel-file-system model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PfsModel {
    /// Aggregate write bandwidth of the file system in bytes/second, shared
    /// by all ranks.
    pub aggregate_write_bandwidth: f64,
    /// Aggregate read bandwidth in bytes/second (reads are usually somewhat
    /// faster than writes on Lustre/GPFS-class systems).
    pub aggregate_read_bandwidth: f64,
    /// Maximum bandwidth one rank can drive, in bytes/second.
    pub per_rank_bandwidth: f64,
    /// Fixed per-operation latency in seconds (file open/close, metadata).
    pub latency: f64,
}

impl Default for PfsModel {
    fn default() -> Self {
        Self::bebop_like()
    }
}

impl PfsModel {
    /// The calibration used throughout the reproduction: with 2,048 ranks
    /// checkpointing 78.8 GB of double-precision data, the write takes
    /// ≈120 s (the paper's measured value), i.e. an aggregate write
    /// bandwidth of ≈0.66 GB/s, with reads ≈25 % faster.
    pub fn bebop_like() -> Self {
        PfsModel {
            aggregate_write_bandwidth: 78.8e9 / 119.0,
            aggregate_read_bandwidth: 78.8e9 / 95.0,
            per_rank_bandwidth: 1.2e9,
            latency: 1.0,
        }
    }

    /// A model scaled to `factor` times the Bebop-like aggregate bandwidth
    /// (used by the what-if sweeps).
    pub fn scaled(factor: f64) -> Self {
        let base = Self::bebop_like();
        PfsModel {
            aggregate_write_bandwidth: base.aggregate_write_bandwidth * factor,
            aggregate_read_bandwidth: base.aggregate_read_bandwidth * factor,
            ..base
        }
    }

    /// Effective bandwidth for `ranks` ranks doing a collective write of
    /// `total_bytes`: limited by both the aggregate ceiling and what the
    /// participating ranks can drive.
    fn effective_bandwidth(&self, aggregate: f64, ranks: usize) -> f64 {
        let rank_limit = self.per_rank_bandwidth * ranks.max(1) as f64;
        aggregate.min(rank_limit).max(f64::MIN_POSITIVE)
    }

    /// Seconds to write `total_bytes` from `ranks` ranks to `level`.
    pub fn write_seconds(&self, total_bytes: usize, ranks: usize, level: CheckpointLevel) -> f64 {
        let bw = self.effective_bandwidth(
            self.aggregate_write_bandwidth * level.bandwidth_factor(),
            ranks,
        );
        self.latency + total_bytes as f64 / bw
    }

    /// Seconds to read `total_bytes` back into `ranks` ranks from `level`.
    pub fn read_seconds(&self, total_bytes: usize, ranks: usize, level: CheckpointLevel) -> f64 {
        let bw = self.effective_bandwidth(
            self.aggregate_read_bandwidth * level.bandwidth_factor(),
            ranks,
        );
        self.latency + total_bytes as f64 / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bebop_calibration_matches_paper_measurement() {
        // One dynamic vector of 1e10 doubles = 78.8 GB (paper, §3) takes
        // about 120 s to write with 2,048 ranks.
        let pfs = PfsModel::bebop_like();
        let t = pfs.write_seconds(78_800_000_000, 2048, CheckpointLevel::Pfs);
        assert!((t - 120.0).abs() < 5.0, "write time {t}");
        // Recovery is the same order (paper assumes Trc ≈ Tckp).
        let r = pfs.read_seconds(78_800_000_000, 2048, CheckpointLevel::Pfs);
        assert!(r > 60.0 && r < 130.0, "read time {r}");
    }

    #[test]
    fn write_time_scales_with_bytes() {
        let pfs = PfsModel::bebop_like();
        let t1 = pfs.write_seconds(10_000_000_000, 1024, CheckpointLevel::Pfs);
        let t2 = pfs.write_seconds(20_000_000_000, 1024, CheckpointLevel::Pfs);
        assert!(t2 > t1);
        // Doubling the bytes roughly doubles the transfer part.
        assert!((t2 - pfs.latency) / (t1 - pfs.latency) > 1.9);
    }

    #[test]
    fn compression_reduces_time_proportionally() {
        // The essence of the paper: a 20x smaller checkpoint is ~20x faster
        // to write (minus latency).
        let pfs = PfsModel::bebop_like();
        let full = pfs.write_seconds(78_800_000_000, 2048, CheckpointLevel::Pfs);
        let compressed = pfs.write_seconds(78_800_000_000 / 20, 2048, CheckpointLevel::Pfs);
        assert!(full / compressed > 10.0);
    }

    #[test]
    fn few_ranks_hit_per_rank_limit() {
        let pfs = PfsModel::bebop_like();
        // A single rank cannot use the whole aggregate bandwidth.
        let one = pfs.write_seconds(10_000_000_000, 1, CheckpointLevel::Local);
        let many = pfs.write_seconds(10_000_000_000, 2048, CheckpointLevel::Local);
        assert!(one > many);
    }

    #[test]
    fn faster_levels_are_faster() {
        let pfs = PfsModel::bebop_like();
        let bytes = 40_000_000_000;
        let local = pfs.write_seconds(bytes, 2048, CheckpointLevel::Local);
        let partner = pfs.write_seconds(bytes, 2048, CheckpointLevel::Partner);
        let rs = pfs.write_seconds(bytes, 2048, CheckpointLevel::ReedSolomon);
        let pfs_t = pfs.write_seconds(bytes, 2048, CheckpointLevel::Pfs);
        assert!(local < partner && partner < rs && rs < pfs_t);
    }

    #[test]
    fn scaled_model() {
        let fast = PfsModel::scaled(10.0);
        let base = PfsModel::bebop_like();
        let bytes = 78_800_000_000;
        assert!(
            fast.write_seconds(bytes, 2048, CheckpointLevel::Pfs)
                < base.write_seconds(bytes, 2048, CheckpointLevel::Pfs) / 5.0
        );
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let pfs = PfsModel::bebop_like();
        assert_eq!(
            pfs.write_seconds(0, 64, CheckpointLevel::Pfs),
            pfs.latency
        );
        assert_eq!(pfs.read_seconds(0, 64, CheckpointLevel::Pfs), pfs.latency);
    }
}
