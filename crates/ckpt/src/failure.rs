//! Fail-stop failure injection.
//!
//! Section 5.4 of the paper injects failures whose inter-arrival times
//! follow an exponential distribution with a mean of one hour (the MTTI),
//! striking at arbitrary points of the execution — during computation as
//! well as during checkpoint/recovery I/O.  [`FailureInjector`] reproduces
//! that process deterministically from a seed so experiments are
//! repeatable.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Exponentially distributed fail-stop failure process.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    mtti_seconds: f64,
    rng: ChaCha8Rng,
    /// Absolute simulated time of the next failure.
    next_failure: f64,
    /// Number of failures generated so far.
    count: usize,
}

/// A summary of the failures drawn during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureLog {
    /// Absolute times at which failures struck.
    pub times: Vec<f64>,
}

impl FailureInjector {
    /// Creates an injector with mean time to interruption `mtti_seconds`,
    /// starting at simulated time 0.
    ///
    /// # Panics
    /// Panics if the MTTI is not positive and finite.
    pub fn new(mtti_seconds: f64, seed: u64) -> Self {
        assert!(
            mtti_seconds.is_finite() && mtti_seconds > 0.0,
            "MTTI must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let first = Self::sample_exponential(&mut rng, mtti_seconds);
        FailureInjector {
            mtti_seconds,
            rng,
            next_failure: first,
            count: 0,
        }
    }

    /// An injector that never fails (for failure-free baselines).
    pub fn never() -> Self {
        FailureInjector {
            mtti_seconds: f64::MAX,
            rng: ChaCha8Rng::seed_from_u64(0),
            next_failure: f64::INFINITY,
            count: 0,
        }
    }

    fn sample_exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
        // Inverse-CDF sampling; guard against u == 0.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// The configured mean time to interruption in seconds.
    pub fn mtti_seconds(&self) -> f64 {
        self.mtti_seconds
    }

    /// The failure rate λ = 1 / MTTI in failures per second.
    pub fn rate(&self) -> f64 {
        1.0 / self.mtti_seconds
    }

    /// Absolute time of the next scheduled failure.
    pub fn next_failure_time(&self) -> f64 {
        self.next_failure
    }

    /// Number of failures that have struck so far.
    pub fn failures_so_far(&self) -> usize {
        self.count
    }

    /// Returns `true` — and schedules the following failure — if a failure
    /// strikes within the interval `(from, to]` of simulated time.
    ///
    /// The caller is expected to poll intervals in non-decreasing order.
    pub fn fails_during(&mut self, from: f64, to: f64) -> bool {
        debug_assert!(to >= from, "interval must be non-decreasing");
        if self.next_failure > from && self.next_failure <= to {
            self.count += 1;
            let gap = Self::sample_exponential(&mut self.rng, self.mtti_seconds);
            self.next_failure += gap.max(f64::MIN_POSITIVE);
            true
        } else {
            false
        }
    }

    /// Draws the first `n` failure times without consuming the injector
    /// (useful for tests and for plotting the injected failure schedule).
    pub fn preview(&self, n: usize) -> Vec<f64> {
        let mut copy = self.clone();
        let mut times = Vec::with_capacity(n);
        let mut t = copy.next_failure;
        for _ in 0..n {
            times.push(t);
            let gap = Self::sample_exponential(&mut copy.rng, copy.mtti_seconds);
            t += gap;
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = FailureInjector::new(3600.0, 42).preview(10);
        let b = FailureInjector::new(3600.0, 42).preview(10);
        assert_eq!(a, b);
        let c = FailureInjector::new(3600.0, 43).preview(10);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_interarrival_close_to_mtti() {
        let mtti = 3600.0;
        let times = FailureInjector::new(mtti, 7).preview(4000);
        let mut gaps = Vec::with_capacity(times.len());
        let mut prev = 0.0;
        for &t in &times {
            gaps.push(t - prev);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - mtti).abs() / mtti < 0.1,
            "empirical mean {mean} vs MTTI {mtti}"
        );
        // All gaps positive and times increasing.
        assert!(gaps.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn fails_during_detects_intervals() {
        let mut inj = FailureInjector::new(100.0, 1);
        let first = inj.next_failure_time();
        assert!(!inj.fails_during(0.0, first * 0.5));
        assert!(inj.fails_during(first * 0.5, first + 1.0));
        assert_eq!(inj.failures_so_far(), 1);
        // Next failure is strictly later.
        assert!(inj.next_failure_time() > first);
    }

    #[test]
    fn rate_is_inverse_mtti() {
        let inj = FailureInjector::new(1800.0, 3);
        assert!((inj.rate() - 1.0 / 1800.0).abs() < 1e-15);
        assert_eq!(inj.mtti_seconds(), 1800.0);
    }

    #[test]
    fn never_fails() {
        let mut inj = FailureInjector::never();
        assert!(!inj.fails_during(0.0, 1e12));
        assert_eq!(inj.failures_so_far(), 0);
    }

    #[test]
    #[should_panic(expected = "MTTI must be positive")]
    fn invalid_mtti_panics() {
        let _ = FailureInjector::new(0.0, 1);
    }
}
