//! Pluggable storage backend behind [`DiskStore`](crate::disk::DiskStore).
//!
//! Every file-system operation the durable checkpoint tier performs is
//! routed through the [`StorageBackend`] trait: directory scans, header
//! reads, full reads, the temp-write / fsync / rename commit sequence and
//! eviction.  Production uses [`OsBackend`] (plain `std::fs`); the
//! `lcr-chaos` crate wraps any backend in a fault injector to exercise
//! torn writes, fsync lies, transient `EIO` and post-commit bit flips
//! without touching the store logic itself.
//!
//! The trait is deliberately *operation-shaped* rather than
//! handle-shaped: each call names the path it touches, so a fault
//! injector can key its schedule on the operation sequence and a future
//! remote tier can map calls onto an object store.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The file-system surface [`DiskStore`](crate::disk::DiskStore) needs.
///
/// Implementations must be usable from the write-behind I/O thread, hence
/// `Send + Sync`.  All methods are `&self`: backends carry interior
/// mutability if they need state (the chaos injector keeps its seeded
/// schedule behind a mutex).
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Lists the entries of `dir` (files only; order is not significant —
    /// the store sorts by checkpoint id).
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Length of the file at `path` in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Reads exactly the first `len` bytes of `path`.
    fn read_prefix(&self, path: &Path, len: usize) -> io::Result<Vec<u8>>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating) `path` and writes `parts` back to back.
    ///
    /// Durability is *not* implied — callers follow up with
    /// [`StorageBackend::fsync`] before relying on the data surviving a
    /// crash.
    fn write_file(&self, path: &Path, parts: &[&[u8]]) -> io::Result<()>;

    /// Forces the file at `path` to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (the commit point of a
    /// checkpoint write).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Best-effort fsync of a directory so a preceding rename is durable.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production backend: plain `std::fs` operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsBackend;

impl StorageBackend for OsBackend {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for item in fs::read_dir(dir)? {
            out.push(item?.path());
        }
        Ok(out)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn read_prefix(&self, path: &Path, len: usize) -> io::Result<Vec<u8>> {
        let mut file = File::open(path)?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, path: &Path, parts: &[&[u8]]) -> io::Result<()> {
        let mut file = File::create(path)?;
        for part in parts {
            file.write_all(part)?;
        }
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        File::options().write(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// Bounded exponential-backoff policy for *transient* storage errors.
///
/// Only I/O errors are ever retried — a CRC/format validation failure is
/// deterministic and retrying it would only re-read the same corrupt
/// bytes.  Every retry is counted on the owning
/// [`DiskStore`](crate::disk::DiskStore) and every backoff sleep is
/// logged, so supervision is observable, never silent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-tries after the initial attempt.
    pub max_retries: u32,
    /// Sleep before the first retry, in seconds.
    pub base_delay_seconds: f64,
    /// Multiplier applied to the delay after each failed retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_seconds: 0.002,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every error is immediately final).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_seconds: 0.0,
            multiplier: 1.0,
        }
    }

    /// The backoff delay (seconds) before retry number `attempt`
    /// (1-based).
    pub fn delay_seconds(&self, attempt: u32) -> f64 {
        self.base_delay_seconds * self.multiplier.powi(attempt.saturating_sub(1) as i32)
    }

    /// Runs `op`, retrying transient failures up to `max_retries` times
    /// with exponential backoff.  Returns the result of the last attempt
    /// plus the number of retries performed and the seconds slept before
    /// each one.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> (io::Result<T>, u32, Vec<f64>) {
        let mut backoff = Vec::new();
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), attempt, backoff),
                Err(e) if attempt < self.max_retries => {
                    attempt += 1;
                    let delay = self.delay_seconds(attempt);
                    if delay > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(delay));
                    }
                    backoff.push(delay);
                    let _ = e;
                }
                Err(e) => return (Err(e), attempt, backoff),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_backend_roundtrips_and_renames() {
        let dir = std::env::temp_dir().join(format!("lcr-backend-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = OsBackend;
        b.create_dir_all(&dir).unwrap();
        let tmp = dir.join("a.tmp");
        let fin = dir.join("a.bin");
        b.write_file(&tmp, &[b"hello ", b"world"]).unwrap();
        b.fsync(&tmp).unwrap();
        b.rename(&tmp, &fin).unwrap();
        b.fsync_dir(&dir).unwrap();
        assert_eq!(b.file_len(&fin).unwrap(), 11);
        assert_eq!(b.read_prefix(&fin, 5).unwrap(), b"hello");
        assert_eq!(b.read(&fin).unwrap(), b"hello world");
        assert_eq!(b.list_dir(&dir).unwrap(), vec![fin.clone()]);
        b.remove_file(&fin).unwrap();
        assert!(b.list_dir(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_policy_counts_and_logs_backoff() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay_seconds: 0.0,
            multiplier: 2.0,
        };
        let mut failures_left = 2;
        let (result, retries, backoff) = policy.run(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(retries, 2);
        assert_eq!(backoff.len(), 2);
    }

    #[test]
    fn retry_policy_gives_up_after_budget() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_delay_seconds: 0.0,
            multiplier: 2.0,
        };
        let (result, retries, _) = policy.run(|| -> io::Result<()> {
            Err(io::Error::other("persistent"))
        });
        assert!(result.is_err());
        assert_eq!(retries, 2);
    }

    #[test]
    fn delay_schedule_is_exponential() {
        let p = RetryPolicy {
            max_retries: 4,
            base_delay_seconds: 0.001,
            multiplier: 2.0,
        };
        assert!((p.delay_seconds(1) - 0.001).abs() < 1e-12);
        assert!((p.delay_seconds(2) - 0.002).abs() < 1e-12);
        assert!((p.delay_seconds(3) - 0.004).abs() < 1e-12);
    }
}
