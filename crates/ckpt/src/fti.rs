//! FTI-like `Protect()` / `Snapshot()` / recover API.
//!
//! Section 4.2 of the paper describes the integration workflow: the
//! application and the solver *register* the variables to checkpoint
//! (`Protect()`), then periodically *save or restore* them (`Snapshot()`).
//! [`FtiContext`] reproduces that API over named binary buffers, charging
//! the simulated clock with the PFS write/read time for every snapshot and
//! recovery and recording everything in a [`CheckpointStore`].
//!
//! The context does not know (or care) whether the buffers it is handed are
//! raw vector bytes, losslessly compressed bytes, or SZ-compressed bytes —
//! that choice is the checkpoint *strategy*'s (in `lcr-core`).  It charges
//! I/O time proportional to what it is actually given, which is precisely
//! how lossy checkpointing wins in the paper.

use crate::clock::SimClock;
use crate::cluster::ClusterConfig;
use crate::pfs::{CheckpointLevel, PfsModel};
use crate::store::{CheckpointBuffer, CheckpointMetadata, CheckpointStore};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A variable registered for checkpointing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedVariable {
    /// Identifier (e.g. `"x"`, `"p"`, `"iteration"`).
    pub id: String,
    /// Original (uncompressed) size in bytes; used for compression-ratio
    /// reporting and static-variable accounting.
    pub original_bytes: usize,
}

/// Data handed back by a recovery: the encoded payloads and the simulated
/// seconds the read took.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredData {
    /// Encoded payload per variable id (exactly what was snapshot).
    pub payloads: Vec<(String, Vec<u8>)>,
    /// Iteration at which the recovered checkpoint was taken.
    pub iteration: usize,
    /// Simulated seconds spent reading from storage.
    pub read_seconds: f64,
}

/// An FTI-like checkpoint context bound to a cluster and PFS model.
#[derive(Debug, Clone)]
pub struct FtiContext {
    cluster: ClusterConfig,
    pfs: PfsModel,
    level: CheckpointLevel,
    protected: Vec<ProtectedVariable>,
    store: CheckpointStore,
    /// Multiplier applied to payload byte counts for I/O-time accounting.
    ///
    /// The experiment harness solves a host-sized instance of the paper's
    /// matrix family but accounts checkpoint I/O at the paper's scale
    /// (e.g. 2160³ unknowns over 2,048 ranks); setting the byte scale to
    /// the paper-to-local size ratio makes every snapshot/recover charge
    /// the simulated clock as if the full-size data had been written, while
    /// the *real* (small) payload is stored for genuine recovery.
    byte_scale: f64,
    /// Cumulative simulated seconds spent writing checkpoints.
    pub total_write_seconds: f64,
    /// Cumulative simulated seconds spent reading checkpoints.
    pub total_read_seconds: f64,
    /// Number of snapshots taken.
    pub snapshots: usize,
    /// Number of recoveries performed.
    pub recoveries: usize,
}

impl FtiContext {
    /// Creates a context for the given cluster, PFS model and storage level.
    pub fn new(cluster: ClusterConfig, pfs: PfsModel, level: CheckpointLevel) -> Self {
        FtiContext {
            cluster,
            pfs,
            level,
            protected: Vec::new(),
            store: CheckpointStore::new(2),
            byte_scale: 1.0,
            total_write_seconds: 0.0,
            total_read_seconds: 0.0,
            snapshots: 0,
            recoveries: 0,
        }
    }

    /// Sets the byte-scale multiplier used when billing I/O time (see the
    /// field documentation).  A scale of 1.0 (the default) bills exactly
    /// the stored bytes.
    ///
    /// # Panics
    /// Panics if the scale is not positive and finite.
    pub fn set_byte_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale > 0.0, "invalid byte scale");
        self.byte_scale = scale;
    }

    /// The current byte-scale multiplier.
    pub fn byte_scale(&self) -> f64 {
        self.byte_scale
    }

    /// Registers a variable for checkpointing (the paper's `Protect()`);
    /// re-registering an id updates its original size.
    pub fn protect(&mut self, id: &str, original_bytes: usize) {
        if let Some(existing) = self.protected.iter_mut().find(|v| v.id == id) {
            existing.original_bytes = original_bytes;
        } else {
            self.protected.push(ProtectedVariable {
                id: id.to_string(),
                original_bytes,
            });
        }
    }

    /// The registered variables.
    pub fn protected(&self) -> &[ProtectedVariable] {
        &self.protected
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The PFS model.
    pub fn pfs(&self) -> &PfsModel {
        &self.pfs
    }

    /// Access to the checkpoint store (metadata inspection).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Takes a snapshot (the paper's `Snapshot()` in save mode): writes the
    /// encoded payloads to storage, advances the clock by the modelled
    /// write time, and returns the checkpoint metadata plus that time.
    ///
    /// `payloads` must contain one entry per variable the strategy chose to
    /// save; ids not previously protected are registered on the fly with
    /// their encoded size as the original size.
    pub fn snapshot(
        &mut self,
        clock: &mut SimClock,
        iteration: usize,
        payloads: Vec<(String, Vec<u8>)>,
    ) -> (CheckpointMetadata, f64) {
        let original_bytes =
            self.original_bytes_for(payloads.iter().map(|(id, b)| (id.as_str(), b.len())));
        let write_seconds = self.bill_write(clock, payloads.iter().map(|(_, b)| b.len()).sum());
        let metadata = self.store.push(
            iteration,
            clock.now(),
            self.level,
            original_bytes,
            payloads,
        );
        (self.scale_metadata(metadata), write_seconds)
    }

    /// [`FtiContext::snapshot`] over a reusable [`CheckpointBuffer`]: the
    /// zero-copy save path — encoded payloads go from the buffer arena into
    /// the store with a single copy and no intermediate `Vec`s.
    pub fn snapshot_from_buffer(
        &mut self,
        clock: &mut SimClock,
        iteration: usize,
        buffer: &CheckpointBuffer,
    ) -> (CheckpointMetadata, f64) {
        let original_bytes =
            self.original_bytes_for(buffer.segments().map(|(id, b)| (id, b.len())));
        let write_seconds = self.bill_write(clock, buffer.total_bytes());
        let metadata = self.store.push_from_buffer(
            iteration,
            clock.now(),
            self.level,
            original_bytes,
            buffer,
        );
        (self.scale_metadata(metadata), write_seconds)
    }

    /// Paper-scale original size of a variable set: registered sizes where
    /// known, scaled encoded sizes otherwise.
    fn original_bytes_for<'a>(&self, vars: impl Iterator<Item = (&'a str, usize)>) -> usize {
        vars.map(|(id, encoded_len)| {
            self.protected
                .iter()
                .find(|v| v.id == id)
                .map(|v| v.original_bytes)
                .unwrap_or_else(|| (encoded_len as f64 * self.byte_scale) as usize)
        })
        .sum()
    }

    /// Charges the simulated clock for writing `stored_bytes` at the
    /// configured byte scale and returns the write time.
    fn bill_write(&mut self, clock: &mut SimClock, stored_bytes: usize) -> f64 {
        let billed_bytes = (stored_bytes as f64 * self.byte_scale) as usize;
        let write_seconds = self
            .pfs
            .write_seconds(billed_bytes, self.cluster.ranks, self.level);
        clock.advance(write_seconds);
        self.total_write_seconds += write_seconds;
        self.snapshots += 1;
        write_seconds
    }

    /// Reports billed (paper-scale) sizes in the metadata so Table 3 and
    /// the checkpoint-time figures see the scaled numbers.
    fn scale_metadata(&self, mut metadata: CheckpointMetadata) -> CheckpointMetadata {
        metadata.total_bytes = (metadata.total_bytes as f64 * self.byte_scale) as usize;
        metadata
            .variable_bytes
            .iter_mut()
            .for_each(|(_, b)| *b = (*b as f64 * self.byte_scale) as usize);
        metadata
    }

    /// Recovers the latest checkpoint (the paper's `Snapshot()` in restore
    /// mode): advances the clock by the modelled read time — including the
    /// time to re-read the static variables `static_bytes` (matrix,
    /// preconditioner, right-hand side), which the paper notes makes
    /// recovery slower than checkpointing — and returns the payloads.
    ///
    /// # Errors
    /// Returns [`crate::CkptError::NoCheckpoint`] if nothing was snapshot.
    pub fn recover(
        &mut self,
        clock: &mut SimClock,
        static_bytes: usize,
    ) -> Result<RecoveredData> {
        let latest = self.store.latest()?.clone();
        let billed_bytes =
            (latest.metadata.total_bytes as f64 * self.byte_scale) as usize + static_bytes;
        let read_seconds = self
            .pfs
            .read_seconds(billed_bytes, self.cluster.ranks, self.level);
        clock.advance(read_seconds);
        self.total_read_seconds += read_seconds;
        self.recoveries += 1;
        Ok(RecoveredData {
            payloads: latest.payloads,
            iteration: latest.metadata.iteration,
            read_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context(ranks: usize) -> FtiContext {
        FtiContext::new(
            ClusterConfig::bebop_like(ranks, 1.0),
            PfsModel::bebop_like(),
            CheckpointLevel::Pfs,
        )
    }

    #[test]
    fn protect_registers_and_updates() {
        let mut fti = context(64);
        fti.protect("x", 800);
        fti.protect("p", 800);
        fti.protect("x", 1600);
        assert_eq!(fti.protected().len(), 2);
        assert_eq!(fti.protected()[0].original_bytes, 1600);
    }

    #[test]
    fn snapshot_advances_clock_and_stores() {
        let mut fti = context(2048);
        let mut clock = SimClock::new();
        fti.protect("x", 78_800_000_000);
        let payload = vec![0u8; 1_000_000];
        let (meta, secs) = fti.snapshot(&mut clock, 5, vec![("x".to_string(), payload)]);
        assert!(secs > 0.0);
        assert_eq!(clock.now(), secs);
        assert_eq!(meta.iteration, 5);
        assert_eq!(meta.original_bytes, 78_800_000_000);
        assert_eq!(meta.total_bytes, 1_000_000);
        assert!(meta.compression_ratio() > 1000.0);
        assert_eq!(fti.snapshots, 1);
        assert_eq!(fti.store().len(), 1);
    }

    #[test]
    fn smaller_payloads_cost_less_time() {
        let mut fti = context(2048);
        let mut clock = SimClock::new();
        let (_, t_big) =
            fti.snapshot(&mut clock, 0, vec![("x".to_string(), vec![0u8; 80_000_000])]);
        let (_, t_small) =
            fti.snapshot(&mut clock, 1, vec![("x".to_string(), vec![0u8; 4_000_000])]);
        assert!(t_small < t_big);
    }

    #[test]
    fn recover_returns_latest_and_charges_static_bytes() {
        let mut fti = context(1024);
        let mut clock = SimClock::new();
        assert!(fti.recover(&mut clock, 0).is_err());

        fti.snapshot(&mut clock, 3, vec![("x".to_string(), vec![1u8; 1000])]);
        fti.snapshot(&mut clock, 6, vec![("x".to_string(), vec![2u8; 1000])]);
        let before = clock.now();
        let rec = fti.recover(&mut clock, 500_000_000).unwrap();
        assert_eq!(rec.iteration, 6);
        assert_eq!(rec.payloads[0].1[0], 2);
        assert!(rec.read_seconds > 0.0);
        assert_eq!(clock.now(), before + rec.read_seconds);
        assert_eq!(fti.recoveries, 1);

        // Recovering with larger static data takes longer.
        let mut fti2 = context(1024);
        let mut clock2 = SimClock::new();
        fti2.snapshot(&mut clock2, 3, vec![("x".to_string(), vec![1u8; 1000])]);
        let rec_small = fti2.recover(&mut clock2, 0).unwrap();
        assert!(rec.read_seconds > rec_small.read_seconds);
    }

    #[test]
    fn snapshot_from_buffer_matches_snapshot() {
        use crate::store::CheckpointBuffer;

        let mut fti_a = context(2048);
        let mut fti_b = context(2048);
        fti_a.set_byte_scale(1000.0);
        fti_b.set_byte_scale(1000.0);
        fti_a.protect("x", 78_800);
        fti_b.protect("x", 78_800);
        let mut clock_a = SimClock::new();
        let mut clock_b = SimClock::new();

        let mut buf = CheckpointBuffer::new();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[9u8; 1000]));
        buf.push_with("y", |bytes| bytes.extend_from_slice(&[7u8; 50]));
        let (meta_a, secs_a) = fti_a.snapshot_from_buffer(&mut clock_a, 5, &buf);
        let (meta_b, secs_b) = fti_b.snapshot(
            &mut clock_b,
            5,
            vec![
                ("x".to_string(), vec![9u8; 1000]),
                ("y".to_string(), vec![7u8; 50]),
            ],
        );
        assert_eq!(meta_a, meta_b);
        assert_eq!(secs_a, secs_b);
        assert_eq!(clock_a.now(), clock_b.now());
        assert_eq!(
            fti_a.store().latest().unwrap().payloads,
            fti_b.store().latest().unwrap().payloads
        );

        // The buffer is reusable after the snapshot.
        buf.clear();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[1u8; 10]));
        let (meta2, _) = fti_a.snapshot_from_buffer(&mut clock_a, 6, &buf);
        assert_eq!(meta2.iteration, 6);
        assert_eq!(fti_a.store().len(), 2);
    }

    #[test]
    fn unregistered_payload_uses_its_own_size_as_original() {
        let mut fti = context(64);
        let mut clock = SimClock::new();
        let (meta, _) = fti.snapshot(&mut clock, 0, vec![("y".to_string(), vec![0u8; 256])]);
        assert_eq!(meta.original_bytes, 256);
        assert_eq!(meta.compression_ratio(), 1.0);
    }
}
