//! FTI-like `Protect()` / `Snapshot()` / recover API.
//!
//! Section 4.2 of the paper describes the integration workflow: the
//! application and the solver *register* the variables to checkpoint
//! (`Protect()`), then periodically *save or restore* them (`Snapshot()`).
//! [`FtiContext`] reproduces that API over named binary buffers, charging
//! the simulated clock with the PFS write/read time for every snapshot and
//! recovery and recording everything in a [`CheckpointStore`].
//!
//! The context does not know (or care) whether the buffers it is handed are
//! raw vector bytes, losslessly compressed bytes, or SZ-compressed bytes —
//! that choice is the checkpoint *strategy*'s (in `lcr-core`).  It charges
//! I/O time proportional to what it is actually given, which is precisely
//! how lossy checkpointing wins in the paper.

use crate::clock::SimClock;
use crate::cluster::ClusterConfig;
use crate::disk::DiskStore;
use crate::pfs::{CheckpointLevel, PfsModel};
use crate::store::{CheckpointBuffer, CheckpointMetadata, CheckpointStore};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A variable registered for checkpointing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedVariable {
    /// Identifier (e.g. `"x"`, `"p"`, `"iteration"`).
    pub id: String,
    /// Original (uncompressed) size in bytes; used for compression-ratio
    /// reporting and static-variable accounting.
    pub original_bytes: usize,
}

/// Data handed back by a recovery: the encoded payloads of the recovered
/// checkpoint's whole dependency chain and the simulated seconds the read
/// took.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredData {
    /// Encoded payloads of every checkpoint in the recovered dependency
    /// chain, anchor first — the last link is the recovered checkpoint
    /// itself.  Anchor-encoded checkpoints recover as a single link;
    /// temporal-delta checkpoints carry their base links so the strategy
    /// can replay the chain (see `lcr-compress`).  Each link is the
    /// payload list per variable id, exactly as snapshot.
    pub chain: Vec<Vec<(String, Vec<u8>)>>,
    /// Iteration at which the recovered checkpoint was taken.
    pub iteration: usize,
    /// Scalars stored alongside the payloads.  Populated only when the
    /// checkpoint came from the durable disk tier (the in-memory store does
    /// not persist scalars — the runner tracks them itself in-process).
    pub scalars: Vec<(String, f64)>,
    /// Strategy tag recorded by the writer (empty for the in-memory tier).
    pub tag: String,
    /// Simulated seconds spent reading from storage.
    pub read_seconds: f64,
}

impl RecoveredData {
    /// Payloads of the recovered checkpoint itself (the newest chain
    /// link).  Sufficient on its own only for anchor-encoded checkpoints.
    pub fn payloads(&self) -> &[(String, Vec<u8>)] {
        self.chain.last().map(Vec::as_slice).unwrap_or(&[])
    }
}

/// An FTI-like checkpoint context bound to a cluster and PFS model.
#[derive(Debug)]
pub struct FtiContext {
    cluster: ClusterConfig,
    pfs: PfsModel,
    level: CheckpointLevel,
    protected: Vec<ProtectedVariable>,
    store: CheckpointStore,
    /// Optional durable tier: every committed snapshot is mirrored into it
    /// and, when attached, recovery reads (and CRC-validates) from it.
    disk: Option<DiskStore>,
    /// Multiplier applied to payload byte counts for I/O-time accounting.
    ///
    /// The experiment harness solves a host-sized instance of the paper's
    /// matrix family but accounts checkpoint I/O at the paper's scale
    /// (e.g. 2160³ unknowns over 2,048 ranks); setting the byte scale to
    /// the paper-to-local size ratio makes every snapshot/recover charge
    /// the simulated clock as if the full-size data had been written, while
    /// the *real* (small) payload is stored for genuine recovery.
    byte_scale: f64,
    /// Cumulative simulated seconds spent writing checkpoints.
    pub total_write_seconds: f64,
    /// Cumulative simulated seconds spent reading checkpoints.
    pub total_read_seconds: f64,
    /// Number of snapshots taken.
    pub snapshots: usize,
    /// Number of recoveries performed.
    pub recoveries: usize,
}

impl FtiContext {
    /// Creates a context for the given cluster, PFS model and storage level.
    pub fn new(cluster: ClusterConfig, pfs: PfsModel, level: CheckpointLevel) -> Self {
        FtiContext {
            cluster,
            pfs,
            level,
            protected: Vec::new(),
            store: CheckpointStore::new(2),
            disk: None,
            byte_scale: 1.0,
            total_write_seconds: 0.0,
            total_read_seconds: 0.0,
            snapshots: 0,
            recoveries: 0,
        }
    }

    /// Sets the byte-scale multiplier used when billing I/O time (see the
    /// field documentation).  A scale of 1.0 (the default) bills exactly
    /// the stored bytes.
    ///
    /// # Panics
    /// Panics if the scale is not positive and finite.
    pub fn set_byte_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale > 0.0, "invalid byte scale");
        self.byte_scale = scale;
    }

    /// The current byte-scale multiplier.
    pub fn byte_scale(&self) -> f64 {
        self.byte_scale
    }

    /// Registers a variable for checkpointing (the paper's `Protect()`);
    /// re-registering an id updates its original size.
    pub fn protect(&mut self, id: &str, original_bytes: usize) {
        if let Some(existing) = self.protected.iter_mut().find(|v| v.id == id) {
            existing.original_bytes = original_bytes;
        } else {
            self.protected.push(ProtectedVariable {
                id: id.to_string(),
                original_bytes,
            });
        }
    }

    /// The registered variables.
    pub fn protected(&self) -> &[ProtectedVariable] {
        &self.protected
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The PFS model.
    pub fn pfs(&self) -> &PfsModel {
        &self.pfs
    }

    /// Access to the checkpoint store (metadata inspection).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Attaches a durable disk tier: every committed snapshot is mirrored
    /// into it, and recovery reads the newest CRC-valid checkpoint from it.
    pub fn attach_disk_store(&mut self, disk: DiskStore) {
        self.disk = Some(disk);
    }

    /// The attached disk tier, if any.
    pub fn disk_store(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Mutable access to the attached disk tier, if any.
    pub fn disk_store_mut(&mut self) -> Option<&mut DiskStore> {
        self.disk.as_mut()
    }

    /// Detaches and returns the durable tier, leaving the context running
    /// on the in-memory store alone — the *tier degradation* path: when
    /// disk writes fail persistently, the supervisor drops to the memory
    /// tier and keeps the solver converging instead of aborting.  The
    /// returned store still holds its retry/backoff accounting.
    pub fn detach_disk_store(&mut self) -> Option<DiskStore> {
        self.disk.take()
    }

    /// Whether any checkpoint is available for recovery — in memory or, if
    /// a disk tier is attached, on disk (header-validated).
    pub fn has_checkpoint(&self) -> bool {
        !self.store.is_empty() || self.disk.as_ref().is_some_and(|d| !d.is_empty())
    }

    /// Takes a snapshot (the paper's `Snapshot()` in save mode): writes the
    /// encoded payloads to storage, advances the clock by the modelled
    /// write time, and returns the checkpoint metadata plus that time.
    ///
    /// `payloads` must contain one entry per variable the strategy chose to
    /// save; ids not previously protected are registered on the fly with
    /// their encoded size as the original size.
    pub fn snapshot(
        &mut self,
        clock: &mut SimClock,
        iteration: usize,
        payloads: Vec<(String, Vec<u8>)>,
    ) -> (CheckpointMetadata, f64) {
        let original_bytes =
            self.original_bytes_for(payloads.iter().map(|(id, b)| (id.as_str(), b.len())));
        let write_seconds = self.bill_write(clock, payloads.iter().map(|(_, b)| b.len()).sum());
        let metadata = self.store.push(
            iteration,
            clock.now(),
            self.level,
            original_bytes,
            None,
            payloads,
        );
        (self.scale_metadata(metadata), write_seconds)
    }

    /// [`FtiContext::snapshot`] over a reusable [`CheckpointBuffer`]: the
    /// zero-copy save path — encoded payloads go from the buffer arena into
    /// the store with a single copy and no intermediate `Vec`s.
    ///
    /// Convenience wrapper that bills the write and commits in one step
    /// (no mid-write failure window).  The runner uses
    /// [`FtiContext::planned_write_seconds`] +
    /// [`FtiContext::commit_snapshot_from_buffer`] instead, so a failure
    /// striking *during* the write discards the checkpoint — FTI
    /// atomicity — rather than committing it first.
    ///
    /// # Panics
    /// Panics if an attached disk tier fails to persist the snapshot (the
    /// runner path surfaces this as a failed checkpoint instead).
    pub fn snapshot_from_buffer(
        &mut self,
        clock: &mut SimClock,
        iteration: usize,
        buffer: &mut CheckpointBuffer,
    ) -> (CheckpointMetadata, f64) {
        let write_seconds = self.planned_write_seconds(buffer.total_bytes());
        clock.advance(write_seconds);
        let metadata = self
            .commit_snapshot_from_buffer(clock.now(), iteration, "", &[], None, buffer, write_seconds)
            .expect("durable tier rejected the snapshot");
        (metadata, write_seconds)
    }

    /// Simulated seconds a snapshot of `stored_bytes` would take at the
    /// configured byte scale — the duration of the write window, computed
    /// *before* committing anything so the caller can decide whether a
    /// failure struck mid-write (in which case the checkpoint must be
    /// discarded, never committed).
    pub fn planned_write_seconds(&self, stored_bytes: usize) -> f64 {
        let billed_bytes = (stored_bytes as f64 * self.byte_scale) as usize;
        self.pfs
            .write_seconds(billed_bytes, self.cluster.ranks, self.level)
    }

    /// Commits a snapshot whose write window already elapsed on the clock
    /// (`write_seconds` from [`FtiContext::planned_write_seconds`], clock
    /// advanced by the caller): stores the payloads in memory and, when a
    /// disk tier is attached, mirrors them into a durable checkpoint file
    /// tagged with the writing strategy's name.  With write-behind enabled
    /// the buffer is handed to the I/O thread and replaced with a recycled
    /// arena; otherwise it is left untouched.
    ///
    /// `delta_order` of `Some(1 | 2)` records the checkpoint as a temporal
    /// delta of that order against the previous snapshot in *both* tiers
    /// (the encoding must match what the strategy actually wrote into the
    /// buffer); `None` records a self-contained anchor.
    ///
    /// # Errors
    /// [`crate::CkptError::Io`] if the durable write fails (the in-memory
    /// tier keeps the snapshot either way, matching a multi-level FTI
    /// set-up where L1 succeeded and L4 failed).
    ///
    /// # Panics
    /// Panics if a delta is committed while either tier holds no earlier
    /// checkpoint for it to decode against.
    #[allow(clippy::too_many_arguments)]
    pub fn commit_snapshot_from_buffer(
        &mut self,
        completed_at: f64,
        iteration: usize,
        tag: &str,
        scalars: &[(String, f64)],
        delta_order: Option<u8>,
        buffer: &mut CheckpointBuffer,
        write_seconds: f64,
    ) -> Result<CheckpointMetadata> {
        let original_bytes =
            self.original_bytes_for(buffer.segments().map(|(id, b)| (id, b.len())));
        self.total_write_seconds += write_seconds;
        self.snapshots += 1;
        let metadata = self.store.push_from_buffer(
            iteration,
            completed_at,
            self.level,
            original_bytes,
            delta_order,
            buffer,
        );
        let disk_result = match &mut self.disk {
            None => Ok(()),
            Some(disk) if disk.write_behind_enabled() => {
                let owned = std::mem::take(buffer);
                let (result, recycled) = disk.push_from_buffer_async(
                    iteration,
                    completed_at,
                    self.level,
                    original_bytes,
                    delta_order,
                    tag,
                    scalars,
                    owned,
                );
                *buffer = recycled;
                result.map(|_| ())
            }
            Some(disk) => disk
                .push_from_buffer(
                    iteration,
                    completed_at,
                    self.level,
                    original_bytes,
                    delta_order,
                    tag,
                    scalars,
                    buffer,
                )
                .map(|_| ()),
        };
        disk_result.map(|()| self.scale_metadata(metadata))
    }

    /// Paper-scale original size of a variable set: registered sizes where
    /// known, scaled encoded sizes otherwise.
    fn original_bytes_for<'a>(&self, vars: impl Iterator<Item = (&'a str, usize)>) -> usize {
        vars.map(|(id, encoded_len)| {
            self.protected
                .iter()
                .find(|v| v.id == id)
                .map(|v| v.original_bytes)
                .unwrap_or_else(|| (encoded_len as f64 * self.byte_scale) as usize)
        })
        .sum()
    }

    /// Charges the simulated clock for writing `stored_bytes` at the
    /// configured byte scale and returns the write time.
    fn bill_write(&mut self, clock: &mut SimClock, stored_bytes: usize) -> f64 {
        let billed_bytes = (stored_bytes as f64 * self.byte_scale) as usize;
        let write_seconds = self
            .pfs
            .write_seconds(billed_bytes, self.cluster.ranks, self.level);
        clock.advance(write_seconds);
        self.total_write_seconds += write_seconds;
        self.snapshots += 1;
        write_seconds
    }

    /// Reports billed (paper-scale) sizes in the metadata so Table 3 and
    /// the checkpoint-time figures see the scaled numbers.
    fn scale_metadata(&self, mut metadata: CheckpointMetadata) -> CheckpointMetadata {
        metadata.total_bytes = (metadata.total_bytes as f64 * self.byte_scale) as usize;
        metadata
            .variable_bytes
            .iter_mut()
            .for_each(|(_, b)| *b = (*b as f64 * self.byte_scale) as usize);
        metadata
    }

    /// Recovers the latest checkpoint (the paper's `Snapshot()` in restore
    /// mode): advances the clock by the modelled read time — including the
    /// time to re-read the static variables `static_bytes` (matrix,
    /// preconditioner, right-hand side), which the paper notes makes
    /// recovery slower than checkpointing — and returns the payloads.
    ///
    /// With a disk tier attached, the read goes through the durable path:
    /// any in-flight write-behind job is joined first, then the newest
    /// checkpoint whose whole dependency chain validates (metadata *and*
    /// payload CRCs of every link) is returned together with its persisted
    /// scalars and strategy tag — a chain with a partially written or
    /// bit-flipped member is skipped entirely, falling back to the newest
    /// older complete chain.  If the durable tier holds no valid
    /// checkpoint at all, recovery falls back to the in-memory tier (which
    /// survives in-process failures even when the disk does not).
    ///
    /// The read time covers *every* chain link: recovering a delta
    /// checkpoint re-reads its base checkpoints back to the nearest
    /// anchor, which is exactly the restart-cost asymmetry the temporal
    /// encoding trades against its smaller writes.
    ///
    /// # Errors
    /// Returns [`crate::CkptError::NoCheckpoint`] if no (valid) checkpoint
    /// is available.
    pub fn recover(
        &mut self,
        clock: &mut SimClock,
        static_bytes: usize,
    ) -> Result<RecoveredData> {
        // Durable tier first; when it has no valid checkpoint (e.g. every
        // disk write failed but the in-process snapshots are intact), fall
        // back to the in-memory tier — multi-level FTI semantics: L1 can
        // recover an in-process failure even though L4 was lost.
        let disk_chain = self.disk.as_mut().and_then(|d| d.latest_valid_chain().ok());
        let (chain, iteration, scalars, tag, total_bytes) = match disk_chain {
            Some(links) => {
                let last = links.last().expect("a recovered chain is never empty");
                let iteration = last.metadata.iteration;
                let scalars = last.scalars.clone();
                let tag = last.tag.clone();
                let total_bytes = links.iter().map(|c| c.metadata.total_bytes).sum::<usize>();
                let chain: Vec<_> = links.into_iter().map(|c| c.payloads).collect();
                (chain, iteration, scalars, tag, total_bytes)
            }
            None => {
                let links = self.store.latest_chain()?;
                let last = links.last().expect("a recovered chain is never empty");
                let iteration = last.metadata.iteration;
                let total_bytes = links.iter().map(|c| c.metadata.total_bytes).sum::<usize>();
                let chain: Vec<_> = links.iter().map(|c| c.payloads.clone()).collect();
                (chain, iteration, Vec::new(), String::new(), total_bytes)
            }
        };
        let billed_bytes = (total_bytes as f64 * self.byte_scale) as usize + static_bytes;
        let read_seconds = self
            .pfs
            .read_seconds(billed_bytes, self.cluster.ranks, self.level);
        clock.advance(read_seconds);
        self.total_read_seconds += read_seconds;
        self.recoveries += 1;
        Ok(RecoveredData {
            chain,
            iteration,
            scalars,
            tag,
            read_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context(ranks: usize) -> FtiContext {
        FtiContext::new(
            ClusterConfig::bebop_like(ranks, 1.0),
            PfsModel::bebop_like(),
            CheckpointLevel::Pfs,
        )
    }

    #[test]
    fn protect_registers_and_updates() {
        let mut fti = context(64);
        fti.protect("x", 800);
        fti.protect("p", 800);
        fti.protect("x", 1600);
        assert_eq!(fti.protected().len(), 2);
        assert_eq!(fti.protected()[0].original_bytes, 1600);
    }

    #[test]
    fn snapshot_advances_clock_and_stores() {
        let mut fti = context(2048);
        let mut clock = SimClock::new();
        fti.protect("x", 78_800_000_000);
        let payload = vec![0u8; 1_000_000];
        let (meta, secs) = fti.snapshot(&mut clock, 5, vec![("x".to_string(), payload)]);
        assert!(secs > 0.0);
        assert_eq!(clock.now(), secs);
        assert_eq!(meta.iteration, 5);
        assert_eq!(meta.original_bytes, 78_800_000_000);
        assert_eq!(meta.total_bytes, 1_000_000);
        assert!(meta.compression_ratio() > 1000.0);
        assert_eq!(fti.snapshots, 1);
        assert_eq!(fti.store().len(), 1);
    }

    #[test]
    fn smaller_payloads_cost_less_time() {
        let mut fti = context(2048);
        let mut clock = SimClock::new();
        let (_, t_big) =
            fti.snapshot(&mut clock, 0, vec![("x".to_string(), vec![0u8; 80_000_000])]);
        let (_, t_small) =
            fti.snapshot(&mut clock, 1, vec![("x".to_string(), vec![0u8; 4_000_000])]);
        assert!(t_small < t_big);
    }

    #[test]
    fn recover_returns_latest_and_charges_static_bytes() {
        let mut fti = context(1024);
        let mut clock = SimClock::new();
        assert!(fti.recover(&mut clock, 0).is_err());

        fti.snapshot(&mut clock, 3, vec![("x".to_string(), vec![1u8; 1000])]);
        fti.snapshot(&mut clock, 6, vec![("x".to_string(), vec![2u8; 1000])]);
        let before = clock.now();
        let rec = fti.recover(&mut clock, 500_000_000).unwrap();
        assert_eq!(rec.iteration, 6);
        assert_eq!(rec.chain.len(), 1, "anchor recovers as a single link");
        assert_eq!(rec.payloads()[0].1[0], 2);
        assert!(rec.read_seconds > 0.0);
        assert_eq!(clock.now(), before + rec.read_seconds);
        assert_eq!(fti.recoveries, 1);

        // Recovering with larger static data takes longer.
        let mut fti2 = context(1024);
        let mut clock2 = SimClock::new();
        fti2.snapshot(&mut clock2, 3, vec![("x".to_string(), vec![1u8; 1000])]);
        let rec_small = fti2.recover(&mut clock2, 0).unwrap();
        assert!(rec.read_seconds > rec_small.read_seconds);
    }

    #[test]
    fn snapshot_from_buffer_matches_snapshot() {
        use crate::store::CheckpointBuffer;

        let mut fti_a = context(2048);
        let mut fti_b = context(2048);
        fti_a.set_byte_scale(1000.0);
        fti_b.set_byte_scale(1000.0);
        fti_a.protect("x", 78_800);
        fti_b.protect("x", 78_800);
        let mut clock_a = SimClock::new();
        let mut clock_b = SimClock::new();

        let mut buf = CheckpointBuffer::new();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[9u8; 1000]));
        buf.push_with("y", |bytes| bytes.extend_from_slice(&[7u8; 50]));
        let (meta_a, secs_a) = fti_a.snapshot_from_buffer(&mut clock_a, 5, &mut buf);
        let (meta_b, secs_b) = fti_b.snapshot(
            &mut clock_b,
            5,
            vec![
                ("x".to_string(), vec![9u8; 1000]),
                ("y".to_string(), vec![7u8; 50]),
            ],
        );
        assert_eq!(meta_a, meta_b);
        assert_eq!(secs_a, secs_b);
        assert_eq!(clock_a.now(), clock_b.now());
        assert_eq!(
            fti_a.store().latest().unwrap().payloads,
            fti_b.store().latest().unwrap().payloads
        );

        // The buffer is reusable after the snapshot.
        buf.clear();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[1u8; 10]));
        let (meta2, _) = fti_a.snapshot_from_buffer(&mut clock_a, 6, &mut buf);
        assert_eq!(meta2.iteration, 6);
        assert_eq!(fti_a.store().len(), 2);
    }

    #[test]
    fn planned_write_seconds_matches_billed_write() {
        let mut fti = context(2048);
        fti.set_byte_scale(500.0);
        let planned = fti.planned_write_seconds(1_000_000);
        let mut clock = SimClock::new();
        let mut buf = crate::store::CheckpointBuffer::new();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&vec![0u8; 1_000_000]));
        let (_, secs) = fti.snapshot_from_buffer(&mut clock, 0, &mut buf);
        assert_eq!(planned, secs);
        assert_eq!(clock.now(), planned);
    }

    #[test]
    fn disk_tier_mirrors_snapshots_and_recovers_with_scalars() {
        use crate::disk::DiskStore;
        use crate::store::CheckpointBuffer;

        let dir = std::env::temp_dir().join(format!("lcr-fti-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut fti = context(64);
        fti.attach_disk_store(DiskStore::open(&dir, 2).unwrap());
        assert!(!fti.has_checkpoint());
        let mut clock = SimClock::new();
        let mut buf = CheckpointBuffer::new();
        buf.push_with("x", |bytes| bytes.extend_from_slice(&[5u8; 128]));
        let write_seconds = fti.planned_write_seconds(buf.total_bytes());
        clock.advance(write_seconds);
        fti.commit_snapshot_from_buffer(
            clock.now(),
            9,
            "traditional",
            &[("rho".to_string(), 1.5)],
            None,
            &mut buf,
            write_seconds,
        )
        .unwrap();
        assert!(fti.has_checkpoint());
        assert_eq!(fti.disk_store().unwrap().len(), 1);

        let rec = fti.recover(&mut clock, 0).unwrap();
        assert_eq!(rec.iteration, 9);
        assert_eq!(rec.tag, "traditional");
        assert_eq!(rec.scalars, vec![("rho".to_string(), 1.5)]);
        assert_eq!(rec.payloads().to_vec(), vec![("x".to_string(), vec![5u8; 128])]);

        // A fresh context over the same directory sees the durable copy.
        let mut fresh = context(64);
        fresh.attach_disk_store(DiskStore::open(&dir, 2).unwrap());
        assert!(fresh.has_checkpoint());
        let mut clock2 = SimClock::new();
        let rec2 = fresh.recover(&mut clock2, 0).unwrap();
        assert_eq!(rec2.chain, rec.chain);
        assert_eq!(rec2.scalars, rec.scalars);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_snapshot_recovers_the_whole_chain_and_bills_every_link() {
        use crate::store::CheckpointBuffer;

        let mut fti = context(2048);
        fti.protect("x", 1_000_000);
        let mut clock = SimClock::new();
        let mut buf = CheckpointBuffer::new();

        let commit = |fti: &mut FtiContext,
                          clock: &mut SimClock,
                          buf: &mut CheckpointBuffer,
                          iteration: usize,
                          fill: u8,
                          len: usize,
                          delta: Option<u8>| {
            buf.clear();
            buf.push_with("x", |out| out.extend_from_slice(&vec![fill; len]));
            let secs = fti.planned_write_seconds(buf.total_bytes());
            clock.advance(secs);
            fti.commit_snapshot_from_buffer(clock.now(), iteration, "", &[], delta, buf, secs)
                .unwrap();
        };
        commit(&mut fti, &mut clock, &mut buf, 0, 1, 1000, None);
        commit(&mut fti, &mut clock, &mut buf, 5, 2, 200, Some(1));
        commit(&mut fti, &mut clock, &mut buf, 10, 3, 200, Some(1));

        let rec = fti.recover(&mut clock, 0).unwrap();
        assert_eq!(rec.iteration, 10);
        assert_eq!(rec.chain.len(), 3, "delta recovery replays from the anchor");
        assert_eq!(rec.chain[0][0].1, vec![1u8; 1000]);
        assert_eq!(rec.payloads()[0].1, vec![3u8; 200]);

        // Reading the chain costs what reading all three links costs — more
        // than the newest link alone would.
        let chain_bytes = 1000 + 200 + 200;
        let expected = fti.pfs().read_seconds(chain_bytes, 2048, CheckpointLevel::Pfs);
        assert_eq!(rec.read_seconds, expected);
    }

    #[test]
    fn unregistered_payload_uses_its_own_size_as_original() {
        let mut fti = context(64);
        let mut clock = SimClock::new();
        let (meta, _) = fti.snapshot(&mut clock, 0, vec![("y".to_string(), vec![0u8; 256])]);
        assert_eq!(meta.original_bytes, 256);
        assert_eq!(meta.compression_ratio(), 1.0);
    }
}
