//! # lcr-ckpt
//!
//! Checkpoint/restart substrate for the lossy-checkpointing reproduction of
//! *"Improving Performance of Iterative Methods by Lossy Checkpointing"*
//! (Tao et al., HPDC 2018).
//!
//! The paper's experiments use the FTI checkpoint library with MPI-IO on a
//! 2,048-core cluster with a shared parallel file system, and inject
//! fail-stop failures with exponentially distributed inter-arrival times.
//! This crate re-creates that environment as a *simulated* substrate so the
//! whole study runs on a single node:
//!
//! * [`SimClock`] — a simulated wall clock.  Solver computation advances it
//!   by a per-iteration cost; checkpoint/recovery I/O advances it by the
//!   time the [`PfsModel`] predicts; failure events are drawn against it.
//! * [`PfsModel`] — a parallel-file-system model with a constant aggregate
//!   bandwidth and a per-rank bandwidth ceiling, calibrated so that one
//!   uncompressed 78.8 GB checkpoint at 2,048 ranks takes ≈120 s, matching
//!   the paper's measurement on Bebop (§3).
//! * [`ClusterConfig`] — the simulated machine (rank count, per-rank
//!   compression throughput, compute-speed factor).
//! * [`FailureInjector`] — exponential fail-stop failure process with a
//!   deterministic seed (§5.4).
//! * [`FtiContext`] + [`CheckpointStore`] — an FTI-like `Protect()` /
//!   `Snapshot()` / `recover()` API over named binary buffers with
//!   checkpoint metadata and multi-level storage targets.
//! * [`DiskStore`] — the durable on-disk tier: crash-consistent checkpoint
//!   files (magic + CRC-validated segment table, temp-file + rename
//!   atomicity, optional write-behind I/O thread) a *fresh* process can
//!   reopen and resume from (see [`disk`]).
//!
//! Numerical state never flows through this crate — the solvers operate on
//! real vectors in `lcr-solvers`; this crate only accounts for *time* and
//! *bytes*, which is what the paper's performance results are made of.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod clock;
pub mod cluster;
pub mod disk;
pub mod failure;
pub mod fti;
pub mod multilevel;
pub mod pfs;
pub mod store;

pub use backend::{OsBackend, RetryPolicy, StorageBackend};
pub use clock::SimClock;
pub use cluster::ClusterConfig;
pub use disk::{DiskCheckpoint, DiskStore};
pub use failure::FailureInjector;
pub use fti::{FtiContext, ProtectedVariable, RecoveredData};
pub use multilevel::{LevelConfig, MultiLevelPlan};
pub use pfs::{CheckpointLevel, PfsModel};
pub use store::{
    CheckpointBuffer, CheckpointEncoding, CheckpointMetadata, CheckpointStore, StoredCheckpoint,
};

/// Errors produced by the checkpoint/restart substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// No checkpoint is available to recover from.
    NoCheckpoint,
    /// A protected variable id was not found.
    UnknownVariable(String),
    /// A stored checkpoint is malformed (e.g. missing variable payloads,
    /// failed CRC validation, or a truncated on-disk file).
    Corrupt(String),
    /// The durable tier hit a real I/O error (message carries the cause).
    Io(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::NoCheckpoint => write!(f, "no checkpoint available"),
            CkptError::UnknownVariable(id) => write!(f, "unknown protected variable: {id}"),
            CkptError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CkptError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Result alias for checkpoint operations.
pub type Result<T> = std::result::Result<T, CkptError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CkptError::NoCheckpoint.to_string().contains("no checkpoint"));
        assert!(CkptError::UnknownVariable("x".into()).to_string().contains('x'));
        assert!(CkptError::Corrupt("bad".into()).to_string().contains("bad"));
        assert!(CkptError::Io("disk full".into()).to_string().contains("disk full"));
    }
}
