//! Property-based hardening of the on-disk checkpoint format, in the
//! corruption-proptest style of the compress crate: arbitrary bit flips,
//! truncations, extensions and garbage files must never panic, never
//! validate, and never be selected for recovery — a checkpoint is either
//! byte-perfect or it does not exist.

use lcr_ckpt::disk::{crc32, read_checkpoint_file, DiskStore};
use lcr_ckpt::{CheckpointBuffer, CheckpointLevel, CkptError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per proptest case (cases may run with
/// overlapping lifetimes across test binaries sharing one temp dir).
fn scratch() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "lcr-disk-prop-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payload_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..=255, 0..200), 1..5)
}

/// Writes one checkpoint built from `payloads` and returns the bytes of
/// the resulting file.
fn write_reference(dir: &PathBuf, payloads: &[Vec<u8>]) -> (PathBuf, Vec<u8>) {
    let mut store = DiskStore::open(dir, 1).expect("open scratch store");
    let mut buffer = CheckpointBuffer::new();
    for (i, p) in payloads.iter().enumerate() {
        buffer.push_with(&format!("v{i}"), |out| out.extend_from_slice(p));
    }
    store
        .push_from_buffer(
            7,
            3.25,
            CheckpointLevel::Pfs,
            4096,
            None,
            "lossy",
            &[("rho".to_string(), 0.5)],
            &buffer,
        )
        .expect("write reference checkpoint");
    let path = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "lcr"))
        .expect("one checkpoint file");
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Writes four checkpoints: a standalone anchor (iteration 100) followed
/// by a delta chain anchor→delta→delta (iterations 200/300/400), deriving
/// each link's payloads from `payloads`.  Returns the four file paths in
/// id order.
fn write_chain(dir: &PathBuf, payloads: &[Vec<u8>]) -> Vec<PathBuf> {
    let mut store = DiskStore::open(dir, 4).expect("open scratch store");
    let mut buffer = CheckpointBuffer::new();
    for (k, delta) in [None, None, Some(1u8), Some(2u8)].into_iter().enumerate() {
        buffer.clear();
        for (i, p) in payloads.iter().enumerate() {
            buffer.push_with(&format!("v{i}"), |out| {
                out.extend_from_slice(p);
                out.push(k as u8); // make every link's bytes distinct
            });
        }
        store
            .push_from_buffer(
                100 * (k + 1),
                k as f64,
                CheckpointLevel::Pfs,
                4096,
                delta,
                "lossy-delta",
                &[],
                &buffer,
            )
            .expect("write chain link");
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "lcr"))
        .collect();
    paths.sort();
    assert_eq!(paths.len(), 4);
    paths
}

/// Iteration recovery must land on when chain member `member` (0 = the
/// standalone anchor, 1..=3 = the delta chain) is destroyed: corrupting a
/// link abandons every dependent, falling back to the newest link that
/// still has a complete chain.
fn expected_fallback_iteration(member: usize) -> usize {
    match member {
        0 => 400, // the delta chain is untouched
        1 => 100, // chain anchor gone: every dependent dies with it
        2 => 200, // mid-chain delta gone: its base anchor still recovers
        3 => 300, // only the newest delta gone
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bit_flipped_chain_member_invalidates_dependents_not_ancestors(
        payloads in payload_strategy(),
        member in 0usize..4,
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let dir = scratch();
        let paths = write_chain(&dir, &payloads);
        let mut bytes = std::fs::read(&paths[member]).unwrap();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(&paths[member], &bytes).unwrap();

        let mut reopened = DiskStore::open(&dir, 4).unwrap();
        let chain = reopened.latest_valid_chain().expect("some chain survives");
        let last = chain.last().unwrap();
        prop_assert_eq!(last.metadata.iteration, expected_fallback_iteration(member));
        // The recovered chain is complete: anchor first, contiguous links.
        prop_assert!(!chain[0].metadata.encoding.is_delta());
        for pair in chain.windows(2) {
            prop_assert_eq!(pair[1].metadata.encoding.base_id(), Some(pair[0].metadata.id));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_chain_member_invalidates_dependents_not_ancestors(
        payloads in payload_strategy(),
        member in 0usize..4,
        cut in 0usize..10_000,
    ) {
        let dir = scratch();
        let paths = write_chain(&dir, &payloads);
        let bytes = std::fs::read(&paths[member]).unwrap();
        let keep = cut % bytes.len();
        std::fs::write(&paths[member], &bytes[..keep]).unwrap();

        let mut reopened = DiskStore::open(&dir, 4).unwrap();
        let chain = reopened.latest_valid_chain().expect("some chain survives");
        let last = chain.last().unwrap();
        prop_assert_eq!(last.metadata.iteration, expected_fallback_iteration(member));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_bit_flips_are_always_rejected(
        payloads in payload_strategy(),
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let dir = scratch();
        let (path, mut bytes) = write_reference(&dir, &payloads);
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).unwrap();
        // Every byte of the file is covered by either the metadata CRC or
        // a payload CRC (or pins the length), so any flip must surface as
        // Corrupt — never a panic, never a silently different checkpoint.
        prop_assert!(matches!(
            read_checkpoint_file(&path),
            Err(CkptError::Corrupt(_))
        ));
        // And the store-level scan never selects it either.
        let mut reopened = DiskStore::open(&dir, 1).unwrap();
        prop_assert!(reopened.latest_valid().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncations_and_extensions_are_always_rejected(
        payloads in payload_strategy(),
        cut in 0usize..10_000,
        extend in 1usize..64,
    ) {
        let dir = scratch();
        let (path, bytes) = write_reference(&dir, &payloads);

        // Any proper prefix fails validation (mid-write crash image).
        let keep = cut % bytes.len();
        std::fs::write(&path, &bytes[..keep]).unwrap();
        prop_assert!(read_checkpoint_file(&path).is_err());
        let mut reopened = DiskStore::open(&dir, 1).unwrap();
        prop_assert!(reopened.latest_valid().is_err());

        // Appending garbage breaks the length pinned by the segment table.
        let mut extended = bytes.clone();
        extended.extend(std::iter::repeat_n(0xA5u8, extend));
        std::fs::write(&path, &extended).unwrap();
        prop_assert!(read_checkpoint_file(&path).is_err());

        // The pristine bytes still validate (the reference is sound).
        std::fs::write(&path, &bytes).unwrap();
        let restored = read_checkpoint_file(&path).unwrap();
        prop_assert_eq!(restored.payloads.len(), payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(&restored.payloads[i].1, p);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arbitrary_garbage_never_panics_or_validates(
        garbage in prop::collection::vec(0u8..=255, 0..600),
    ) {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-0000000000.lcr");
        std::fs::write(&path, &garbage).unwrap();
        // Random bytes essentially never form a valid file (magic + two
        // CRCs); reject without panicking and without huge allocations.
        prop_assert!(read_checkpoint_file(&path).is_err());
        let mut store = DiskStore::open(&dir, 1).unwrap();
        prop_assert!(store.latest_valid().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip(
        data in prop::collection::vec(0u8..=255, 1..300),
        pos in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let reference = crc32(&data);
        let mut flipped = data.clone();
        let at = pos % flipped.len();
        flipped[at] ^= 1 << bit;
        prop_assert_ne!(crc32(&flipped), reference);
    }
}
