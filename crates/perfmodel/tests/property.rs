//! Property-based tests of the performance model's monotonicity and
//! consistency guarantees.

use lcr_perfmodel::{
    lossy_overhead_ratio, theorem1_max_extra_iterations, theorem2_extra_iterations_interval,
    theorem3_gmres_error_bound, traditional_overhead_ratio, young_optimal_interval,
    Theorem1Inputs,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn young_interval_is_monotone(
        mtti in 60.0f64..1e6,
        ckpt_a in 0.0f64..1e4,
        ckpt_b in 0.0f64..1e4,
    ) {
        let (lo, hi) = if ckpt_a <= ckpt_b { (ckpt_a, ckpt_b) } else { (ckpt_b, ckpt_a) };
        prop_assert!(young_optimal_interval(mtti, lo) <= young_optimal_interval(mtti, hi));
        // Interval grows with the MTTI as well.
        prop_assert!(young_optimal_interval(mtti, hi) <= young_optimal_interval(mtti * 2.0, hi));
    }

    #[test]
    fn overhead_is_nonnegative_and_monotone_in_ckpt_time(
        lambda_per_hour in 0.0f64..3.5,
        t1 in 0.0f64..140.0,
        t2 in 0.0f64..140.0,
    ) {
        let lambda = lambda_per_hour / 3600.0;
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let a = traditional_overhead_ratio(lo, lambda);
        let b = traditional_overhead_ratio(hi, lambda);
        prop_assert!(a >= 0.0);
        prop_assert!(b >= a);
    }

    #[test]
    fn lossy_overhead_reduces_to_traditional_when_no_extra_iterations(
        lambda_per_hour in 0.0f64..3.5,
        t in 0.0f64..140.0,
        t_it in 0.01f64..100.0,
    ) {
        let lambda = lambda_per_hour / 3600.0;
        let lossy = lossy_overhead_ratio(t, lambda, 0.0, t_it);
        let trad = traditional_overhead_ratio(t, lambda);
        if lossy.is_finite() && trad.is_finite() {
            prop_assert!((lossy - trad).abs() <= 1e-12 * trad.max(1.0));
        }
    }

    #[test]
    fn theorem1_bound_is_exactly_the_break_even_point(
        t_trad in 10.0f64..200.0,
        gap in 0.0f64..0.9,
        mtti_hours in 0.5f64..6.0,
        t_it in 0.1f64..10.0,
    ) {
        let t_lossy = t_trad * (1.0 - gap);
        let lambda = 1.0 / (mtti_hours * 3600.0);
        let inputs = Theorem1Inputs { t_trad_ckp: t_trad, t_lossy_ckp: t_lossy, lambda, t_it };
        let budget = theorem1_max_extra_iterations(&inputs);
        let trad = traditional_overhead_ratio(t_trad, lambda);
        if !trad.is_finite() {
            return Ok(());
        }
        // At the budget the lossy overhead equals the traditional one;
        // strictly below it, lossy wins; strictly above, lossy loses.
        let at = lossy_overhead_ratio(t_lossy, lambda, budget, t_it);
        prop_assert!((at - trad).abs() <= 1e-6 * trad.max(1e-9));
        let below = lossy_overhead_ratio(t_lossy, lambda, budget * 0.5, t_it);
        prop_assert!(below <= trad + 1e-12);
        let above = lossy_overhead_ratio(t_lossy, lambda, budget * 1.5 + 1.0, t_it);
        prop_assert!(above >= trad - 1e-12);
    }

    #[test]
    fn theorem2_interval_is_ordered_and_monotone_in_error_bound(
        r in 0.5f64..0.99999,
        eb_exp in -8i32..-2,
        n in 10usize..10_000,
    ) {
        let eb = 10f64.powi(eb_exp);
        let (lo, hi) = theorem2_extra_iterations_interval(r, eb, n);
        prop_assert!(lo >= 0.0);
        prop_assert!(hi >= lo);
        prop_assert!(hi <= n as f64 + 1.0);
        let (_, hi_looser) = theorem2_extra_iterations_interval(r, eb * 10.0, n);
        prop_assert!(hi_looser >= hi - 1e-9);
    }

    #[test]
    fn theorem3_bound_is_clamped_and_monotone(
        residual in 0.0f64..1e3,
        rhs in 1e-6f64..1e3,
        min_exp in -14i32..-8,
        max_exp in -6i32..-1,
    ) {
        let min_bound = 10f64.powi(min_exp);
        let max_bound = 10f64.powi(max_exp);
        let eb = theorem3_gmres_error_bound(residual, rhs, 1.0, min_bound, max_bound);
        prop_assert!(eb >= min_bound);
        prop_assert!(eb <= max_bound);
        // Smaller residual never yields a larger bound.
        let eb_smaller = theorem3_gmres_error_bound(residual * 0.5, rhs, 1.0, min_bound, max_bound);
        prop_assert!(eb_smaller <= eb + 1e-18);
    }
}
