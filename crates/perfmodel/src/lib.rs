//! # lcr-perfmodel
//!
//! The analytical checkpoint/restart performance model of *"Improving
//! Performance of Iterative Methods by Lossy Checkpointing"*
//! (Tao et al., HPDC 2018), Sections 4.1, 4.3 and 4.4.
//!
//! The model answers the paper's two key questions analytically:
//!
//! 1. *How expensive is checkpointing?* — [`young_optimal_interval`]
//!    (Young's formula, Equation 1), [`traditional_overhead_ratio`]
//!    (Equations 4–5) and [`ExpectedOverheadSurface`] (Figure 1).
//! 2. *When does lossy checkpointing pay off?* — [`lossy_overhead_ratio`]
//!    (Equation 8), [`theorem1_max_extra_iterations`] (Theorem 1),
//!    [`theorem2_extra_iterations_interval`] (Theorem 2, stationary
//!    methods) and [`theorem3_gmres_error_bound`] (Theorem 3, the adaptive
//!    relative error bound for GMRES).
//!
//! Everything here is closed-form arithmetic on `f64`, deliberately free of
//! the simulation substrate, so the same functions serve the expected-
//! overhead figures (1 and 7), the Theorem-1 worked example of §4.3, and
//! the comparison of experimental versus expected overhead in Figure 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod overhead;
pub mod theorems;
pub mod young;

pub use overhead::{
    amortized_checkpoint_seconds, expected_total_time, lossy_delta_overhead_ratio,
    lossy_overhead_ratio, traditional_overhead_ratio, CheckpointCosts, ExpectedOverheadSurface,
    OverheadPoint,
};
pub use theorems::{
    theorem1_max_extra_iterations, theorem2_extra_iterations_interval,
    theorem2_extra_iterations_upper_bound, theorem3_gmres_error_bound, Theorem1Inputs,
};
pub use young::{young_optimal_interval, young_optimal_interval_iterations};
