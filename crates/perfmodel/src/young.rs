//! Young's formula for the optimal checkpoint interval.
//!
//! Equation (1) of the paper: the optimal interval between checkpoints is
//! `k·T_it = sqrt(2·T_f·T_ckp)`, where `T_f` is the mean time to
//! interruption and `T_ckp` the time of one checkpoint.  The paper uses it
//! both to motivate the analysis ("5 checkpoints per hour for an 18-second
//! checkpoint and a 4-hour MTTI") and to pick the per-scheme optimal
//! intervals in the evaluation (16, 12 and 7 minutes for traditional,
//! lossless and lossy checkpointing, §5.4).

/// Optimal checkpoint interval in seconds: `sqrt(2 · T_f · T_ckp)`.
///
/// # Panics
/// Panics if either argument is negative or not finite.
pub fn young_optimal_interval(mtti_seconds: f64, checkpoint_seconds: f64) -> f64 {
    assert!(
        mtti_seconds.is_finite() && mtti_seconds >= 0.0,
        "MTTI must be non-negative"
    );
    assert!(
        checkpoint_seconds.is_finite() && checkpoint_seconds >= 0.0,
        "checkpoint time must be non-negative"
    );
    (2.0 * mtti_seconds * checkpoint_seconds).sqrt()
}

/// Optimal checkpoint interval expressed in solver iterations,
/// `k = sqrt(2·T_f·T_ckp) / T_it`, rounded to the nearest whole iteration
/// and never below 1.
///
/// # Panics
/// Panics if `iteration_seconds` is not positive.
pub fn young_optimal_interval_iterations(
    mtti_seconds: f64,
    checkpoint_seconds: f64,
    iteration_seconds: f64,
) -> usize {
    assert!(
        iteration_seconds.is_finite() && iteration_seconds > 0.0,
        "iteration time must be positive"
    );
    let k = young_optimal_interval(mtti_seconds, checkpoint_seconds) / iteration_seconds;
    (k.round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_motivating_example() {
        // §3: MTTI = 4 hours, one checkpoint = 18 s → about 5 checkpoints
        // per hour (interval ≈ 720 s).
        let interval = young_optimal_interval(4.0 * 3600.0, 18.0);
        let per_hour = 3600.0 / interval;
        assert!(
            (per_hour - 5.0).abs() < 0.5,
            "expected ≈5 checkpoints/hour, got {per_hour:.2}"
        );
    }

    #[test]
    fn papers_optimal_intervals_for_the_three_schemes() {
        // §5.4: with MTTI = 1 hour the optimal intervals are about 16, 12
        // and 7 minutes for traditional (~120 s), lossless (~70 s) and
        // lossy (~25 s) GMRES checkpoints.
        let trad = young_optimal_interval(3600.0, 120.0) / 60.0;
        let lossless = young_optimal_interval(3600.0, 70.0) / 60.0;
        let lossy = young_optimal_interval(3600.0, 25.0) / 60.0;
        assert!((trad - 16.0).abs() < 1.5, "traditional {trad:.1} min");
        assert!((lossless - 12.0).abs() < 1.5, "lossless {lossless:.1} min");
        assert!((lossy - 7.0).abs() < 1.5, "lossy {lossy:.1} min");
        assert!(lossy < lossless && lossless < trad);
    }

    #[test]
    fn interval_in_iterations() {
        // GMRES example of §4.3: T_it ≈ 1.2 s.
        let k = young_optimal_interval_iterations(3600.0, 25.0, 1.2);
        let expected = (2.0f64 * 3600.0 * 25.0).sqrt() / 1.2;
        assert!((k as f64 - expected).abs() <= 1.0);
        // Degenerate: tiny checkpoint cost still yields at least 1.
        assert_eq!(young_optimal_interval_iterations(3600.0, 0.0, 1.0), 1);
    }

    #[test]
    fn monotonicity() {
        // Cheaper checkpoints → more frequent checkpointing.
        assert!(
            young_optimal_interval(3600.0, 25.0) < young_optimal_interval(3600.0, 120.0)
        );
        // Rarer failures → less frequent checkpointing.
        assert!(
            young_optimal_interval(3.0 * 3600.0, 120.0) > young_optimal_interval(3600.0, 120.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mtti_panics() {
        let _ = young_optimal_interval(-1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_iteration_time_panics() {
        let _ = young_optimal_interval_iterations(3600.0, 10.0, 0.0);
    }
}
