//! Theorems 1–3 of the paper: when lossy checkpointing pays off, and how
//! much convergence delay the compression error can cause.

use serde::{Deserialize, Serialize};

/// Inputs of Theorem 1 (the sufficient condition for a performance gain).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Theorem1Inputs {
    /// Mean time of one traditional checkpoint, seconds.
    pub t_trad_ckp: f64,
    /// Mean time of one lossy checkpoint (including compression), seconds.
    pub t_lossy_ckp: f64,
    /// Failure rate λ in failures per second.
    pub lambda: f64,
    /// Mean time of one solver iteration, seconds.
    pub t_it: f64,
}

/// Theorem 1: the maximum number of extra iterations per lossy recovery,
/// `N′ ≤ (f(T_trad, λ) − f(T_lossy, λ)) / (λ·T_it)` with
/// `f(t, λ) = sqrt(2λt) + λt`, under which lossy checkpointing still
/// improves on traditional checkpointing.
///
/// Returns 0 when λ or T_it is zero (no failures → the bound is vacuous and
/// lossy checkpointing trivially cannot lose time to re-convergence).
///
/// # Panics
/// Panics on negative or non-finite inputs.
pub fn theorem1_max_extra_iterations(inputs: &Theorem1Inputs) -> f64 {
    let Theorem1Inputs {
        t_trad_ckp,
        t_lossy_ckp,
        lambda,
        t_it,
    } = *inputs;
    assert!(t_trad_ckp.is_finite() && t_trad_ckp >= 0.0, "invalid T_trad");
    assert!(t_lossy_ckp.is_finite() && t_lossy_ckp >= 0.0, "invalid T_lossy");
    assert!(lambda.is_finite() && lambda >= 0.0, "invalid lambda");
    assert!(t_it.is_finite() && t_it >= 0.0, "invalid T_it");
    if lambda == 0.0 || t_it == 0.0 {
        return 0.0;
    }
    let f = |t: f64| (2.0 * lambda * t).sqrt() + lambda * t;
    ((f(t_trad_ckp) - f(t_lossy_ckp)) / (lambda * t_it)).max(0.0)
}

/// Theorem 2: for a stationary iterative method with spectral radius `r`
/// (of the iteration matrix), restarting at iteration `t` from a lossy
/// checkpoint with relative error bound `eb` costs at most
/// `t − log_R(Rᵗ + eb)` extra iterations.
///
/// Returns 0 if the inputs are degenerate (`r` outside (0, 1)).
pub fn theorem2_extra_iterations_at(r: f64, eb: f64, t: usize) -> f64 {
    if !(r > 0.0 && r < 1.0) || eb < 0.0 {
        return 0.0;
    }
    let rt = r.powi(t as i32);
    let bound = t as f64 - (rt + eb).log(r);
    bound.max(0.0)
}

/// Theorem 2's expected-value interval: the expected upper bound on the
/// number of extra iterations lies in
/// `[ (N+1)/2 − log_R(R^((N+1)/2) + eb),  N − log_R(R^N + eb) ]`
/// where `N` is the failure-free iteration count, `R` the spectral radius
/// and `eb` the relative error bound.
///
/// Returns `(low, high)`; both are 0 for degenerate inputs.
pub fn theorem2_extra_iterations_interval(r: f64, eb: f64, n: usize) -> (f64, f64) {
    if !(r > 0.0 && r < 1.0) || eb < 0.0 || n == 0 {
        return (0.0, 0.0);
    }
    let mid = (n as f64 + 1.0) / 2.0;
    let low = {
        let rm = r.powf(mid);
        (mid - (rm + eb).log(r)).max(0.0)
    };
    let high = theorem2_extra_iterations_at(r, eb, n);
    (low.min(high), high)
}

/// The upper end of the Theorem-2 interval — the value the paper uses when
/// quoting "the expectation of N′ is about 6" for Jacobi (§5.3, with
/// `N = 3941`, `eb = 1e-4`, `R ≈ 0.99998`).
pub fn theorem2_extra_iterations_upper_bound(r: f64, eb: f64, n: usize) -> f64 {
    theorem2_extra_iterations_interval(r, eb, n).1
}

/// Theorem 3: the relative error bound that keeps a restarted GMRES
/// recovery from degrading convergence is `eb = c·‖r⁽ᵗ⁾‖ / ‖b‖` — on the
/// order of the current relative residual.  `safety` is the constant `c`
/// (the paper uses order-1; the default strategy passes 1.0).
///
/// Returns a bound clamped to `[min_bound, max_bound]` so extremely small
/// residuals near convergence do not drive the compressor into a regime
/// where compression stops paying (and zero is never returned).
pub fn theorem3_gmres_error_bound(
    residual_norm: f64,
    rhs_norm: f64,
    safety: f64,
    min_bound: f64,
    max_bound: f64,
) -> f64 {
    if rhs_norm <= 0.0 || rhs_norm.is_nan() || !residual_norm.is_finite() || residual_norm < 0.0 {
        return min_bound.max(f64::MIN_POSITIVE);
    }
    let raw = safety * residual_norm / rhs_norm;
    raw.clamp(min_bound.max(f64::MIN_POSITIVE), max_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_worked_example_from_section_4_3() {
        // §4.3: GMRES on Bebop with 2,048 cores — T_ckp 120 s → 25 s,
        // MTTI = 1 hour, 5,875 iterations in 7,160 s (T_it ≈ 1.2 s).
        // The paper derives a maximum acceptable N′ of about 500.
        let inputs = Theorem1Inputs {
            t_trad_ckp: 120.0,
            t_lossy_ckp: 25.0,
            lambda: 1.0 / 3600.0,
            t_it: 7160.0 / 5875.0,
        };
        let n_max = theorem1_max_extra_iterations(&inputs);
        assert!(
            (n_max - 500.0).abs() < 30.0,
            "expected ≈500 iterations, got {n_max:.0}"
        );
        // That is roughly 9 % of the total iteration count, as the paper
        // remarks.
        assert!((n_max / 5875.0 - 0.09).abs() < 0.02);
    }

    #[test]
    fn theorem1_degenerate_cases() {
        let zero_lambda = Theorem1Inputs {
            t_trad_ckp: 120.0,
            t_lossy_ckp: 25.0,
            lambda: 0.0,
            t_it: 1.0,
        };
        assert_eq!(theorem1_max_extra_iterations(&zero_lambda), 0.0);

        // Lossy slower than traditional → no budget for extra iterations.
        let inverted = Theorem1Inputs {
            t_trad_ckp: 25.0,
            t_lossy_ckp: 120.0,
            lambda: 1.0 / 3600.0,
            t_it: 1.0,
        };
        assert_eq!(theorem1_max_extra_iterations(&inverted), 0.0);
    }

    #[test]
    fn theorem1_budget_grows_with_checkpoint_gap() {
        let mk = |lossy: f64| Theorem1Inputs {
            t_trad_ckp: 120.0,
            t_lossy_ckp: lossy,
            lambda: 1.0 / 3600.0,
            t_it: 1.2,
        };
        assert!(
            theorem1_max_extra_iterations(&mk(10.0))
                > theorem1_max_extra_iterations(&mk(60.0))
        );
    }

    #[test]
    fn theorem2_jacobi_expectation_is_small() {
        // §5.3: N = 3941, eb = 1e-4, R ≈ 0.99998 → expected N′ ≈ 6.
        let (low, high) = theorem2_extra_iterations_interval(0.99998, 1e-4, 3941);
        assert!(low >= 0.0);
        assert!(high >= low);
        assert!(
            high < 30.0,
            "upper bound should be a handful of iterations, got {high:.1}"
        );
        // And the interval brackets the paper's quoted ≈6 within reason.
        assert!(high > 1.0, "bound unexpectedly tiny: {high:.2}");
    }

    #[test]
    fn theorem2_larger_error_bound_costs_more() {
        let small = theorem2_extra_iterations_upper_bound(0.999, 1e-6, 2000);
        let large = theorem2_extra_iterations_upper_bound(0.999, 1e-3, 2000);
        assert!(large > small);
    }

    #[test]
    fn theorem2_degenerate_inputs() {
        assert_eq!(theorem2_extra_iterations_interval(1.5, 1e-4, 100), (0.0, 0.0));
        assert_eq!(theorem2_extra_iterations_interval(0.9, -1.0, 100), (0.0, 0.0));
        assert_eq!(theorem2_extra_iterations_interval(0.9, 1e-4, 0), (0.0, 0.0));
        assert_eq!(theorem2_extra_iterations_at(0.0, 1e-4, 10), 0.0);
    }

    #[test]
    fn theorem2_zero_error_bound_means_no_delay() {
        // With eb = 0 the bound is t − log_R(R^t) = 0: exact recovery.
        let v = theorem2_extra_iterations_at(0.99, 0.0, 500);
        assert!(v.abs() < 1e-9);
    }

    #[test]
    fn theorem3_bound_tracks_residual() {
        let b = 100.0;
        let early = theorem3_gmres_error_bound(10.0, b, 1.0, 1e-12, 1e-1);
        let late = theorem3_gmres_error_bound(1e-3, b, 1.0, 1e-12, 1e-1);
        assert!((early - 0.1).abs() < 1e-12); // clamped to max
        assert!((late - 1e-5).abs() < 1e-18);
        assert!(late < early);
    }

    #[test]
    fn theorem3_clamps_and_degenerates() {
        assert_eq!(
            theorem3_gmres_error_bound(1e-30, 1.0, 1.0, 1e-10, 1e-2),
            1e-10
        );
        assert_eq!(theorem3_gmres_error_bound(1.0, 0.0, 1.0, 1e-10, 1e-2), 1e-10);
        assert_eq!(
            theorem3_gmres_error_bound(f64::NAN, 1.0, 1.0, 1e-10, 1e-2),
            1e-10
        );
    }
}
